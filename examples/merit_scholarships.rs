//! The paper's Table IV case study: merit scholarships from exam scores.
//!
//! Three subject rankings (Math, Reading, Writing) over 200 students with Gender, Race,
//! and subsidised-Lunch attributes are aggregated into a consensus ranking. Without
//! fairness constraints, students with subsidised lunches are pushed to the bottom; with
//! MANI-Rank at Δ = 0.05 every group receives an essentially proportional share of the top
//! positions.
//!
//! Run with `cargo run --example merit_scholarships`.

use mani_rank::prelude::*;

fn main() {
    let dataset = ExamDataset::generate(&Default::default());
    let groups = GroupIndex::new(&dataset.db);

    println!("Fairness audit of the base rankings:");
    for (subject, ranking) in dataset.subjects.iter().zip(dataset.profile.rankings()) {
        let audit = FairnessAudit::new(*subject, ranking, &dataset.db, &groups);
        println!("  {}", audit.summary());
    }

    // Fairness-unaware consensus: Borda (the three subject rankings are score-based, so the
    // Borda consensus is essentially the "average score" ranking a registrar would use).
    let borda = mani_rank::aggregation::BordaAggregator::new().consensus(&dataset.profile);
    let unfair_audit = FairnessAudit::new("Unconstrained consensus", &borda, &dataset.db, &groups);
    println!("\n  {}", unfair_audit.summary());

    // How much scholarship money would each Lunch group receive if the top 50 ranked
    // students got awards?
    let lunch = dataset.db.schema().attribute_id("Lunch").unwrap();
    let awards = |ranking: &Ranking| -> (usize, usize) {
        let mut counts = (0usize, 0usize);
        for pos in 0..50 {
            let cand = ranking.candidate_at(pos);
            match dataset.db.value_of(cand, lunch).unwrap().index() {
                0 => counts.0 += 1,
                _ => counts.1 += 1,
            }
        }
        counts
    };
    let (no_sub, sub) = awards(&borda);
    println!(
        "\nTop-50 awards without fairness: {no_sub} full-price vs {sub} subsidised-lunch students"
    );

    // MANI-Rank consensus at Δ = 0.05 with each of the scalable Fair-* methods.
    let ctx = MfcrContext::new(
        &dataset.db,
        &groups,
        &dataset.profile,
        FairnessThresholds::uniform(0.05),
    );
    for kind in [
        MethodKind::FairSchulze,
        MethodKind::FairBorda,
        MethodKind::FairCopeland,
    ] {
        let outcome = kind.instantiate().solve(&ctx).expect("method run");
        let audit = outcome.audit(&ctx);
        let (no_sub, sub) = awards(&outcome.ranking);
        println!(
            "\n  {}\n    top-50 awards: {} full-price vs {} subsidised-lunch students (PD loss {:.3})",
            audit.summary(),
            no_sub,
            sub,
            outcome.pd_loss
        );
    }
}
