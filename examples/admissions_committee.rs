//! The paper's motivating example (Figures 1 and 2): an admissions committee whose four
//! members rank 45 scholarship candidates with protected attributes Gender (3 values) and
//! Race (5 values). Plain Kemeny reproduces the members' biases; the MANI-Rank consensus
//! removes them.
//!
//! Run with `cargo run --example admissions_committee`.

use mani_rank::prelude::*;

fn main() {
    // 45 candidates: Gender (3) x Race (5), 3 per intersectional cell — the Figure 1 setup.
    let db = mani_rank::datagen::gender_race_population(3);
    let groups = GroupIndex::new(&db);
    let gender = db.schema().attribute_id("Gender").unwrap();
    let race = db.schema().attribute_id("Race").unwrap();

    // Four committee members with varying degrees of bias: three rank around a biased modal
    // ranking, one (like r3 in the paper) is nearly parity-respecting.
    let biased_modal = ModalRankingBuilder::new(&db).build(&FairnessTarget::low_fair(2));
    let fair_modal = ModalRankingBuilder::new(&db).build(&FairnessTarget::uniform(2, 0.15, 0.2));
    let mut rankings = MallowsModel::new(biased_modal, 1.2)
        .sample_profile(3, 7)
        .rankings()
        .to_vec();
    rankings.push(
        MallowsModel::new(fair_modal, 1.2)
            .sample_profile(1, 8)
            .rankings()[0]
            .clone(),
    );
    let profile = RankingProfile::for_database(&db, rankings).unwrap();

    println!("Base rankings (committee members):");
    for (i, ranking) in profile.rankings().iter().enumerate() {
        let parity = ParityScores::compute(ranking, &groups);
        println!(
            "  r{} — ARP(Gender) = {:.2}, ARP(Race) = {:.2}, IRP = {:.2}",
            i + 1,
            parity.arp(gender),
            parity.arp(race),
            parity.irp()
        );
    }

    // Fairness-unaware Kemeny consensus (Figure 2a). The committee's 45 candidates are
    // beyond the exact search in a debug build, so cap the node budget (anytime result).
    let solver_budget = mani_rank::solver::SolverConfig::with_max_nodes(100_000);
    let unfair_ctx = MfcrContext::new(&db, &groups, &profile, FairnessThresholds::unconstrained());
    let kemeny = ExactKemeny::with_config(solver_budget)
        .solve(&unfair_ctx)
        .expect("Kemeny run");
    let kemeny_parity = kemeny.criteria.parity();

    // MANI-Rank consensus at Δ = 0.1 (Figure 2b). Fair-Copeland keeps this example fast.
    let fair_ctx = MfcrContext::new(&db, &groups, &profile, FairnessThresholds::uniform(0.1));
    let fair = FairCopeland::new()
        .solve(&fair_ctx)
        .expect("Fair-Copeland run");
    let fair_parity = fair.criteria.parity();

    println!("\nGroup fairness results (paper Figure 2):");
    println!(
        "{:<16} {:>16} {:>18}",
        "", "Kemeny consensus", "MANI-Rank consensus"
    );
    println!(
        "{:<16} {:>16.2} {:>18.2}",
        "ARP(Gender)",
        kemeny_parity.arp(gender),
        fair_parity.arp(gender)
    );
    println!(
        "{:<16} {:>16.2} {:>18.2}",
        "ARP(Race)",
        kemeny_parity.arp(race),
        fair_parity.arp(race)
    );
    println!(
        "{:<16} {:>16.2} {:>18.2}",
        "IRP",
        kemeny_parity.irp(),
        fair_parity.irp()
    );
    println!(
        "\nPD loss: Kemeny = {:.3}, MANI-Rank = {:.3} (price of fairness = {:.3})",
        kemeny.pd_loss,
        fair.pd_loss,
        fair.pd_loss - kemeny.pd_loss
    );
}
