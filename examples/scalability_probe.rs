//! A miniature version of the paper's scalability study (Figures 6/7, Tables II/III):
//! measures Fair-Borda, Fair-Copeland, and Fair-Schulze wall-clock time while the number
//! of base rankings and the number of candidates grow.
//!
//! Run with `cargo run --release --example scalability_probe` (release strongly
//! recommended; the probe sizes are chosen for a release build).

use std::time::Instant;

use mani_rank::prelude::*;

fn workload(
    num_candidates: usize,
    num_rankings: usize,
    seed: u64,
) -> (CandidateDb, RankingProfile) {
    let db = mani_rank::datagen::binary_population(num_candidates, 0.5, 0.5, seed);
    let modal = ModalRankingBuilder::new(&db).build(&FairnessTarget::low_fair(2));
    let profile = MallowsModel::new(modal, 0.6).sample_profile(num_rankings, seed ^ 0xF00D);
    (db, profile)
}

fn time_method(kind: MethodKind, ctx: &MfcrContext<'_>) -> f64 {
    let start = Instant::now();
    let outcome = kind.instantiate().solve(ctx).expect("method run");
    assert!(outcome.ranking.len() == ctx.profile.num_candidates());
    start.elapsed().as_secs_f64()
}

fn main() {
    let release = !cfg!(debug_assertions);
    let (ranker_counts, candidate_counts): (Vec<usize>, Vec<usize>) = if release {
        (vec![100, 1_000, 10_000], vec![100, 500, 1_000])
    } else {
        (vec![20, 100, 500], vec![50, 100, 200])
    };
    let methods = [
        MethodKind::FairBorda,
        MethodKind::FairCopeland,
        MethodKind::FairSchulze,
    ];

    println!("Scalability in the number of base rankings (n = 100 candidates, Δ = 0.1):");
    for &m in &ranker_counts {
        let (db, profile) = workload(100, m, 1);
        let groups = GroupIndex::new(&db);
        let ctx = MfcrContext::new(&db, &groups, &profile, FairnessThresholds::uniform(0.1));
        let times: Vec<String> = methods
            .iter()
            .map(|&kind| format!("{} {:.3}s", kind.name(), time_method(kind, &ctx)))
            .collect();
        println!("  |R| = {m:>6}: {}", times.join(", "));
    }

    println!("\nScalability in the number of candidates (|R| = 50 rankings, Δ = 0.33):");
    for &n in &candidate_counts {
        let (db, profile) = workload(n, 50, 2);
        let groups = GroupIndex::new(&db);
        let ctx = MfcrContext::new(&db, &groups, &profile, FairnessThresholds::uniform(0.33));
        // Schulze is O(n³); restrict it to the smaller sizes, as the paper's Figure 7 notes.
        let active: Vec<MethodKind> = methods
            .iter()
            .copied()
            .filter(|kind| *kind != MethodKind::FairSchulze || n <= 500)
            .collect();
        let times: Vec<String> = active
            .iter()
            .map(|&kind| format!("{} {:.3}s", kind.name(), time_method(kind, &ctx)))
            .collect();
        println!("  n = {n:>5}: {}", times.join(", "));
    }
}
