//! The paper's appendix case study (Table V): a 21-year consensus ranking of CS
//! departments that is fair with respect to Location, institution Type, and their
//! intersection.
//!
//! Run with `cargo run --example csrankings_audit`.

use mani_rank::prelude::*;

fn main() {
    let dataset = CsRankingsDataset::generate(&Default::default());
    let groups = GroupIndex::new(&dataset.db);
    let location = dataset.db.schema().attribute_id("Location").unwrap();
    let kind_attr = dataset.db.schema().attribute_id("Type").unwrap();

    // Average yearly bias.
    let mut location_arp = 0.0;
    let mut type_arp = 0.0;
    let mut irp = 0.0;
    for ranking in dataset.profile.rankings() {
        let parity = ParityScores::compute(ranking, &groups);
        location_arp += parity.arp(location);
        type_arp += parity.arp(kind_attr);
        irp += parity.irp();
    }
    let years = dataset.profile.len() as f64;
    println!(
        "Average yearly bias over {} years: ARP(Location) = {:.3}, ARP(Type) = {:.3}, IRP = {:.3}",
        dataset.profile.len(),
        location_arp / years,
        type_arp / years,
        irp / years
    );

    // 20-year consensus with and without MANI-Rank (Δ = 0.05).
    let unfair = mani_rank::aggregation::CopelandAggregator::new().consensus(&dataset.profile);
    let unfair_audit = FairnessAudit::new("Copeland consensus", &unfair, &dataset.db, &groups);
    println!("\nWithout fairness: {}", unfair_audit.summary());

    let ctx = MfcrContext::new(
        &dataset.db,
        &groups,
        &dataset.profile,
        FairnessThresholds::uniform(0.05),
    );
    let fair = FairCopeland::new().solve(&ctx).expect("Fair-Copeland run");
    println!("With MANI-Rank:   {}", fair.audit(&ctx).summary());

    println!("\nTop 10 departments in the fair consensus:");
    for pos in 0..10 {
        let cand = fair.ranking.candidate_at(pos);
        let dept = dataset.db.candidate(cand).unwrap();
        let loc = dataset
            .db
            .schema()
            .attribute(location)
            .unwrap()
            .value_name(dept.value(location).unwrap())
            .unwrap();
        let ty = dataset
            .db
            .schema()
            .attribute(kind_attr)
            .unwrap()
            .value_name(dept.value(kind_attr).unwrap())
            .unwrap();
        println!("  {:>2}. {} ({loc}, {ty})", pos + 1, dept.name());
    }
    println!(
        "\nPD loss: Copeland = {:.3}, Fair-Copeland = {:.3}",
        pairwise_disagreement_loss(&dataset.profile, &unfair).unwrap(),
        fair.pd_loss
    );
}
