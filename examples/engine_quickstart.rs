//! Batch consensus with `mani-engine`: three committee datasets, four MFCR
//! methods each, one submit — precedence matrices shared, results deterministic.
//!
//! Run with: `cargo run --release --example engine_quickstart`

use std::sync::Arc;

use mani_rank::engine::{attribute_labels, response_table};
use mani_rank::prelude::*;

fn main() {
    // Three departments ranking the same kind of committee, different data.
    let mut requests = Vec::new();
    let mut datasets = Vec::new();
    for (name, n, m, theta, seed) in [
        ("physics", 30usize, 20usize, 0.8, 101u64),
        ("chemistry", 40, 25, 0.6, 102),
        ("biology", 24, 15, 1.0, 103),
    ] {
        let db = mani_rank::datagen::binary_population(n, 0.5, 0.5, seed);
        let modal = ModalRankingBuilder::new(&db).build(&FairnessTarget::low_fair(2));
        let profile = MallowsModel::new(modal, theta).sample_profile(m, seed ^ 0xE9);
        let dataset = Arc::new(EngineDataset::new(name, db, profile).expect("valid dataset"));
        datasets.push(Arc::clone(&dataset));
        requests.push(ConsensusRequest::new(
            dataset,
            [
                MethodKind::FairBorda,
                MethodKind::FairCopeland,
                MethodKind::FairSchulze,
                MethodKind::CorrectFairestPerm,
            ],
            FairnessThresholds::uniform(0.1),
        ));
    }

    let engine = ConsensusEngine::new();
    let responses = engine.submit_batch(requests);

    for (dataset, response) in datasets.iter().zip(&responses) {
        println!(
            "{}",
            response_table(response, &attribute_labels(dataset.db())).render()
        );
        assert!(response.is_complete());
        for result in response.successes() {
            assert!(
                result.outcome.criteria.is_satisfied(),
                "{} must satisfy MANI-Rank on {}",
                result.method.name(),
                response.dataset
            );
        }
    }

    let stats = engine.cache().stats();
    println!(
        "cache: {} builds for {} datasets, {} hits across {} method runs on {} thread(s)",
        stats.builds,
        datasets.len(),
        stats.hits,
        responses.iter().map(|r| r.results.len()).sum::<usize>(),
        engine.threads(),
    );
    assert_eq!(stats.builds as usize, datasets.len());
}
