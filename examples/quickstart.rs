//! Quickstart: build a candidate database, collect base rankings, and produce a fair
//! consensus ranking with every MFCR method.
//!
//! Run with `cargo run --example quickstart`.

use mani_rank::prelude::*;

fn main() {
    // 1. Describe the candidates: 24 applicants with two protected attributes.
    let mut builder = CandidateDbBuilder::new();
    let gender = builder
        .add_attribute("Gender", ["Man", "Woman", "NonBinary"])
        .expect("valid attribute");
    let race = builder
        .add_attribute("Race", ["GroupA", "GroupB"])
        .expect("valid attribute");
    for i in 0..24usize {
        builder
            .add_candidate(
                format!("applicant-{i:02}"),
                [(gender, i % 3), (race, i % 2)],
            )
            .expect("valid candidate");
    }
    let db = builder.build().expect("non-empty database");
    let groups = GroupIndex::new(&db);

    // 2. Collect base rankings. Here we synthesise a committee of 12 rankers whose
    //    preferences cluster around a biased modal ranking (Mallows model, theta = 0.7).
    let modal = ModalRankingBuilder::new(&db).build(&FairnessTarget::low_fair(2));
    let profile = MallowsModel::new(modal, 0.7).sample_profile(12, 42);

    // 3. Ask for a consensus ranking that is close to statistical parity (Δ = 0.15) for
    //    Gender, Race, and their intersection.
    let ctx = MfcrContext::new(&db, &groups, &profile, FairnessThresholds::uniform(0.15));

    println!(
        "{:<22} {:>8} {:>12} {:>12} {:>8} {:>10}",
        "method", "PD loss", "ARP(Gender)", "ARP(Race)", "IRP", "fair?"
    );
    for kind in MethodKind::all() {
        // A modest node budget keeps the exact methods fast in debug builds.
        let outcome = kind
            .instantiate_with_nodes(100_000)
            .solve(&ctx)
            .expect("method run succeeds");
        let parity = outcome.criteria.parity();
        println!(
            "{:<22} {:>8.3} {:>12.3} {:>12.3} {:>8.3} {:>10}",
            kind.paper_label(),
            outcome.pd_loss,
            parity.arp(gender),
            parity.arp(race),
            parity.irp(),
            outcome.criteria.is_satisfied(),
        );
    }

    // 4. Inspect the winning ranking of the recommended method for this size: Fair-Kemeny.
    let fair = FairKemeny::with_config(mani_rank::solver::SolverConfig::with_max_nodes(100_000))
        .solve(&ctx)
        .expect("Fair-Kemeny run");
    println!("\nFair-Kemeny consensus (top 8):");
    for pos in 0..8 {
        let cand = fair.ranking.candidate_at(pos);
        println!("  {:>2}. {}", pos + 1, db.candidate(cand).unwrap().name());
    }
}
