//! Offline stub of the subset of the `rand_distr` 0.4 API used by this
//! workspace: the [`Distribution`] trait and the [`Normal`] distribution
//! (sampled with the Box–Muller transform). See `shims/README.md`.

#![forbid(unsafe_code)]

use rand::Rng;

/// Types that can draw samples of `T` from an RNG.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The standard deviation was not finite and positive.
    BadVariance,
    /// The mean was not finite.
    MeanTooSmall,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "standard deviation must be finite and > 0"),
            NormalError::MeanTooSmall => write!(f, "mean must be finite"),
        }
    }
}

impl std::error::Error for NormalError {}

/// Normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution; `std_dev` must be finite and positive.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if !(std_dev.is_finite() && std_dev > 0.0) {
            return Err(NormalError::BadVariance);
        }
        Ok(Self { mean, std_dev })
    }

    /// The location parameter.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The scale parameter.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: two uniforms to one standard normal deviate. `u1` is kept
        // away from zero so the logarithm stays finite.
        let u1: f64 = (1.0 - rng.gen::<f64>()).max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn sample_moments_are_plausible() {
        let dist = Normal::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }
}
