//! Offline stub of serde's `#[derive(Serialize, Deserialize)]` macros.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`, which
//! are unavailable offline). Supports exactly the type shapes this workspace
//! derives on:
//!
//! * named-field structs (with optional `#[serde(skip)]` fields),
//! * tuple structs (newtypes serialize transparently, wider tuples as arrays),
//! * enums with unit variants (externally tagged as a plain string) and
//!   struct variants (externally tagged as `{"Variant": {fields...}}`).
//!
//! Generics, tuple enum variants, and other serde attributes are rejected with
//! a compile-time panic so unsupported uses fail loudly instead of silently
//! misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the shim `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    gen_serialize(&shape)
        .parse()
        .expect("serde_derive shim generated invalid Serialize impl")
}

/// Derives the shim `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    gen_deserialize(&shape)
        .parse()
        .expect("serde_derive shim generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            other => panic!("serde_derive shim: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde_derive shim: unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    }
}

/// Skips `#[...]` attribute groups starting at `*i`, returning whether any of
/// them was `#[serde(skip)]`.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while let (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g))) =
        (tokens.get(*i), tokens.get(*i + 1))
    {
        if p.as_char() != '#' || g.delimiter() != Delimiter::Bracket {
            break;
        }
        let body = g.stream().to_string();
        if body.starts_with("serde") {
            if body.contains("skip") {
                skip = true;
            } else {
                panic!("serde_derive shim: unsupported serde attribute `#[{body}]`");
            }
        }
        *i += 2;
    }
    skip
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            tokens.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive shim: expected identifier, found {other:?}"),
    }
}

/// Parses `name: Type, ...` field lists, honouring `#[serde(skip)]`.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let skip = skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                panic!("serde_derive shim: expected `:` after field `{name}`, found {other:?}")
            }
        }
        skip_type(&tokens, &mut i);
        fields.push(Field { name, skip });
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Advances past one type, stopping at a comma that sits outside `<...>`.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tt) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_trailing_comma = false;
    for (idx, tt) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if idx == tokens.len() - 1 {
                        saw_trailing_comma = true;
                    } else {
                        count += 1;
                    }
                }
                _ => {}
            }
        }
    }
    let _ = saw_trailing_comma;
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive shim: tuple enum variant `{name}` is not supported");
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let mut body = String::from(
                "let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
            );
            for f in fields.iter().filter(|f| !f.skip) {
                body.push_str(&format!(
                    "entries.push((\"{0}\".to_string(), ::serde::Serialize::serialize_value(&self.{0})));\n",
                    f.name
                ));
            }
            body.push_str("::serde::Value::Object(entries)");
            impl_serialize(name, &body)
        }
        Shape::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::serialize_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
            };
            impl_serialize(name, &body)
        }
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                match &v.shape {
                    VariantShape::Unit => {
                        arms.push_str(&format!(
                            "{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),\n",
                            v = v.name
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inner = String::from(
                            "let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
                        );
                        for f in fields.iter().filter(|f| !f.skip) {
                            inner.push_str(&format!(
                                "entries.push((\"{0}\".to_string(), ::serde::Serialize::serialize_value({0})));\n",
                                f.name
                            ));
                        }
                        inner.push_str(&format!(
                            "::serde::Value::Object(::std::vec![(\"{v}\".to_string(), ::serde::Value::Object(entries))])",
                            v = v.name
                        ));
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binders} }} => {{ {inner} }},\n",
                            v = v.name,
                            binders = binders.join(", "),
                        ));
                    }
                }
            }
            impl_serialize(name, &format!("match self {{\n{arms}\n}}"))
        }
    }
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let body = format!(
                "value.as_object().ok_or_else(|| ::serde::Error::new(\"{name}: expected object\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n{fields}\n}})",
                fields = named_field_initializers(name, fields, "value"),
            );
            impl_deserialize(name, &body)
        }
        Shape::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize_value(value)?))"
                )
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::deserialize_value(&items[{i}])?"))
                    .collect();
                format!(
                    "let items = value.as_array().ok_or_else(|| ::serde::Error::new(\"{name}: expected array\"))?;\n\
                     if items.len() != {arity} {{ return ::std::result::Result::Err(::serde::Error::new(\"{name}: wrong tuple arity\")); }}\n\
                     ::std::result::Result::Ok({name}({items}))",
                    items = items.join(", ")
                )
            };
            impl_deserialize(name, &body)
        }
        Shape::Enum { name, variants } => {
            let mut string_arms = String::new();
            let mut object_arms = String::new();
            for v in variants {
                match &v.shape {
                    VariantShape::Unit => {
                        string_arms.push_str(&format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n",
                            v = v.name
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        object_arms.push_str(&format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v} {{\n{fields}\n}}),\n",
                            v = v.name,
                            fields = named_field_initializers(name, fields, "inner"),
                        ));
                    }
                }
            }
            let body = format!(
                "match value {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n{string_arms}\
                 other => ::std::result::Result::Err(::serde::Error::new(format!(\"{name}: unknown variant `{{other}}`\"))),\n}},\n\
                 ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n{object_arms}\
                 other => ::std::result::Result::Err(::serde::Error::new(format!(\"{name}: unknown variant `{{other}}`\"))),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::Error::new(\"{name}: expected string or single-key object\")),\n\
                 }}"
            );
            impl_deserialize(name, &body)
        }
    }
}

fn named_field_initializers(type_name: &str, fields: &[Field], source: &str) -> String {
    let mut out = String::new();
    for f in fields {
        if f.skip {
            out.push_str(&format!(
                "{}: ::std::default::Default::default(),\n",
                f.name
            ));
        } else {
            out.push_str(&format!(
                "{field}: ::serde::Deserialize::deserialize_value({source}.get(\"{field}\")\
                 .ok_or_else(|| ::serde::Error::new(\"{type_name}: missing field `{field}`\"))?)?,\n",
                field = f.name,
            ));
        }
    }
    out
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
