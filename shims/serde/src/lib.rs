//! Offline stub of the `serde` data-model surface used by this workspace.
//!
//! The real `serde` crate is unavailable offline, so this shim provides the
//! same *spelling* — `use serde::{Serialize, Deserialize}` plus
//! `#[derive(Serialize, Deserialize)]` (re-exported from the sibling
//! `serde_derive` proc-macro stub) — over a much simpler data model: values
//! serialize into an in-memory [`Value`] tree that `serde_json` (also a shim)
//! renders to and parses from JSON text.
//!
//! The derive supports exactly the shapes this workspace uses: named-field
//! structs, newtype tuple structs, enums with unit and struct variants, and
//! the `#[serde(skip)]` field attribute.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// In-memory serialization tree (the shim's entire data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (used for negative numbers).
    Int(i64),
    /// Unsigned integer (used for non-negative integers).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered map with string keys (field order is preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrows the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrows the string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a field of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }
}

/// Error produced by deserialization (and fallible serialization).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Serialization into the shim's [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn serialize_value(&self) -> Value;
}

/// Deserialization from the shim's [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    fn deserialize_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    other => return Err(Error::new(format!(
                        "expected unsigned integer, found {other:?}"
                    ))),
                };
                <$t>::try_from(raw).map_err(|_| {
                    Error::new(format!("integer {raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::UInt(v as u64)
                } else {
                    Value::Int(v)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let raw: i64 = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u).map_err(|_| {
                        Error::new(format!("integer {u} out of range for i64"))
                    })?,
                    other => return Err(Error::new(format!(
                        "expected integer, found {other:?}"
                    ))),
                };
                <$t>::try_from(raw).map_err(|_| {
                    Error::new(format!("integer {raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(Error::new(format!("expected number, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        f64::deserialize_value(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for &str {
    fn serialize_value(&self) -> Value {
        Value::String((*self).to_string())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let s = String::deserialize_value(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new("expected single-character string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::new("expected array"))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        T::deserialize_value(value).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_array().ok_or_else(|| Error::new("expected array (tuple)"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::new(format!(
                        "expected tuple of {expected}, found array of {}",
                        items.len()
                    )));
                }
                Ok(($($name::deserialize_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::deserialize_value(&42u32.serialize_value()), Ok(42));
        assert_eq!(i64::deserialize_value(&(-5i64).serialize_value()), Ok(-5));
        assert_eq!(f64::deserialize_value(&1.25f64.serialize_value()), Ok(1.25));
        assert_eq!(bool::deserialize_value(&true.serialize_value()), Ok(true));
        assert_eq!(
            String::deserialize_value(&"hi".to_string().serialize_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![Some(1u64), None, Some(3)];
        let tree = v.serialize_value();
        assert_eq!(Vec::<Option<u64>>::deserialize_value(&tree), Ok(v));
        let t = (3usize, 0.5f64);
        assert_eq!(
            <(usize, f64)>::deserialize_value(&t.serialize_value()),
            Ok(t)
        );
    }

    #[test]
    fn type_mismatches_error() {
        assert!(u32::deserialize_value(&Value::String("x".into())).is_err());
        assert!(bool::deserialize_value(&Value::UInt(1)).is_err());
        assert!(u8::deserialize_value(&Value::UInt(300)).is_err());
        assert!(<(u8, u8)>::deserialize_value(&Value::Array(vec![Value::UInt(1)])).is_err());
    }

    #[test]
    fn value_accessors() {
        let obj = Value::Object(vec![("k".into(), Value::UInt(1))]);
        assert_eq!(obj.get("k"), Some(&Value::UInt(1)));
        assert_eq!(obj.get("missing"), None);
        assert!(Value::Null.as_object().is_none());
        assert_eq!(Value::String("s".into()).as_str(), Some("s"));
    }
}
