//! Offline stub of the `serde_json` API surface used by this workspace:
//! [`to_string`], [`to_string_pretty`], and [`from_str`] over the shim
//! `serde::Value` data model. See `shims/README.md`.
//!
//! Numbers round-trip exactly: floats are printed with Rust's shortest
//! round-trip formatting, and infinities are encoded as `1e999` / `-1e999`
//! (which parse back to the same infinities).

#![forbid(unsafe_code)]

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable, indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any shim-`Deserialize` type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::deserialize_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                write_newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !entries.is_empty() {
                write_newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn write_newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_nan() {
        out.push_str("null");
    } else if f == f64::INFINITY {
        // Overflows any f64 parse back to +inf; keeps infinities round-tripping.
        out.push_str("1e999");
    } else if f == f64::NEG_INFINITY {
        out.push_str("-1e999");
    } else {
        // Rust's shortest round-trip representation; always contains '.' or 'e'
        // for non-integral values, and plain digits like "2" for integral ones,
        // which still parses back as a float-compatible number.
        let formatted = format!("{f:?}");
        out.push_str(&formatted);
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.consume_literal("null") => Ok(Value::Null),
            Some(b't') if self.consume_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded character.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = text.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&3u64).unwrap(), "3");
        assert_eq!(to_string(&-4i64).unwrap(), "-4");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        assert_eq!(from_str::<u64>("3").unwrap(), 3);
        assert_eq!(from_str::<f64>("0.25").unwrap(), 0.25);
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [
            0.1,
            1.0 / 3.0,
            f64::MAX,
            f64::MIN_POSITIVE,
            -2.5e-8,
            1e20,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, f, "{text}");
        }
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u32>>>(&text).unwrap(), v);

        let pairs: Vec<(usize, f64)> = vec![(0, 0.5), (2, 1.5)];
        let text = to_string(&pairs).unwrap();
        assert_eq!(from_str::<Vec<(usize, f64)>>(&text).unwrap(), pairs);
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "he said \"hi\"\nline2\tend \\ π".to_string();
        let text = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&text).unwrap(), s);
        assert_eq!(from_str::<String>("\"\\u0041\"").unwrap(), "A");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12trailing").is_err());
        assert!(from_str::<Vec<u64>>("[1,2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn pretty_output_is_parseable() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![]];
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&text).unwrap(), v);
    }
}
