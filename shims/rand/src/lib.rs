//! Offline stub of the subset of the `rand` 0.8 API used by this workspace.
//!
//! The build environment has no access to crates.io, so this crate provides the
//! same *interface* (`Rng`, `SeedableRng`, `rngs::StdRng`, `seq::SliceRandom`)
//! backed by a deterministic xoshiro256++ generator seeded through SplitMix64.
//! Streams differ from the real `rand` crate, but every consumer in this
//! workspace only relies on determinism and statistical quality, not on exact
//! stream reproduction.

#![forbid(unsafe_code)]

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Bernoulli draw with probability `p` of returning `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Uniform draw from `[low, high)` (only the integer forms needed here).
    fn gen_range(&mut self, range: core::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "cannot sample from empty range");
        let span = (range.end - range.start) as u64;
        range.start + (self.next_u64() % span) as usize
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step used to expand seeds into full generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot produce it
            // from any seed, but keep the guard for clarity.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (`SliceRandom`).
pub mod seq {
    use super::Rng;

    /// Shuffling support for slices.
    pub trait SliceRandom {
        /// Element type of the sequence.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

/// Commonly imported items.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x = rng.gen_range(3..9);
            assert!((3..9).contains(&x));
        }
    }
}
