//! Offline stub of the subset of the `criterion` API used by this workspace's
//! bench targets: `Criterion`, benchmark groups, `Bencher::iter`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up once, then
//! timed over enough iterations to fill a small time budget, and the mean,
//! minimum, and maximum iteration times are printed. There are no HTML
//! reports, statistics, or baselines — just honest wall-clock numbers suitable
//! for relative comparisons such as "batched vs sequential".

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Sets the per-benchmark time budget.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.measurement_time = budget;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbench group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            &name.into(),
            self.sample_size,
            self.measurement_time,
            &mut f,
        );
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.criterion.sample_size = samples.max(1);
        self
    }

    /// Sets the per-benchmark time budget for this group.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.criterion.measurement_time = budget;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(
            &label,
            self.criterion.sample_size,
            self.criterion.measurement_time,
            &mut f,
        );
        self
    }

    /// Runs one benchmark that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(
            &label,
            self.criterion.sample_size,
            self.criterion.measurement_time,
            &mut |bencher| f(bencher, input),
        );
        self
    }

    /// Ends the group (printing nothing extra; provided for API compatibility).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter, e.g. `kendall_tau/100`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into a printable benchmark label.
pub trait IntoBenchmarkId {
    /// The label used in output.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    budget: Duration,
    /// Mean/min/max per-iteration durations recorded by [`Bencher::iter`].
    result: Option<(Duration, Duration, Duration, u64)>,
}

impl Bencher {
    /// Times the routine, recording per-iteration statistics.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and calibration: time one iteration to size the batches.
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed().max(Duration::from_nanos(1));

        let per_sample = (self.budget.as_nanos() / self.sample_size.max(1) as u128).max(1);
        let iters_per_sample = (per_sample / first.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let mut iterations = 0u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let sample = start.elapsed() / iters_per_sample as u32;
            total += sample;
            min = min.min(sample);
            max = max.max(sample);
            iterations += iters_per_sample;
            if total > self.budget * 4 {
                break;
            }
        }
        let samples = (iterations / iters_per_sample).max(1) as u32;
        self.result = Some((total / samples, min, max, iterations));
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    budget: Duration,
    f: &mut F,
) {
    let mut bencher = Bencher {
        sample_size,
        budget,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some((mean, min, max, iters)) => println!(
            "  {label:<50} mean {:>12?}  min {:>12?}  max {:>12?}  ({iters} iters)",
            mean, min, max
        ),
        None => println!("  {label:<50} (no measurement: Bencher::iter never called)"),
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags such as `--bench`;
            // the shim has no filtering, so arguments are ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(20));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_runs_benches() {
        benches();
    }

    #[test]
    fn bench_function_records_a_result() {
        let mut c = Criterion::default();
        c.sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .bench_function("direct", |b| b.iter(|| black_box(1 + 1)));
    }
}
