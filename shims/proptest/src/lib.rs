//! Offline stub of the subset of `proptest` used by this workspace.
//!
//! Provides the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, `ProptestConfig::with_cases`, `any::<T>()`, range
//! strategies, and `proptest::sample::subsequence` — enough to run this
//! workspace's property tests as deterministic randomized tests. There is no
//! shrinking: a failing case reports the sampled inputs via the panic message
//! produced by the assertion itself.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// Outcome of one generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case did not meet an assumption and should not count.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Result type produced by the body of a generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The RNG handed to strategies (deterministic per test function).
pub type TestRng = StdRng;

/// A source of random values of one type.
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Draws one value.
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.gen::<u64>() % span) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.gen::<u64>() % span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn sample_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.gen::<f64>() * (self.end - self.start)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f64>()
    }
}

/// Strategy wrapper produced by [`any`].
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

/// Sequence sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Size specification accepted by [`subsequence`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Strategy producing order-preserving subsequences of a base vector.
    pub struct Subsequence<T> {
        base: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;

        fn sample_value(&self, rng: &mut TestRng) -> Vec<T> {
            let n = self.base.len();
            let lo = self.size.lo.min(n);
            let hi = self.size.hi_exclusive.min(n + 1).max(lo + 1);
            let len = lo + (rng.gen::<u64>() as usize) % (hi - lo);
            // Choose `len` distinct indices, then emit them in order.
            let mut indices: Vec<usize> = (0..n).collect();
            for i in 0..len.min(n) {
                let j = i + (rng.gen::<u64>() as usize) % (n - i);
                indices.swap(i, j);
            }
            let mut chosen = indices[..len].to_vec();
            chosen.sort_unstable();
            chosen.into_iter().map(|i| self.base[i].clone()).collect()
        }
    }

    /// Order-preserving random subsequence of `base` with size drawn from `size`.
    pub fn subsequence<T: Clone>(base: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        Subsequence {
            base,
            size: size.into(),
        }
    }
}

/// Creates the deterministic RNG used by one generated test function.
pub fn test_rng(test_name: &str) -> TestRng {
    // Stable per-test seed: FNV-1a over the test name.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::sample;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), format!($($fmt)*), l, r),
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Discards the current case unless an assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(64);
            while passed < config.cases {
                attempts += 1;
                if attempts > max_attempts {
                    panic!(
                        "proptest shim: too many rejected cases in `{}` ({} attempts, {} passed)",
                        stringify!($name), attempts, passed
                    );
                }
                $(let $arg = $crate::Strategy::sample_value(&($strategy), &mut rng);)+
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::core::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                        panic!("proptest case failed in `{}`: {message}", stringify!($name));
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(n in 3usize..17, x in 0.25f64..0.75, k in 2..=6usize) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((2..=6).contains(&k));
        }

        #[test]
        fn assume_discards_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn subsequences_preserve_order(sub in sample::subsequence((0u32..20).collect::<Vec<_>>(), 1..20)) {
            prop_assert!(!sub.is_empty() && sub.len() < 20);
            for pair in sub.windows(2) {
                prop_assert!(pair[0] < pair[1]);
            }
        }
    }

    #[test]
    fn any_u64_varies() {
        let mut rng = crate::test_rng("any_u64_varies");
        let a = crate::Strategy::sample_value(&crate::any::<u64>(), &mut rng);
        let b = crate::Strategy::sample_value(&crate::any::<u64>(), &mut rng);
        assert_ne!(a, b);
    }
}
