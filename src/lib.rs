//! # mani-rank
//!
//! Umbrella crate for the MANI-Rank reproduction: **M**ultiple **A**ttribute a**N**d
//! **I**ntersectional group fairness for consensus **Rank**ing (Cachel, Rundensteiner,
//! Harrison — ICDE 2022).
//!
//! This crate re-exports the workspace's public API so applications can depend on a single
//! crate:
//!
//! * [`ranking`] — candidate databases, protected attributes, rankings, Kendall tau,
//!   precedence matrices ([`mani_ranking`]).
//! * [`fairness`] — FPR / ARP / IRP metrics, the MANI-Rank criteria, PD loss, Price of
//!   Fairness, fairness audits ([`mani_fairness`]).
//! * [`aggregation`] — fairness-unaware consensus methods: Borda, Copeland, Schulze,
//!   Pick-A-Perm, weighted profiles, Kemeny local search ([`mani_aggregation`]).
//! * [`solver`] — exact branch-and-bound (Fair-)Kemeny solver ([`mani_solver`]).
//! * [`core`] — the MFCR algorithms: Make-MR-Fair, Fair-Kemeny, Fair-Copeland,
//!   Fair-Schulze, Fair-Borda, and the paper's baselines ([`mani_core`]).
//! * [`datagen`] — Mallows model workloads, fairness-targeted modal rankings, and the
//!   synthetic case-study datasets ([`mani_datagen`]).
//! * [`engine`] — the multi-threaded batch consensus engine: typed requests, async
//!   [`mani_engine::JobHandle`]s with bounded-queue backpressure, a worker pool, and
//!   per-dataset precedence caching ([`mani_engine`]).
//! * [`serve`] — the HTTP front-end over the engine: hand-rolled HTTP/1.1 server, JSON
//!   API, LRU response cache, and the `mani` CLI ([`mani_serve`]; see `docs/API.md`).
//! * [`tabular`] — the shared aligned-text/CSV table renderer ([`mani_tabular`]).
//! * [`experiments`] — the harness regenerating every table and figure of the paper
//!   ([`mani_experiments`]).
//!
//! ## Quickstart
//!
//! ```
//! use mani_rank::prelude::*;
//!
//! // A small committee-style problem: 12 candidates, two protected attributes.
//! let db = mani_rank::datagen::binary_population(12, 0.5, 0.5, 42);
//! let groups = GroupIndex::new(&db);
//! let modal = ModalRankingBuilder::new(&db).build(&FairnessTarget::low_fair(2));
//! let profile = MallowsModel::new(modal, 0.8).sample_profile(10, 7);
//!
//! // Ask for a consensus that is close to statistical parity on every attribute and on
//! // their intersection (Δ = 0.2), while representing the committee's preferences.
//! let ctx = MfcrContext::new(&db, &groups, &profile, FairnessThresholds::uniform(0.2));
//! let outcome = FairCopeland::new().solve(&ctx).unwrap();
//! assert!(outcome.criteria.is_satisfied());
//! assert!(outcome.pd_loss <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mani_aggregation as aggregation;
pub use mani_core as core;
pub use mani_datagen as datagen;
pub use mani_engine as engine;
pub use mani_experiments as experiments;
pub use mani_fairness as fairness;
pub use mani_ranking as ranking;
pub use mani_serve as serve;
pub use mani_solver as solver;
pub use mani_tabular as tabular;

/// Commonly used items, importable with `use mani_rank::prelude::*`.
pub mod prelude {
    pub use mani_core::{
        make_mr_fair, CorrectFairestPerm, ExactKemeny, FairBorda, FairCopeland, FairKemeny,
        FairSchulze, KemenyWeighted, MethodKind, MfcrContext, MfcrMethod, MfcrOutcome,
        PickFairestPerm,
    };
    pub use mani_datagen::{
        binary_population, paper_population_90, CsRankingsDataset, ExamDataset, FairnessTarget,
        MallowsModel, ModalRankingBuilder,
    };
    pub use mani_engine::{
        ConsensusEngine, ConsensusRequest, ConsensusResponse, EngineConfig, EngineDataset,
        JobHandle, JobId, JobStatus, PrecedenceCache,
    };
    pub use mani_fairness::{
        attribute_rank_parity, intersectional_rank_parity, pairwise_disagreement_loss,
        price_of_fairness, FairnessAudit, FairnessThresholds, ManiRankCriteria, ParityScores,
    };
    pub use mani_ranking::{
        kendall_tau, CandidateDb, CandidateDbBuilder, CandidateId, GroupIndex, GroupKey,
        PrecedenceMatrix, Ranking, RankingProfile,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_an_end_to_end_workflow() {
        let db = crate::datagen::binary_population(10, 0.5, 0.5, 1);
        let groups = GroupIndex::new(&db);
        let modal = ModalRankingBuilder::new(&db).build(&FairnessTarget::low_fair(2));
        let profile = MallowsModel::new(modal, 0.6).sample_profile(6, 2);
        let ctx = MfcrContext::new(&db, &groups, &profile, FairnessThresholds::uniform(0.25));
        let outcome = FairBorda::new().solve(&ctx).unwrap();
        assert!(outcome.criteria.is_satisfied());
    }
}
