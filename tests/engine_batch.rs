//! Integration tests for the batch consensus engine, exercised through the
//! umbrella crate exactly as a downstream service would use it:
//!
//! * cache-hit equivalence — engine results are bit-identical to direct
//!   per-method `MfcrMethod::solve` calls,
//! * single-build sharing — a batch over `d` datasets computes exactly `d`
//!   precedence matrices (asserted via cache stats),
//! * deterministic ordering — responses and per-method results arrive in
//!   request order for any thread count,
//! * CSV round-trip for the CLI loader.

use std::sync::Arc;

use mani_rank::engine::{csvio, ConsensusEngine, ConsensusRequest, EngineConfig, EngineDataset};
use mani_rank::prelude::*;

fn workload(n: usize, m: usize, theta: f64, seed: u64) -> (CandidateDb, RankingProfile) {
    let db = mani_rank::datagen::binary_population(n, 0.5, 0.5, seed);
    let modal = ModalRankingBuilder::new(&db).build(&FairnessTarget::low_fair(2));
    let profile = MallowsModel::new(modal, theta).sample_profile(m, seed ^ 0x515);
    (db, profile)
}

fn dataset(n: usize, m: usize, theta: f64, seed: u64) -> Arc<EngineDataset> {
    let (db, profile) = workload(n, m, theta, seed);
    Arc::new(EngineDataset::new(format!("w{n}x{m}s{seed}"), db, profile).unwrap())
}

const METHODS: [MethodKind; 5] = [
    MethodKind::FairBorda,
    MethodKind::FairCopeland,
    MethodKind::FairSchulze,
    MethodKind::PickFairestPerm,
    MethodKind::CorrectFairestPerm,
];

#[test]
fn batched_results_are_bit_identical_to_direct_solve_with_one_build_per_dataset() {
    let engine = ConsensusEngine::with_config(EngineConfig {
        threads: 4,
        default_budget: None,
        ..EngineConfig::default()
    });
    let datasets = [dataset(24, 12, 0.8, 5), dataset(30, 15, 0.6, 9)];
    let delta = 0.15;

    let responses = engine.submit_batch(
        datasets
            .iter()
            .map(|ds| {
                ConsensusRequest::new(Arc::clone(ds), METHODS, FairnessThresholds::uniform(delta))
            })
            .collect(),
    );

    // The batch over two datasets and five methods built exactly two matrices.
    let stats = engine.cache().stats();
    assert_eq!(stats.builds, 2, "one precedence build per dataset");
    assert_eq!(stats.entries, 2);
    assert_eq!(
        stats.hits,
        stats.lookups - 2,
        "every lookup after the builds must hit"
    );

    // Every batched outcome equals the direct, single-threaded library call.
    for (ds, response) in datasets.iter().zip(&responses) {
        assert!(response.is_complete());
        let groups = GroupIndex::new(ds.db());
        for result in response.successes() {
            let ctx = MfcrContext::new(
                ds.db(),
                &groups,
                ds.profile(),
                FairnessThresholds::uniform(delta),
            );
            let direct = result.method.instantiate().solve(&ctx).unwrap();
            assert_eq!(
                direct.ranking,
                result.outcome.ranking,
                "{} on {}: batched ranking differs from direct solve",
                result.method.name(),
                response.dataset
            );
            assert_eq!(direct.pd_loss, result.outcome.pd_loss);
            assert_eq!(
                direct.criteria.is_satisfied(),
                result.outcome.criteria.is_satisfied()
            );
            assert_eq!(direct.correction_swaps, result.outcome.correction_swaps);
        }
    }
}

#[test]
fn batch_ordering_is_deterministic_across_thread_counts() {
    let datasets = [
        dataset(16, 8, 0.7, 21),
        dataset(20, 10, 0.5, 22),
        dataset(18, 6, 0.9, 23),
    ];
    let collect = |threads: usize| -> Vec<(String, Vec<String>)> {
        let engine = ConsensusEngine::with_config(EngineConfig {
            threads,
            default_budget: None,
            ..EngineConfig::default()
        });
        let responses = engine.submit_batch(
            datasets
                .iter()
                .map(|ds| {
                    ConsensusRequest::new(Arc::clone(ds), METHODS, FairnessThresholds::uniform(0.2))
                })
                .collect(),
        );
        responses
            .into_iter()
            .map(|response| {
                let methods: Vec<String> = response
                    .successes()
                    .map(|r| {
                        let order: Vec<u32> = r.outcome.ranking.iter().map(|c| c.0).collect();
                        format!("{}:{order:?}", r.method.name())
                    })
                    .collect();
                (response.dataset, methods)
            })
            .collect()
    };

    let single = collect(1);
    for threads in [2, 4, 8] {
        assert_eq!(
            collect(threads),
            single,
            "results must not depend on the worker count ({threads} threads)"
        );
    }
    // Responses come back in request order with methods in request order.
    assert_eq!(single[0].0, "w16x8s21");
    assert_eq!(single[1].0, "w20x10s22");
    assert!(single[0].1[0].starts_with("Fair-Borda:"));
    assert!(single[0].1[4].starts_with("Correct-Fairest-Perm:"));
}

#[test]
fn engine_handles_duplicate_datasets_and_mixed_thresholds() {
    let engine = ConsensusEngine::new();
    let shared = dataset(22, 10, 0.8, 31);
    let responses = engine.submit_batch(vec![
        ConsensusRequest::new(
            Arc::clone(&shared),
            [MethodKind::FairBorda],
            FairnessThresholds::uniform(0.05),
        ),
        ConsensusRequest::new(
            Arc::clone(&shared),
            [MethodKind::FairBorda],
            FairnessThresholds::unconstrained(),
        ),
    ]);
    assert_eq!(engine.cache().stats().builds, 1, "same dataset, one build");
    let tight = responses[0].outcome(MethodKind::FairBorda).unwrap();
    let loose = responses[1].outcome(MethodKind::FairBorda).unwrap();
    assert!(tight.criteria.is_satisfied());
    assert_eq!(
        loose.correction_swaps, 0,
        "unconstrained thresholds need no correction"
    );
    assert!(tight.pd_loss >= loose.pd_loss - 1e-12);
}

#[test]
fn csv_round_trip_preserves_database_and_profile() {
    let (db, profile) = workload(18, 7, 0.6, 77);
    let candidates_csv = csvio::render_candidates(&db);
    let rankings_csv = csvio::render_rankings(&profile, &db);

    let db2 = csvio::parse_candidates(&candidates_csv).unwrap();
    assert_eq!(db, db2, "candidate database must survive the round trip");
    let profile2 = csvio::parse_rankings(&rankings_csv, &db2).unwrap();
    assert_eq!(profile, profile2, "profile must survive the round trip");

    // And the round-tripped dataset produces identical consensus outcomes.
    let original = Arc::new(EngineDataset::new("orig", db, profile).unwrap());
    let reloaded = Arc::new(EngineDataset::new("reload", db2, profile2).unwrap());
    assert_eq!(original.fingerprint(), reloaded.fingerprint());

    let engine = ConsensusEngine::new();
    let responses = engine.submit_batch(vec![
        ConsensusRequest::new(original, METHODS, FairnessThresholds::uniform(0.1)),
        ConsensusRequest::new(reloaded, METHODS, FairnessThresholds::uniform(0.1)),
    ]);
    assert_eq!(
        engine.cache().stats().builds,
        1,
        "identical content shares one entry"
    );
    for (a, b) in responses[0].successes().zip(responses[1].successes()) {
        assert_eq!(a.outcome.ranking, b.outcome.ranking);
    }
}

#[test]
fn exact_methods_respect_request_budgets_in_batches() {
    let engine = ConsensusEngine::new();
    let ds = dataset(14, 8, 0.6, 91);
    let responses = engine.submit_batch(vec![
        ConsensusRequest::new(
            Arc::clone(&ds),
            [MethodKind::FairKemeny],
            FairnessThresholds::uniform(0.3),
        )
        .with_budget(3),
        ConsensusRequest::new(
            ds,
            [MethodKind::FairKemeny],
            FairnessThresholds::uniform(0.3),
        )
        .with_budget(2_000_000),
    ]);
    let starved = responses[0].outcome(MethodKind::FairKemeny).unwrap();
    let funded = responses[1].outcome(MethodKind::FairKemeny).unwrap();
    assert!(!starved.optimal, "3 nodes cannot close n = 14");
    assert!(funded.optimal, "2M nodes close n = 14");
    assert!(funded.pd_loss <= starved.pd_loss + 1e-12);
    assert!(funded.criteria.is_satisfied());
}
