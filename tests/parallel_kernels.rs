//! Cross-crate properties of the parallel consensus kernels: every parallel
//! kernel must be bit-identical to its serial counterpart for every thread
//! and shard count, from the raw kernels up through the engine.

use std::sync::Arc;

use mani_aggregation::SchulzeAggregator;
use mani_core::{FairKemeny, MethodKind, MfcrContext, MfcrMethod};
use mani_datagen::{binary_population, FairnessTarget, MallowsModel, ModalRankingBuilder};
use mani_engine::{ConsensusEngine, ConsensusRequest, EngineConfig, EngineDataset};
use mani_fairness::FairnessThresholds;
use mani_ranking::{GroupIndex, Parallelism, PrecedenceMatrix, Ranking, RankingProfile};
use mani_solver::SolverConfig;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn forced(threads: usize) -> Parallelism {
    // min_candidates 1: exercise the parallel code paths even at tiny n.
    Parallelism::new(threads).with_min_candidates(1)
}

fn forced_tiled(threads: usize, tile: usize) -> Parallelism {
    forced(threads).with_tile_size(tile)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn prop_sharded_matrix_equals_sequential(
        n in 2usize..16,
        m in 1usize..24,
        shards in 1usize..9,
        seed in proptest::prelude::any::<u64>()
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rankings: Vec<Ranking> = (0..m).map(|_| Ranking::random(n, &mut rng)).collect();
        let serial = PrecedenceMatrix::from_rankings(&rankings).unwrap();
        let sharded =
            PrecedenceMatrix::from_rankings_parallel(&rankings, &forced(shards)).unwrap();
        prop_assert_eq!(&serial, &sharded);

        let weights: Vec<u32> = (1..=m as u32).map(|w| (w % 9) + 1).collect();
        let serial_w = PrecedenceMatrix::from_weighted_rankings(&rankings, &weights).unwrap();
        let sharded_w = PrecedenceMatrix::from_weighted_rankings_parallel(
            &rankings,
            &weights,
            &forced(shards),
        )
        .unwrap();
        prop_assert_eq!(&serial_w, &sharded_w);
    }

    #[test]
    fn prop_schulze_bit_identical_across_threads(
        n in 1usize..20,
        m in 1usize..8,
        seed in proptest::prelude::any::<u64>()
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rankings: Vec<Ranking> = (0..m).map(|_| Ranking::random(n, &mut rng)).collect();
        let matrix = RankingProfile::new(rankings).unwrap().precedence_matrix();
        let aggregator = SchulzeAggregator::new();
        let reference = aggregator.strongest_paths(&matrix);
        let serial_consensus = aggregator.consensus_from_matrix(&matrix);
        for threads in THREAD_COUNTS {
            let par = forced(threads);
            prop_assert_eq!(
                aggregator.strongest_paths_matrix(&matrix, &par).to_nested(),
                reference.clone(),
                "strengths diverged at threads = {}", threads
            );
            prop_assert_eq!(
                aggregator.consensus_from_matrix_with(&matrix, &par),
                serial_consensus.clone(),
                "consensus diverged at threads = {}", threads
            );
        }
    }
}

/// Tentpole differential: the cache-blocked (tiled) Floyd–Warshall must be
/// cell-for-cell identical to the legacy nested reference AND to the untiled
/// flat serial kernel at every tile size and thread count, on a weighted
/// profile large enough to cover several partial and full tiles.
#[test]
fn tiled_fw_matches_legacy_and_flat_across_tiles_and_threads() {
    let n = 70;
    let mut rng = StdRng::seed_from_u64(0x7117ED);
    let rankings: Vec<Ranking> = (0..9).map(|_| Ranking::random(n, &mut rng)).collect();
    let weights: Vec<u32> = (0..9u32).map(|w| (w % 5) + 1).collect();
    let matrix = PrecedenceMatrix::from_weighted_rankings(&rankings, &weights).unwrap();
    let aggregator = SchulzeAggregator::new();
    let reference = aggregator.strongest_paths(&matrix);
    let flat = aggregator.strongest_paths_flat(&matrix);
    assert_eq!(flat.to_nested(), reference, "flat kernel diverged");
    for tile in [8usize, 32, 64, n] {
        for threads in THREAD_COUNTS {
            let tiled = aggregator.strongest_paths_matrix(&matrix, &forced_tiled(threads, tile));
            assert_eq!(
                tiled, flat,
                "tiled kernel diverged at tile = {tile}, threads = {threads}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn prop_tiled_fw_bit_identical(
        n in 1usize..24,
        m in 1usize..8,
        tile in 1usize..12,
        threads in 1usize..9,
        seed in proptest::prelude::any::<u64>()
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rankings: Vec<Ranking> = (0..m).map(|_| Ranking::random(n, &mut rng)).collect();
        let matrix = RankingProfile::new(rankings).unwrap().precedence_matrix();
        let aggregator = SchulzeAggregator::new();
        let flat = aggregator.strongest_paths_flat(&matrix);
        let tiled = aggregator.strongest_paths_matrix(&matrix, &forced_tiled(threads, tile));
        prop_assert_eq!(&tiled, &flat, "tile = {}, threads = {}", tile, threads);
        prop_assert_eq!(flat.to_nested(), aggregator.strongest_paths(&matrix));
    }

    #[test]
    fn prop_pair_sharded_scoring_matches_serial(
        n in 2usize..16,
        m in 1usize..10,
        shards in 1usize..9,
        seed in proptest::prelude::any::<u64>()
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rankings: Vec<Ranking> = (0..m).map(|_| Ranking::random(n, &mut rng)).collect();
        let matrix = PrecedenceMatrix::from_rankings(&rankings).unwrap();
        let par = forced(shards);
        prop_assert_eq!(
            mani_aggregation::scoring::copeland_wins_parallel(&matrix, &par),
            mani_aggregation::scoring::copeland_wins(&matrix)
        );
        prop_assert_eq!(
            matrix.pairwise_support_scores_parallel(&par),
            matrix.pairwise_support_scores()
        );
        let consensus = Ranking::random(n, &mut rng);
        prop_assert_eq!(
            matrix.total_disagreements_parallel(&consensus, &par).unwrap(),
            matrix.total_disagreements(&consensus).unwrap()
        );
    }
}

#[test]
fn fair_kemeny_is_bit_identical_across_threads_and_shard_counts() {
    for (n, seed, delta) in [(10usize, 3u64, 0.3), (12, 7, 0.25), (14, 11, 0.4)] {
        let db = binary_population(n, 0.5, 0.5, seed);
        let groups = GroupIndex::new(&db);
        let modal = ModalRankingBuilder::new(&db).build(&FairnessTarget::low_fair(2));
        let profile = MallowsModel::new(modal, 0.7).sample_profile(8, seed ^ 0xD00D);
        let serial_ctx =
            MfcrContext::new(&db, &groups, &profile, FairnessThresholds::uniform(delta));
        let serial = FairKemeny::new().solve(&serial_ctx).unwrap();
        assert!(
            serial.optimal,
            "n = {n} must close within the default budget"
        );
        for threads in THREAD_COUNTS {
            let ctx = MfcrContext::new(&db, &groups, &profile, FairnessThresholds::uniform(delta))
                .with_parallelism(forced(threads));
            let parallel = FairKemeny::new().solve(&ctx).unwrap();
            assert!(parallel.optimal);
            assert_eq!(parallel.ranking, serial.ranking, "threads = {threads}");
            assert_eq!(parallel.pd_loss, serial.pd_loss, "threads = {threads}");

            // An explicit solver config with its own parallelism must win too.
            let config = SolverConfig::default().with_parallelism(forced(threads));
            let explicit = FairKemeny::with_config(config).solve(&serial_ctx).unwrap();
            assert_eq!(explicit.ranking, serial.ranking, "threads = {threads}");
        }
    }
}

#[test]
fn engine_results_are_bit_identical_across_kernel_thread_counts() {
    let make_dataset = || {
        let db = binary_population(18, 0.5, 0.5, 77);
        let modal = ModalRankingBuilder::new(&db).build(&FairnessTarget::low_fair(2));
        let profile = MallowsModel::new(modal, 0.8).sample_profile(10, 1234);
        Arc::new(EngineDataset::new("kernels", db, profile).unwrap())
    };
    let methods = [
        MethodKind::FairBorda,
        MethodKind::FairCopeland,
        MethodKind::FairSchulze,
        MethodKind::FairKemeny,
        MethodKind::Kemeny,
    ];
    let run = |kernel_threads: usize| {
        let engine = ConsensusEngine::with_config(EngineConfig {
            threads: 2,
            kernel_threads,
            kernel_min_candidates: 1,
            ..EngineConfig::default()
        });
        engine.submit(ConsensusRequest::new(
            make_dataset(),
            methods,
            FairnessThresholds::uniform(0.2),
        ))
    };
    let baseline = run(1);
    assert!(baseline.is_complete());
    for kernel_threads in [2usize, 8] {
        let response = run(kernel_threads);
        assert!(response.is_complete());
        for (serial, parallel) in baseline.successes().zip(response.successes()) {
            assert_eq!(serial.method, parallel.method);
            assert_eq!(
                serial.outcome.ranking,
                parallel.outcome.ranking,
                "{} diverged at kernel_threads = {kernel_threads}",
                serial.method.name()
            );
        }
    }
}
