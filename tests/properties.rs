//! Cross-crate property tests on the MFCR pipeline's key invariants.

use mani_rank::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn workload(
    n: usize,
    m: usize,
    theta: f64,
    seed: u64,
) -> (CandidateDb, GroupIndex, RankingProfile) {
    let db = mani_rank::datagen::binary_population(n.max(8), 0.5, 0.5, seed);
    let groups = GroupIndex::new(&db);
    let modal = ModalRankingBuilder::new(&db).build(&FairnessTarget::low_fair(2));
    let profile = MallowsModel::new(modal, theta).sample_profile(m.max(1), seed ^ 0x1234);
    (db, groups, profile)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Make-MR-Fair never invalidates the permutation and never worsens the worst parity
    /// violation it was asked to fix.
    #[test]
    fn correction_never_increases_the_max_violation(
        n in 8usize..28,
        seed in any::<u64>(),
        delta in 0.1f64..0.5,
    ) {
        let (db, groups, _) = workload(n, 1, 0.5, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let ranking = Ranking::random(db.len(), &mut rng);
        let thresholds = FairnessThresholds::uniform(delta);
        let before = ManiRankCriteria::evaluate(&ranking, &groups, &thresholds);
        let report = make_mr_fair(&ranking, &groups, &thresholds);
        let after = ManiRankCriteria::evaluate(&report.ranking, &groups, &thresholds);
        prop_assert!(report.ranking.check_invariants().is_ok());
        let before_violation = before.parity().max_violation();
        let after_violation = after.parity().max_violation();
        prop_assert!(after_violation <= before_violation + 1e-9 || after.is_satisfied());
    }

    /// Every polynomial-time MFCR method returns a valid ranking whose PD loss is within
    /// [0, 1] and no smaller than the Kemeny-optimal loss of the profile (checked against
    /// the unconstrained exact solver on small instances).
    #[test]
    fn fair_methods_never_beat_the_unconstrained_optimum(
        n in 8usize..14,
        m in 2usize..8,
        seed in any::<u64>(),
    ) {
        let (db, groups, profile) = workload(n, m, 0.6, seed);
        let unfair_ctx = MfcrContext::new(&db, &groups, &profile, FairnessThresholds::unconstrained());
        let optimum = ExactKemeny::new().solve(&unfair_ctx).unwrap();
        prop_assume!(optimum.optimal);
        let ctx = MfcrContext::new(&db, &groups, &profile, FairnessThresholds::uniform(0.25));
        for kind in [MethodKind::FairBorda, MethodKind::FairCopeland, MethodKind::FairSchulze, MethodKind::CorrectFairestPerm] {
            let outcome = kind.instantiate().solve(&ctx).unwrap();
            prop_assert!((0.0..=1.0).contains(&outcome.pd_loss));
            prop_assert!(outcome.pd_loss >= optimum.pd_loss - 1e-9, "{}", kind.name());
        }
    }

    /// The PD loss reported by an outcome always matches an independent recomputation.
    #[test]
    fn reported_pd_loss_matches_recomputation(n in 8usize..20, m in 2usize..6, seed in any::<u64>()) {
        let (db, groups, profile) = workload(n, m, 0.4, seed);
        let ctx = MfcrContext::new(&db, &groups, &profile, FairnessThresholds::uniform(0.2));
        let outcome = FairCopeland::new().solve(&ctx).unwrap();
        let recomputed = pairwise_disagreement_loss(&profile, &outcome.ranking).unwrap();
        prop_assert!((outcome.pd_loss - recomputed).abs() < 1e-12);
    }

    /// Mallows profiles concentrate around their modal ranking: the average normalised
    /// Kendall distance decreases as theta increases.
    #[test]
    fn mallows_concentration_is_monotone_in_theta(seed in any::<u64>()) {
        let db = mani_rank::datagen::binary_population(20, 0.5, 0.5, seed);
        let modal = ModalRankingBuilder::new(&db).build(&FairnessTarget::low_fair(2));
        let mean_distance = |theta: f64| -> f64 {
            let profile = MallowsModel::new(modal.clone(), theta).sample_profile(30, seed ^ 0x77);
            profile
                .rankings()
                .iter()
                .map(|r| mani_rank::ranking::normalized_kendall_tau(r, &modal).unwrap())
                .sum::<f64>()
                / 30.0
        };
        prop_assert!(mean_distance(0.1) + 1e-9 >= mean_distance(1.5));
    }
}
