//! Cross-crate integration tests: data generation → aggregation → fairness correction →
//! evaluation, exercised through the umbrella crate's public API exactly as a downstream
//! user would.

use mani_rank::prelude::*;

fn committee_workload(
    n: usize,
    m: usize,
    theta: f64,
    seed: u64,
) -> (CandidateDb, GroupIndex, RankingProfile) {
    let db = mani_rank::datagen::binary_population(n, 0.5, 0.5, seed);
    let groups = GroupIndex::new(&db);
    let modal = ModalRankingBuilder::new(&db).build(&FairnessTarget::low_fair(2));
    let profile = MallowsModel::new(modal, theta).sample_profile(m, seed ^ 0xA5A5);
    (db, groups, profile)
}

#[test]
fn every_method_returns_a_complete_evaluated_outcome() {
    let (db, groups, profile) = committee_workload(20, 10, 0.6, 3);
    let ctx = MfcrContext::new(&db, &groups, &profile, FairnessThresholds::uniform(0.2));
    for kind in MethodKind::all() {
        let outcome = kind
            .instantiate_with_nodes(20_000)
            .solve(&ctx)
            .unwrap_or_else(|e| panic!("{} failed: {e}", kind.name()));
        assert_eq!(outcome.ranking.len(), 20);
        outcome.ranking.check_invariants().unwrap();
        assert!((0.0..=1.0).contains(&outcome.pd_loss));
        let audit = outcome.audit(&ctx);
        assert_eq!(audit.attributes.len(), 2);
    }
}

#[test]
fn proposed_methods_satisfy_mani_rank_on_biased_profiles() {
    let (db, groups, profile) = committee_workload(30, 20, 1.0, 11);
    let ctx = MfcrContext::new(&db, &groups, &profile, FairnessThresholds::uniform(0.1));
    for kind in MethodKind::proposed() {
        let outcome = kind.instantiate_with_nodes(20_000).solve(&ctx).unwrap();
        assert!(
            outcome.criteria.is_satisfied(),
            "{} must satisfy MANI-Rank",
            kind.name()
        );
    }
    // The fairness-unaware consensus reproduces the bias on this strongly-agreeing profile.
    let kemeny = MethodKind::Kemeny
        .instantiate_with_nodes(20_000)
        .solve(&ctx)
        .unwrap();
    assert!(!kemeny.criteria.is_satisfied());
}

#[test]
fn price_of_fairness_is_nonnegative_and_decreases_with_delta() {
    let (db, groups, profile) = committee_workload(24, 15, 0.8, 17);
    let unfair_ctx = MfcrContext::new(&db, &groups, &profile, FairnessThresholds::unconstrained());
    let unfair = ExactKemeny::new().solve(&unfair_ctx).unwrap();
    assert!(unfair.optimal, "n = 24 unconstrained Kemeny should close");

    let mut previous_pof = f64::INFINITY;
    for delta in [0.05, 0.2, 0.5] {
        let ctx = MfcrContext::new(&db, &groups, &profile, FairnessThresholds::uniform(delta));
        let fair = FairBorda::new().solve(&ctx).unwrap();
        let pof = price_of_fairness(&profile, &fair.ranking, &unfair.ranking).unwrap();
        assert!(
            pof >= -1e-9,
            "PoF must be non-negative, got {pof} at delta {delta}"
        );
        assert!(
            pof <= previous_pof + 0.05,
            "PoF should broadly decrease as delta loosens"
        );
        previous_pof = pof;
    }
}

#[test]
fn make_mr_fair_corrects_any_consensus_method_output() {
    let (db, groups, profile) = committee_workload(26, 12, 0.9, 23);
    let thresholds = FairnessThresholds::uniform(0.15);
    let candidates = [
        mani_rank::aggregation::BordaAggregator::new().consensus(&profile),
        mani_rank::aggregation::CopelandAggregator::new().consensus(&profile),
        mani_rank::aggregation::SchulzeAggregator::new().consensus(&profile),
    ];
    for consensus in candidates {
        let report = make_mr_fair(&consensus, &groups, &thresholds);
        assert!(report.satisfied);
        let criteria = ManiRankCriteria::evaluate(&report.ranking, &groups, &thresholds);
        assert!(criteria.is_satisfied());
        // Correction must not lose or duplicate candidates.
        report.ranking.check_invariants().unwrap();
        assert_eq!(report.ranking.len(), db.len());
    }
}

#[test]
fn exam_case_study_end_to_end() {
    let dataset = ExamDataset::generate(&Default::default());
    let groups = GroupIndex::new(&dataset.db);
    let ctx = MfcrContext::new(
        &dataset.db,
        &groups,
        &dataset.profile,
        FairnessThresholds::uniform(0.05),
    );
    let outcome = FairBorda::new().solve(&ctx).unwrap();
    assert!(outcome.criteria.is_satisfied());
    let audit = outcome.audit(&ctx);
    // every defined group FPR is close to the parity value 0.5
    for attr in &audit.attributes {
        for group in &attr.groups {
            if let Some(fpr) = group.fpr {
                assert!(
                    (fpr - 0.5).abs() <= 0.06,
                    "{}:{} fpr {fpr}",
                    attr.attribute,
                    group.group
                );
            }
        }
    }
}

#[test]
fn csrankings_case_study_end_to_end() {
    let dataset = CsRankingsDataset::generate(&Default::default());
    let groups = GroupIndex::new(&dataset.db);
    let ctx = MfcrContext::new(
        &dataset.db,
        &groups,
        &dataset.profile,
        FairnessThresholds::uniform(0.05),
    );
    let unfair = mani_rank::aggregation::CopelandAggregator::new().consensus(&dataset.profile);
    let location = dataset.db.schema().attribute_id("Location").unwrap();
    assert!(attribute_rank_parity(&unfair, &groups, location) > 0.05);

    let fair = FairCopeland::new().solve(&ctx).unwrap();
    assert!(fair.criteria.is_satisfied());
    assert!(attribute_rank_parity(&fair.ranking, &groups, location) <= 0.05 + 1e-9);
}

#[test]
fn experiment_harness_smoke_tables_have_expected_shape() {
    use mani_rank::experiments::{datasets, Scale};
    let scale = Scale::smoke();
    let table1 = datasets::table1(&scale);
    assert_eq!(table1.len(), 3);
    assert_eq!(
        table1.headers(),
        &["Dataset", "ARP_Gender", "ARP_Race", "IRP"]
    );
    // Low-Fair row is less fair than High-Fair row on every metric.
    let low_irp: f64 = table1.cell(0, "IRP").unwrap().parse().unwrap();
    let high_irp: f64 = table1.cell(2, "IRP").unwrap().parse().unwrap();
    assert!(low_irp >= high_irp);
}
