//! Kendall tau distance between rankings (Definition 8 in the paper).
//!
//! Two implementations are provided:
//! * [`kendall_tau_naive`] — the O(n²) textbook double loop, used as a reference in tests;
//! * [`kendall_tau`] — an O(n log n) merge-sort inversion count, used everywhere else.

use crate::error::RankingError;
use crate::pairs::total_pairs;
use crate::ranking::Ranking;
use crate::Result;

/// Kendall tau distance: number of candidate pairs ordered differently by the two rankings.
///
/// O(n log n) via inversion counting: relabel candidates by their position in `a`, read them
/// off in the order given by `b`, and count inversions in the resulting sequence.
pub fn kendall_tau(a: &Ranking, b: &Ranking) -> Result<u64> {
    if a.len() != b.len() {
        return Err(RankingError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    // sequence[i] = position in `a` of the candidate at position i of `b`
    let mut sequence: Vec<usize> = Vec::with_capacity(b.len());
    for cand in b.iter() {
        sequence.push(a.position_of(cand));
    }
    let mut buffer = vec![0usize; sequence.len()];
    Ok(count_inversions(&mut sequence, &mut buffer))
}

/// Reference O(n²) Kendall tau distance.
pub fn kendall_tau_naive(a: &Ranking, b: &Ranking) -> Result<u64> {
    if a.len() != b.len() {
        return Err(RankingError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    let n = a.len() as u32;
    let mut count = 0u64;
    for i in 0..n {
        for j in (i + 1)..n {
            let ci = crate::CandidateId(i);
            let cj = crate::CandidateId(j);
            if a.prefers(ci, cj) != b.prefers(ci, cj) {
                count += 1;
            }
        }
    }
    Ok(count)
}

/// Kendall tau distance normalised by the number of pairs, in `[0, 1]`.
pub fn normalized_kendall_tau(a: &Ranking, b: &Ranking) -> Result<f64> {
    let raw = kendall_tau(a, b)?;
    let pairs = total_pairs(a.len());
    if pairs == 0 {
        return Ok(0.0);
    }
    Ok(raw as f64 / pairs as f64)
}

/// Counts inversions in `data` with merge sort; `data` is sorted in place.
fn count_inversions(data: &mut [usize], buffer: &mut [usize]) -> u64 {
    let n = data.len();
    if n <= 1 {
        return 0;
    }
    let mid = n / 2;
    let (left, right) = data.split_at_mut(mid);
    let (buf_left, buf_right) = buffer.split_at_mut(mid);
    let mut inversions = count_inversions(left, buf_left) + count_inversions(right, buf_right);

    // Merge step counting cross inversions.
    let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
    while i < left.len() && j < right.len() {
        if left[i] <= right[j] {
            buffer[k] = left[i];
            i += 1;
        } else {
            buffer[k] = right[j];
            inversions += (left.len() - i) as u64;
            j += 1;
        }
        k += 1;
    }
    while i < left.len() {
        buffer[k] = left[i];
        i += 1;
        k += 1;
    }
    while j < right.len() {
        buffer[k] = right[j];
        j += 1;
        k += 1;
    }
    data.copy_from_slice(&buffer[..n]);
    inversions
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identical_rankings_have_zero_distance() {
        let r = Ranking::identity(10);
        assert_eq!(kendall_tau(&r, &r).unwrap(), 0);
        assert_eq!(normalized_kendall_tau(&r, &r).unwrap(), 0.0);
    }

    #[test]
    fn reversed_ranking_has_maximum_distance() {
        let r = Ranking::identity(8);
        let rev = r.reversed();
        assert_eq!(kendall_tau(&r, &rev).unwrap(), total_pairs(8));
        assert!((normalized_kendall_tau(&r, &rev).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn adjacent_swap_has_distance_one() {
        let a = Ranking::identity(5);
        let mut b = a.clone();
        b.swap_positions(2, 3);
        assert_eq!(kendall_tau(&a, &b).unwrap(), 1);
    }

    #[test]
    fn single_candidate_distance_is_zero() {
        let a = Ranking::identity(1);
        assert_eq!(kendall_tau(&a, &a).unwrap(), 0);
        assert_eq!(normalized_kendall_tau(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn mismatched_lengths_error() {
        let a = Ranking::identity(3);
        let b = Ranking::identity(4);
        assert!(matches!(
            kendall_tau(&a, &b),
            Err(RankingError::LengthMismatch { .. })
        ));
        assert!(matches!(
            kendall_tau_naive(&a, &b),
            Err(RankingError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn fast_matches_naive_on_examples() {
        let a = Ranking::from_ids([0, 3, 1, 4, 2]).unwrap();
        let b = Ranking::from_ids([4, 2, 0, 1, 3]).unwrap();
        assert_eq!(
            kendall_tau(&a, &b).unwrap(),
            kendall_tau_naive(&a, &b).unwrap()
        );
    }

    proptest! {
        #[test]
        fn prop_fast_matches_naive(n in 1usize..60, seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Ranking::random(n, &mut rng);
            let b = Ranking::random(n, &mut rng);
            prop_assert_eq!(kendall_tau(&a, &b).unwrap(), kendall_tau_naive(&a, &b).unwrap());
        }

        #[test]
        fn prop_metric_axioms(n in 2usize..40, seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Ranking::random(n, &mut rng);
            let b = Ranking::random(n, &mut rng);
            let c = Ranking::random(n, &mut rng);
            let dab = kendall_tau(&a, &b).unwrap();
            let dba = kendall_tau(&b, &a).unwrap();
            let dac = kendall_tau(&a, &c).unwrap();
            let dcb = kendall_tau(&c, &b).unwrap();
            // symmetry
            prop_assert_eq!(dab, dba);
            // identity of indiscernibles (one direction)
            prop_assert_eq!(kendall_tau(&a, &a).unwrap(), 0);
            // triangle inequality
            prop_assert!(dab <= dac + dcb);
            // bounded by total pairs
            prop_assert!(dab <= total_pairs(n));
        }

        #[test]
        fn prop_normalized_in_unit_interval(n in 1usize..40, seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Ranking::random(n, &mut rng);
            let b = Ranking::random(n, &mut rng);
            let d = normalized_kendall_tau(&a, &b).unwrap();
            prop_assert!((0.0..=1.0).contains(&d));
        }
    }
}
