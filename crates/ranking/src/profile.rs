//! Ranking profiles: the set `R` of base rankings supplied by the rankers.

use serde::{Deserialize, Serialize};

use crate::candidate::CandidateDb;
use crate::error::RankingError;
use crate::kendall::kendall_tau;
use crate::pairs::total_pairs;
use crate::precedence::PrecedenceMatrix;
use crate::ranking::Ranking;
use crate::Result;

/// A set of base rankings over a shared candidate database.
///
/// The profile owns the rankings and lazily exposes the [`PrecedenceMatrix`]; it is the
/// standard input to every consensus method in the workspace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankingProfile {
    rankings: Vec<Ranking>,
    num_candidates: usize,
}

impl RankingProfile {
    /// Builds a profile from base rankings, validating that they all cover the same
    /// number of candidates and that at least one ranking is present.
    pub fn new(rankings: Vec<Ranking>) -> Result<Self> {
        let Some(first) = rankings.first() else {
            return Err(RankingError::EmptyProfile);
        };
        let n = first.len();
        for r in &rankings {
            if r.len() != n {
                return Err(RankingError::LengthMismatch {
                    left: n,
                    right: r.len(),
                });
            }
        }
        Ok(Self {
            rankings,
            num_candidates: n,
        })
    }

    /// Builds a profile and additionally checks it matches a candidate database's size.
    pub fn for_database(db: &CandidateDb, rankings: Vec<Ranking>) -> Result<Self> {
        let profile = Self::new(rankings)?;
        if profile.num_candidates != db.len() {
            return Err(RankingError::LengthMismatch {
                left: profile.num_candidates,
                right: db.len(),
            });
        }
        Ok(profile)
    }

    /// Number of base rankings `|R|`.
    pub fn len(&self) -> usize {
        self.rankings.len()
    }

    /// True if the profile is empty (never true for a constructed profile).
    pub fn is_empty(&self) -> bool {
        self.rankings.is_empty()
    }

    /// Number of candidates `n`.
    pub fn num_candidates(&self) -> usize {
        self.num_candidates
    }

    /// The base rankings.
    pub fn rankings(&self) -> &[Ranking] {
        &self.rankings
    }

    /// A specific base ranking.
    pub fn ranking(&self, index: usize) -> Option<&Ranking> {
        self.rankings.get(index)
    }

    /// Computes the precedence matrix for this profile.
    pub fn precedence_matrix(&self) -> PrecedenceMatrix {
        PrecedenceMatrix::from_rankings(&self.rankings)
            .expect("profile construction guarantees a valid, non-empty ranking set")
    }

    /// Computes the precedence matrix with sharded parallel construction —
    /// bit-identical to [`RankingProfile::precedence_matrix`] for every
    /// thread and shard count.
    pub fn precedence_matrix_with(
        &self,
        parallelism: &crate::parallel::Parallelism,
    ) -> PrecedenceMatrix {
        PrecedenceMatrix::from_rankings_parallel(&self.rankings, parallelism)
            .expect("profile construction guarantees a valid, non-empty ranking set")
    }

    /// Sum of Kendall tau distances from `consensus` to every base ranking.
    pub fn total_kendall_distance(&self, consensus: &Ranking) -> Result<u64> {
        let mut total = 0u64;
        for r in &self.rankings {
            total += kendall_tau(consensus, r)?;
        }
        Ok(total)
    }

    /// Pairwise disagreement loss (Definition 9): the total Kendall distance normalised by
    /// `ω(X) · |R|`, in `[0, 1]`.
    pub fn pairwise_disagreement_loss(&self, consensus: &Ranking) -> Result<f64> {
        let total = self.total_kendall_distance(consensus)?;
        let denom = total_pairs(self.num_candidates) * self.rankings.len() as u64;
        if denom == 0 {
            return Ok(0.0);
        }
        Ok(total as f64 / denom as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::CandidateDbBuilder;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn profile() -> RankingProfile {
        RankingProfile::new(vec![
            Ranking::from_ids([0, 1, 2, 3]).unwrap(),
            Ranking::from_ids([0, 2, 1, 3]).unwrap(),
            Ranking::from_ids([3, 1, 2, 0]).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn profile_validates_shape() {
        assert!(matches!(
            RankingProfile::new(vec![]),
            Err(RankingError::EmptyProfile)
        ));
        assert!(matches!(
            RankingProfile::new(vec![Ranking::identity(3), Ranking::identity(4)]),
            Err(RankingError::LengthMismatch { .. })
        ));
        let p = profile();
        assert_eq!(p.len(), 3);
        assert_eq!(p.num_candidates(), 4);
        assert!(!p.is_empty());
        assert!(p.ranking(0).is_some());
        assert!(p.ranking(9).is_none());
    }

    #[test]
    fn for_database_checks_candidate_count() {
        let mut b = CandidateDbBuilder::new();
        let g = b.add_attribute("G", ["x", "y"]).unwrap();
        for i in 0..3u32 {
            b.add_candidate(format!("c{i}"), [(g, (i % 2) as usize)])
                .unwrap();
        }
        let db = b.build().unwrap();
        assert!(RankingProfile::for_database(&db, vec![Ranking::identity(3)]).is_ok());
        assert!(matches!(
            RankingProfile::for_database(&db, vec![Ranking::identity(4)]),
            Err(RankingError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn pd_loss_zero_for_unanimous_profile() {
        let p = RankingProfile::new(vec![Ranking::identity(5); 4]).unwrap();
        let loss = p.pairwise_disagreement_loss(&Ranking::identity(5)).unwrap();
        assert_eq!(loss, 0.0);
    }

    #[test]
    fn pd_loss_one_when_consensus_opposes_all() {
        let base = Ranking::identity(6);
        let p = RankingProfile::new(vec![base.clone(); 3]).unwrap();
        let loss = p.pairwise_disagreement_loss(&base.reversed()).unwrap();
        assert!((loss - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pd_loss_matches_manual_computation() {
        let p = profile();
        let consensus = Ranking::from_ids([0, 1, 2, 3]).unwrap();
        let total = p.total_kendall_distance(&consensus).unwrap();
        // distances: 0, 1 (swap 1-2), 5 (positions of 0 and 3 swapped relative plus 1-2 pairs)
        let expected_loss = total as f64 / (6.0 * 3.0);
        assert!((p.pairwise_disagreement_loss(&consensus).unwrap() - expected_loss).abs() < 1e-12);
    }

    #[test]
    fn precedence_matrix_consistent_with_profile() {
        let p = profile();
        let w = p.precedence_matrix();
        assert_eq!(w.num_candidates(), 4);
        assert_eq!(w.num_rankings(), 3);
        let consensus = Ranking::identity(4);
        assert_eq!(
            w.total_disagreements(&consensus).unwrap(),
            p.total_kendall_distance(&consensus).unwrap()
        );
    }

    proptest! {
        #[test]
        fn prop_pd_loss_in_unit_interval(n in 2usize..12, m in 1usize..6, seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let rankings: Vec<Ranking> = (0..m).map(|_| Ranking::random(n, &mut rng)).collect();
            let p = RankingProfile::new(rankings).unwrap();
            let consensus = Ranking::random(n, &mut rng);
            let loss = p.pairwise_disagreement_loss(&consensus).unwrap();
            prop_assert!((0.0..=1.0).contains(&loss));
        }
    }
}
