//! Strict rankings (permutations) over a candidate database.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::candidate::CandidateId;
use crate::error::RankingError;
use crate::Result;

/// A strict total order over `n` candidates.
///
/// The ranking is stored redundantly in two directions so that both "who is at
/// position p?" and "where is candidate c?" are O(1):
///
/// * `order[p]` — candidate at rank position `p` (0 = top / best);
/// * `positions[c]` — rank position of candidate `c`.
///
/// All constructors validate that the order is a permutation of `0..n`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ranking {
    order: Vec<CandidateId>,
    positions: Vec<usize>,
}

impl Ranking {
    /// Builds a ranking from an explicit order (top first).
    pub fn from_order(order: Vec<CandidateId>) -> Result<Self> {
        let n = order.len();
        if n == 0 {
            return Err(RankingError::InvalidPermutation {
                expected: 0,
                detail: "empty ranking".into(),
            });
        }
        let mut positions = vec![usize::MAX; n];
        for (pos, cand) in order.iter().enumerate() {
            let idx = cand.index();
            if idx >= n {
                return Err(RankingError::InvalidPermutation {
                    expected: n,
                    detail: format!("candidate id {} out of range", cand.0),
                });
            }
            if positions[idx] != usize::MAX {
                return Err(RankingError::InvalidPermutation {
                    expected: n,
                    detail: format!("candidate id {} appears twice", cand.0),
                });
            }
            positions[idx] = pos;
        }
        Ok(Self { order, positions })
    }

    /// Builds a ranking from raw `u32` candidate ids (top first).
    pub fn from_ids(ids: impl IntoIterator<Item = u32>) -> Result<Self> {
        Self::from_order(ids.into_iter().map(CandidateId).collect())
    }

    /// The identity ranking `[0, 1, ..., n-1]`.
    pub fn identity(n: usize) -> Self {
        let order: Vec<CandidateId> = (0..n as u32).map(CandidateId).collect();
        let positions: Vec<usize> = (0..n).collect();
        Self { order, positions }
    }

    /// A uniformly random ranking over `n` candidates.
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let mut order: Vec<CandidateId> = (0..n as u32).map(CandidateId).collect();
        order.shuffle(rng);
        Self::from_order(order).expect("shuffled identity is a permutation")
    }

    /// Ranks candidates by *descending* score; ties are broken by candidate id (ascending)
    /// so results are deterministic.
    pub fn from_scores(scores: &[f64]) -> Result<Self> {
        if scores.is_empty() {
            return Err(RankingError::InvalidPermutation {
                expected: 0,
                detail: "empty score vector".into(),
            });
        }
        let mut ids: Vec<u32> = (0..scores.len() as u32).collect();
        ids.sort_by(|&a, &b| {
            scores[b as usize]
                .partial_cmp(&scores[a as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        Self::from_ids(ids)
    }

    /// Number of candidates in the ranking.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if the ranking is empty (never true for a constructed ranking).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Candidate at rank position `position` (0 = best).
    pub fn candidate_at(&self, position: usize) -> CandidateId {
        self.order[position]
    }

    /// Rank position of `candidate` (0 = best).
    pub fn position_of(&self, candidate: CandidateId) -> usize {
        self.positions[candidate.index()]
    }

    /// True if `a` is ranked above (better than) `b`, i.e. `a ≺ b` in the paper's notation.
    pub fn prefers(&self, a: CandidateId, b: CandidateId) -> bool {
        self.positions[a.index()] < self.positions[b.index()]
    }

    /// Candidates in rank order, best first.
    pub fn iter(&self) -> impl Iterator<Item = CandidateId> + '_ {
        self.order.iter().copied()
    }

    /// The underlying order slice, best first.
    pub fn as_slice(&self) -> &[CandidateId] {
        &self.order
    }

    /// Position lookup table indexed by candidate id.
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// Swaps the candidates occupying two rank positions.
    pub fn swap_positions(&mut self, pos_a: usize, pos_b: usize) {
        if pos_a == pos_b {
            return;
        }
        let a = self.order[pos_a];
        let b = self.order[pos_b];
        self.order.swap(pos_a, pos_b);
        self.positions[a.index()] = pos_b;
        self.positions[b.index()] = pos_a;
    }

    /// Swaps two candidates' rank positions.
    pub fn swap_candidates(&mut self, a: CandidateId, b: CandidateId) {
        let pa = self.positions[a.index()];
        let pb = self.positions[b.index()];
        self.swap_positions(pa, pb);
    }

    /// Moves the candidate at `from` to position `to`, shifting everything in between.
    pub fn move_position(&mut self, from: usize, to: usize) {
        if from == to {
            return;
        }
        let cand = self.order.remove(from);
        self.order.insert(to, cand);
        // Recompute affected positions.
        let (lo, hi) = if from < to { (from, to) } else { (to, from) };
        for pos in lo..=hi {
            self.positions[self.order[pos].index()] = pos;
        }
    }

    /// The reverse ranking (worst becomes best).
    pub fn reversed(&self) -> Self {
        let order: Vec<CandidateId> = self.order.iter().rev().copied().collect();
        Self::from_order(order).expect("reverse of a permutation is a permutation")
    }

    /// Validates internal consistency; used by debug assertions and property tests.
    pub fn check_invariants(&self) -> Result<()> {
        let n = self.order.len();
        if self.positions.len() != n {
            return Err(RankingError::LengthMismatch {
                left: self.positions.len(),
                right: n,
            });
        }
        for (pos, cand) in self.order.iter().enumerate() {
            if self.positions[cand.index()] != pos {
                return Err(RankingError::InvalidPermutation {
                    expected: n,
                    detail: format!("position table stale for candidate {}", cand.0),
                });
            }
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Ranking {
    type Item = CandidateId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, CandidateId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.order.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_positions_match_ids() {
        let r = Ranking::identity(5);
        for i in 0..5 {
            assert_eq!(r.candidate_at(i).index(), i);
            assert_eq!(r.position_of(CandidateId(i as u32)), i);
        }
        r.check_invariants().unwrap();
    }

    #[test]
    fn from_order_rejects_duplicates_and_out_of_range() {
        let err = Ranking::from_ids([0, 0, 1]).unwrap_err();
        assert!(matches!(err, RankingError::InvalidPermutation { .. }));
        let err = Ranking::from_ids([0, 5]).unwrap_err();
        assert!(matches!(err, RankingError::InvalidPermutation { .. }));
        let err = Ranking::from_ids(std::iter::empty::<u32>()).unwrap_err();
        assert!(matches!(err, RankingError::InvalidPermutation { .. }));
    }

    #[test]
    fn prefers_reflects_positions() {
        let r = Ranking::from_ids([2, 0, 1]).unwrap();
        assert!(r.prefers(CandidateId(2), CandidateId(0)));
        assert!(r.prefers(CandidateId(0), CandidateId(1)));
        assert!(!r.prefers(CandidateId(1), CandidateId(2)));
    }

    #[test]
    fn from_scores_descending_with_id_tiebreak() {
        let r = Ranking::from_scores(&[1.0, 3.0, 3.0, 0.5]).unwrap();
        let order: Vec<u32> = r.iter().map(|c| c.0).collect();
        assert_eq!(order, vec![1, 2, 0, 3]);
    }

    #[test]
    fn swap_candidates_updates_both_tables() {
        let mut r = Ranking::identity(4);
        r.swap_candidates(CandidateId(0), CandidateId(3));
        assert_eq!(r.position_of(CandidateId(0)), 3);
        assert_eq!(r.position_of(CandidateId(3)), 0);
        r.check_invariants().unwrap();
    }

    #[test]
    fn swap_same_position_is_noop() {
        let mut r = Ranking::identity(4);
        r.swap_positions(2, 2);
        assert_eq!(r, Ranking::identity(4));
    }

    #[test]
    fn move_position_shifts_intermediate() {
        let mut r = Ranking::identity(5);
        r.move_position(4, 0);
        let order: Vec<u32> = r.iter().map(|c| c.0).collect();
        assert_eq!(order, vec![4, 0, 1, 2, 3]);
        r.check_invariants().unwrap();

        r.move_position(0, 4);
        let order: Vec<u32> = r.iter().map(|c| c.0).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        r.check_invariants().unwrap();
    }

    #[test]
    fn reversed_flips_positions() {
        let r = Ranking::from_ids([3, 1, 0, 2]).unwrap();
        let rev = r.reversed();
        for c in r.iter() {
            assert_eq!(rev.position_of(c), r.len() - 1 - r.position_of(c));
        }
    }

    #[test]
    fn random_is_valid_permutation() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 2, 10, 50] {
            let r = Ranking::random(n, &mut rng);
            assert_eq!(r.len(), n);
            r.check_invariants().unwrap();
        }
    }

    proptest! {
        #[test]
        fn prop_from_order_roundtrip(perm in proptest::sample::subsequence((0u32..20).collect::<Vec<_>>(), 1..20)) {
            // Build a permutation from a subsequence by re-indexing to 0..len.
            let mut ids: Vec<u32> = (0..perm.len() as u32).collect();
            // deterministic shuffle keyed by the subsequence values
            ids.sort_by_key(|&i| perm[i as usize]);
            let r = Ranking::from_ids(ids.clone()).unwrap();
            prop_assert!(r.check_invariants().is_ok());
            for (pos, id) in ids.iter().enumerate() {
                prop_assert_eq!(r.position_of(CandidateId(*id)), pos);
            }
        }

        #[test]
        fn prop_swap_preserves_permutation(n in 2usize..30, a in 0usize..30, b in 0usize..30, seed in any::<u64>()) {
            let a = a % n;
            let b = b % n;
            let mut rng = StdRng::seed_from_u64(seed);
            let mut r = Ranking::random(n, &mut rng);
            r.swap_positions(a, b);
            prop_assert!(r.check_invariants().is_ok());
        }

        #[test]
        fn prop_double_reverse_is_identity(n in 1usize..40, seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let r = Ranking::random(n, &mut rng);
            prop_assert_eq!(r.reversed().reversed(), r);
        }
    }
}
