//! Error types for the ranking data model.

use std::fmt;

/// Errors raised while building candidate databases or manipulating rankings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankingError {
    /// An attribute with the same name was registered twice.
    DuplicateAttribute(String),
    /// An attribute was declared with fewer than two values.
    DegenerateAttribute(String),
    /// Two values of the same attribute share a name.
    DuplicateValue {
        /// Attribute whose domain contains the duplicate.
        attribute: String,
        /// The duplicated value name.
        value: String,
    },
    /// A candidate referenced an attribute id that does not exist in the schema.
    UnknownAttribute(usize),
    /// A candidate referenced a value index outside the attribute's domain.
    UnknownValue {
        /// Attribute whose domain was indexed out of bounds.
        attribute: String,
        /// The offending value index.
        value_index: usize,
    },
    /// A candidate did not supply a value for every protected attribute.
    MissingAttributeValue {
        /// Candidate name as supplied to the builder.
        candidate: String,
        /// Attribute that was left unassigned.
        attribute: String,
    },
    /// Two candidates share the same name.
    DuplicateCandidate(String),
    /// The database was built with no candidates.
    EmptyDatabase,
    /// The database was built with no protected attributes.
    EmptySchema,
    /// A ranking was constructed that is not a permutation of `0..n`.
    InvalidPermutation {
        /// Expected number of candidates.
        expected: usize,
        /// Description of the violation.
        detail: String,
    },
    /// Two rankings (or a ranking and a database) disagree on the number of candidates.
    LengthMismatch {
        /// Length of the left-hand operand.
        left: usize,
        /// Length of the right-hand operand.
        right: usize,
    },
    /// A ranking profile was constructed with no base rankings.
    EmptyProfile,
    /// A candidate id was out of range for the database or ranking.
    CandidateOutOfRange {
        /// The offending candidate id.
        id: u32,
        /// Number of candidates in the container.
        len: usize,
    },
    /// The total ranking weight of a profile would overflow the `u32` support
    /// cells of the precedence matrix.
    SupportOverflow {
        /// Total weight (sum of ranking weights, or the ranking count for
        /// unweighted profiles) that exceeded the cell capacity.
        total_weight: u64,
    },
    /// A ranking was retracted from a precedence matrix that does not contain
    /// it with at least the requested weight (a support cell or the total
    /// ranking count would underflow).
    RetractUnderflow {
        /// Weight that was being retracted.
        weight: u32,
    },
}

impl fmt::Display for RankingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RankingError::DuplicateAttribute(name) => {
                write!(f, "protected attribute `{name}` registered twice")
            }
            RankingError::DegenerateAttribute(name) => write!(
                f,
                "protected attribute `{name}` must have at least two values"
            ),
            RankingError::DuplicateValue { attribute, value } => write!(
                f,
                "attribute `{attribute}` declares value `{value}` more than once"
            ),
            RankingError::UnknownAttribute(id) => {
                write!(f, "attribute id {id} does not exist in the schema")
            }
            RankingError::UnknownValue {
                attribute,
                value_index,
            } => write!(
                f,
                "value index {value_index} is outside the domain of attribute `{attribute}`"
            ),
            RankingError::MissingAttributeValue {
                candidate,
                attribute,
            } => write!(
                f,
                "candidate `{candidate}` has no value for protected attribute `{attribute}`"
            ),
            RankingError::DuplicateCandidate(name) => {
                write!(f, "candidate `{name}` registered twice")
            }
            RankingError::EmptyDatabase => write!(f, "candidate database contains no candidates"),
            RankingError::EmptySchema => {
                write!(f, "candidate database declares no protected attributes")
            }
            RankingError::InvalidPermutation { expected, detail } => write!(
                f,
                "ranking is not a permutation of {expected} candidates: {detail}"
            ),
            RankingError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            RankingError::EmptyProfile => write!(f, "ranking profile contains no base rankings"),
            RankingError::CandidateOutOfRange { id, len } => {
                write!(f, "candidate id {id} out of range for {len} candidates")
            }
            RankingError::SupportOverflow { total_weight } => write!(
                f,
                "total ranking weight {total_weight} exceeds the u32 support-cell capacity \
                 ({}) of the precedence matrix",
                u32::MAX
            ),
            RankingError::RetractUnderflow { weight } => write!(
                f,
                "cannot retract a ranking with weight {weight}: the precedence matrix does \
                 not contain it with that weight"
            ),
        }
    }
}

impl std::error::Error for RankingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = RankingError::DuplicateAttribute("Gender".into());
        assert!(err.to_string().contains("Gender"));

        let err = RankingError::UnknownValue {
            attribute: "Race".into(),
            value_index: 9,
        };
        assert!(err.to_string().contains("Race"));
        assert!(err.to_string().contains('9'));

        let err = RankingError::LengthMismatch { left: 3, right: 5 };
        assert!(err.to_string().contains("3 vs 5"));

        let err = RankingError::SupportOverflow {
            total_weight: 5_000_000_000,
        };
        assert!(err.to_string().contains("5000000000"));
        assert!(err.to_string().contains("u32"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RankingError>();
    }
}
