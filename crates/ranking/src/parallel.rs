//! Kernel-level parallelism primitives shared by every compute kernel in the
//! workspace.
//!
//! Request-level parallelism (many jobs across a worker pool) lives in
//! `mani-engine`; this module provides the complementary *intra-kernel* layer:
//! splitting one large computation — a precedence-matrix build, a Schulze
//! Floyd–Warshall sweep, a branch-and-bound search — across short-lived scoped
//! threads that may borrow the caller's data. Scoped threads are used instead
//! of a long-lived pool because kernels operate on borrowed, request-local
//! buffers that cannot be sent to `'static` pool jobs without copying.
//!
//! The [`Parallelism`] config carries two decisions every kernel needs:
//! how many threads it may use, and the problem-size threshold below which
//! threading overhead outweighs the win (small inputs stay serial).
//!
//! Every kernel built on these primitives is **bit-identical** to its serial
//! counterpart: work is split so that either the per-shard results are summed
//! with integer arithmetic (order-insensitive) or the partition itself does not
//! change the arithmetic (row-block Floyd–Warshall, index-ordered subtree
//! merges).

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Default candidate-count threshold below which kernels stay serial.
///
/// Thread spawn plus join costs a few tens of microseconds; kernels at
/// `n < 48` finish in comparable time, so threading them is pure overhead.
pub const DEFAULT_MIN_CANDIDATES: usize = 48;

/// Default Floyd–Warshall tile edge when [`Parallelism::tile_size`] is auto.
///
/// A 64×64 tile of `u32` cells is 16 KiB; the three tiles a blocked-FW phase
/// touches (C, the A column panel, and the B row panel) fit comfortably in a
/// 64 KiB L1 with room for the pivot-row scratch, and a whole tile-row panel
/// at CSRankings scale (64 × 5000 × 4 B ≈ 1.2 MiB) still fits mid-size L2.
pub const DEFAULT_FW_TILE: usize = 64;

/// Candidate count below which the auto tile policy keeps Floyd–Warshall
/// untiled: under this size the whole strength matrix (≤ 512² × 4 B = 1 MiB)
/// sits in L2 anyway and the blocked schedule's phase overhead is pure loss —
/// measured on the dev host the tiled kernel only pulls ahead of the flat one
/// between n = 384 (0.9×) and n = 1000 (1.5×).
pub const FW_TILE_MIN_N: usize = 512;

/// Kernel parallelism budget: how many threads one solve may use, the
/// problem-size gate that keeps small solves serial, and the cache-tile edge
/// used by blocked kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Parallelism {
    /// Maximum worker threads a single kernel may occupy (minimum one).
    threads: usize,
    /// Candidate count below which kernels run serially regardless of
    /// `threads`.
    min_candidates: usize,
    /// Floyd–Warshall tile edge; `0` selects the auto policy
    /// (see [`Parallelism::fw_tile_size`]).
    tile_size: usize,
}

// Manual impl rather than derive: wire payloads must not be able to bypass
// the `threads >= 1` invariant every constructor enforces, so the field is
// clamped on the way in exactly like `Parallelism::new` does. `tile_size` is
// optional so payloads serialized before the field existed keep
// deserializing (absent means auto).
impl Deserialize for Parallelism {
    fn deserialize_value(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| serde::Error::new(format!("Parallelism: missing field `{name}`")))
                .and_then(usize::deserialize_value)
        };
        Ok(Self {
            threads: field("threads")?.max(1),
            min_candidates: field("min_candidates")?,
            tile_size: match value.get("tile_size") {
                Some(raw) => usize::deserialize_value(raw)?,
                None => 0,
            },
        })
    }
}

impl Default for Parallelism {
    /// The default is **serial**: library callers opt in explicitly, and the
    /// engine layer decides how per-request threads compose with its batch
    /// pool.
    fn default() -> Self {
        Self::serial()
    }
}

impl Parallelism {
    /// Strictly serial execution (the default).
    pub fn serial() -> Self {
        Self {
            threads: 1,
            min_candidates: DEFAULT_MIN_CANDIDATES,
            tile_size: 0,
        }
    }

    /// Up to `threads` threads per kernel (clamped to at least one), with the
    /// default size threshold.
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            min_candidates: DEFAULT_MIN_CANDIDATES,
            tile_size: 0,
        }
    }

    /// One thread per available core, with the default size threshold.
    pub fn auto() -> Self {
        Self::new(available_threads())
    }

    /// Overrides the candidate-count threshold (`0` forces parallelism for
    /// every input size — useful in tests).
    pub fn with_min_candidates(mut self, min_candidates: usize) -> Self {
        self.min_candidates = min_candidates;
        self
    }

    /// Overrides the Floyd–Warshall tile edge (`0` restores the auto policy).
    /// Blocked kernels are bit-identical for every tile size, so this is a
    /// pure tuning knob.
    pub fn with_tile_size(mut self, tile_size: usize) -> Self {
        self.tile_size = tile_size;
        self
    }

    /// The configured maximum thread count.
    pub fn max_threads(&self) -> usize {
        self.threads
    }

    /// The candidate-count threshold below which kernels stay serial.
    pub fn min_candidates(&self) -> usize {
        self.min_candidates
    }

    /// The configured tile edge (`0` means auto).
    pub fn tile_size(&self) -> usize {
        self.tile_size
    }

    /// Resolves the Floyd–Warshall tile edge for a problem of `n` candidates:
    /// the explicit [`Parallelism::with_tile_size`] override when set, else
    /// [`DEFAULT_FW_TILE`] once `n` reaches [`FW_TILE_MIN_N`]. A result `>= n`
    /// means "run untiled". Never returns zero for `n > 0`.
    pub fn fw_tile_size(&self, n: usize) -> usize {
        let tile = match self.tile_size {
            0 if n < FW_TILE_MIN_N => n,
            0 => DEFAULT_FW_TILE,
            explicit => explicit,
        };
        tile.clamp(1, n.max(1))
    }

    /// True when this config never fans out.
    pub fn is_serial(&self) -> bool {
        self.threads <= 1
    }

    /// Number of threads a kernel over `n` candidates should use: `1` when the
    /// input is below the threshold, the configured budget otherwise.
    pub fn kernel_threads(&self, n: usize) -> usize {
        if self.threads <= 1 || n < self.min_candidates {
            1
        } else {
            self.threads
        }
    }
}

/// Process-wide kernel activity counters (monotone, relaxed atomics).
///
/// Kernels record how work was partitioned — blocked Floyd–Warshall solves
/// and the tiles they relaxed, candidate-pair (row-range) shard tasks, and
/// ranking shard tasks — so operators can see *which* sharding axis and
/// kernel shape production traffic actually exercises. The counters are
/// process-global (kernels run on borrowed request-local buffers and carry no
/// per-engine handle); `mani-engine` snapshots them into `EngineStats` and
/// `mani-serve` exports them on `/metrics`.
static FW_BLOCKED_SOLVES: AtomicU64 = AtomicU64::new(0);
static FW_TILES_RELAXED: AtomicU64 = AtomicU64::new(0);
static PAIR_SHARD_TASKS: AtomicU64 = AtomicU64::new(0);
static RANKING_SHARD_TASKS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide kernel partitioning counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelCounterSnapshot {
    /// Cache-blocked Floyd–Warshall solves completed.
    pub fw_blocked_solves: u64,
    /// Tiles relaxed across all blocked Floyd–Warshall solves.
    pub fw_tiles_relaxed: u64,
    /// Candidate-pair (row-range) shard tasks executed by matrix builds and
    /// O(n²) scoring kernels.
    pub pair_shard_tasks: u64,
    /// Ranking shard tasks executed by matrix builds.
    pub ranking_shard_tasks: u64,
}

/// Reads the process-wide kernel counters.
pub fn kernel_counter_snapshot() -> KernelCounterSnapshot {
    KernelCounterSnapshot {
        fw_blocked_solves: FW_BLOCKED_SOLVES.load(Ordering::Relaxed),
        fw_tiles_relaxed: FW_TILES_RELAXED.load(Ordering::Relaxed),
        pair_shard_tasks: PAIR_SHARD_TASKS.load(Ordering::Relaxed),
        ranking_shard_tasks: RANKING_SHARD_TASKS.load(Ordering::Relaxed),
    }
}

/// Records one blocked Floyd–Warshall solve that relaxed `tiles` tiles
/// (observability hook for kernel implementations).
pub fn record_fw_blocked_solve(tiles: u64) {
    FW_BLOCKED_SOLVES.fetch_add(1, Ordering::Relaxed);
    FW_TILES_RELAXED.fetch_add(tiles, Ordering::Relaxed);
}

/// Records `tasks` candidate-pair (row-range) shard tasks (observability hook
/// for kernel implementations).
pub fn record_pair_shard_tasks(tasks: u64) {
    PAIR_SHARD_TASKS.fetch_add(tasks, Ordering::Relaxed);
}

/// Records `tasks` ranking shard tasks (observability hook for kernel
/// implementations).
pub fn record_ranking_shard_tasks(tasks: u64) {
    RANKING_SHARD_TASKS.fetch_add(tasks, Ordering::Relaxed);
}

/// One worker per available core (minimum one).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Splits `0..len` into at most `parts` contiguous, near-equal, non-empty
/// ranges (fewer when `len < parts`). The generic shard step of every
/// shard/merge kernel: shard boundaries never change results because merges
/// are order-insensitive integer sums.
pub fn shard_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1).min(len);
    if parts == 0 {
        return Vec::new();
    }
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for index in 0..parts {
        let size = base + usize::from(index < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Runs every part and returns the outputs **in part order**, fanning the
/// parts out across up to `threads` scoped threads.
///
/// Unlike a pool, parts may borrow from the caller's stack — this is the
/// primitive kernels use to process shards of borrowed matrices and profiles.
/// With `threads <= 1` (or a single part) everything runs inline on the
/// calling thread, in order, with zero threading overhead.
///
/// # Panics
/// Propagates the first panic of any part after all threads have joined.
pub fn run_parts<T, F>(threads: usize, parts: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let threads = threads.max(1).min(parts.len());
    if threads <= 1 {
        return parts.into_iter().map(|part| part()).collect();
    }
    // Contiguous grouping keeps outputs trivially reorderable: group `g`
    // produces the results for its own slice of part indices.
    let ranges = shard_ranges(parts.len(), threads);
    let mut parts = parts.into_iter();
    let groups: Vec<Vec<F>> = ranges
        .iter()
        .map(|range| parts.by_ref().take(range.len()).collect())
        .collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .into_iter()
            .map(|group| {
                scope.spawn(move || group.into_iter().map(|part| part()).collect::<Vec<T>>())
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("run_parts worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_config_is_default_and_stays_serial() {
        let par = Parallelism::default();
        assert!(par.is_serial());
        assert_eq!(par.kernel_threads(10_000), 1);
        assert_eq!(par.min_candidates(), DEFAULT_MIN_CANDIDATES);
    }

    #[test]
    fn threshold_gates_threading() {
        let par = Parallelism::new(8);
        assert_eq!(par.max_threads(), 8);
        assert_eq!(par.kernel_threads(DEFAULT_MIN_CANDIDATES - 1), 1);
        assert_eq!(par.kernel_threads(DEFAULT_MIN_CANDIDATES), 8);
        let eager = Parallelism::new(4).with_min_candidates(0);
        assert_eq!(eager.kernel_threads(1), 4);
        assert!(!eager.is_serial());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Parallelism::new(0).max_threads(), 1);
        assert!(available_threads() >= 1);
        assert!(Parallelism::auto().max_threads() >= 1);
    }

    #[test]
    fn auto_tile_policy_keeps_small_problems_untiled() {
        let auto = Parallelism::serial();
        assert_eq!(auto.tile_size(), 0);
        // Below the tiling threshold the resolved tile covers the whole
        // matrix (untiled); at and above it the default tile engages.
        assert_eq!(auto.fw_tile_size(FW_TILE_MIN_N - 1), FW_TILE_MIN_N - 1);
        assert_eq!(auto.fw_tile_size(FW_TILE_MIN_N), DEFAULT_FW_TILE);
        assert_eq!(auto.fw_tile_size(5000), DEFAULT_FW_TILE);
        // Degenerate sizes stay sane.
        assert_eq!(auto.fw_tile_size(0), 1);
        assert_eq!(auto.fw_tile_size(1), 1);
    }

    #[test]
    fn explicit_tile_size_wins_and_is_clamped() {
        let par = Parallelism::new(4).with_tile_size(32);
        assert_eq!(par.tile_size(), 32);
        assert_eq!(par.fw_tile_size(5000), 32);
        // An explicit tile forces tiling even below the auto threshold, but
        // never exceeds the matrix itself.
        assert_eq!(par.fw_tile_size(100), 32);
        assert_eq!(par.fw_tile_size(10), 10);
        assert_eq!(
            Parallelism::serial().with_tile_size(0).fw_tile_size(5000),
            DEFAULT_FW_TILE
        );
    }

    #[test]
    fn kernel_counters_are_monotone() {
        let before = kernel_counter_snapshot();
        record_fw_blocked_solve(27);
        record_pair_shard_tasks(4);
        record_ranking_shard_tasks(2);
        let after = kernel_counter_snapshot();
        assert!(after.fw_blocked_solves > before.fw_blocked_solves);
        assert!(after.fw_tiles_relaxed >= before.fw_tiles_relaxed + 27);
        assert!(after.pair_shard_tasks >= before.pair_shard_tasks + 4);
        assert!(after.ranking_shard_tasks >= before.ranking_shard_tasks + 2);
    }

    #[test]
    fn shard_ranges_cover_exactly_without_empties() {
        for len in 0..40usize {
            for parts in 1..10usize {
                let ranges = shard_ranges(len, parts);
                assert!(ranges.len() <= parts);
                let mut expected_start = 0;
                for range in &ranges {
                    assert_eq!(range.start, expected_start);
                    assert!(!range.is_empty(), "len={len} parts={parts}");
                    expected_start = range.end;
                }
                assert_eq!(expected_start, len);
                // Near-equal: sizes differ by at most one.
                if let (Some(first), Some(last)) = (ranges.first(), ranges.last()) {
                    assert!(first.len() - last.len() <= 1);
                }
            }
        }
    }

    #[test]
    fn run_parts_preserves_order_across_thread_counts() {
        for threads in [1usize, 2, 3, 8] {
            let parts: Vec<_> = (0..17usize).map(|i| move || i * 3).collect();
            let results = run_parts(threads, parts);
            assert_eq!(results, (0..17).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_parts_may_borrow_caller_data() {
        let data: Vec<u64> = (0..100).collect();
        let slices: Vec<&[u64]> = data.chunks(30).collect();
        let parts: Vec<_> = slices
            .iter()
            .map(|chunk| move || chunk.iter().sum::<u64>())
            .collect();
        let sums = run_parts(4, parts);
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn run_parts_handles_empty_input() {
        let parts: Vec<fn() -> u32> = Vec::new();
        assert!(run_parts(4, parts).is_empty());
    }
}
