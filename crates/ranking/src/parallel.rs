//! Kernel-level parallelism primitives shared by every compute kernel in the
//! workspace.
//!
//! Request-level parallelism (many jobs across a worker pool) lives in
//! `mani-engine`; this module provides the complementary *intra-kernel* layer:
//! splitting one large computation — a precedence-matrix build, a Schulze
//! Floyd–Warshall sweep, a branch-and-bound search — across short-lived scoped
//! threads that may borrow the caller's data. Scoped threads are used instead
//! of a long-lived pool because kernels operate on borrowed, request-local
//! buffers that cannot be sent to `'static` pool jobs without copying.
//!
//! The [`Parallelism`] config carries two decisions every kernel needs:
//! how many threads it may use, and the problem-size threshold below which
//! threading overhead outweighs the win (small inputs stay serial).
//!
//! Every kernel built on these primitives is **bit-identical** to its serial
//! counterpart: work is split so that either the per-shard results are summed
//! with integer arithmetic (order-insensitive) or the partition itself does not
//! change the arithmetic (row-block Floyd–Warshall, index-ordered subtree
//! merges).

use std::ops::Range;

use serde::{Deserialize, Serialize};

/// Default candidate-count threshold below which kernels stay serial.
///
/// Thread spawn plus join costs a few tens of microseconds; kernels at
/// `n < 48` finish in comparable time, so threading them is pure overhead.
pub const DEFAULT_MIN_CANDIDATES: usize = 48;

/// Kernel parallelism budget: how many threads one solve may use, and the
/// problem-size gate that keeps small solves serial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Parallelism {
    /// Maximum worker threads a single kernel may occupy (minimum one).
    threads: usize,
    /// Candidate count below which kernels run serially regardless of
    /// `threads`.
    min_candidates: usize,
}

// Manual impl rather than derive: wire payloads must not be able to bypass
// the `threads >= 1` invariant every constructor enforces, so the field is
// clamped on the way in exactly like `Parallelism::new` does.
impl Deserialize for Parallelism {
    fn deserialize_value(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| serde::Error::new(format!("Parallelism: missing field `{name}`")))
                .and_then(usize::deserialize_value)
        };
        Ok(Self {
            threads: field("threads")?.max(1),
            min_candidates: field("min_candidates")?,
        })
    }
}

impl Default for Parallelism {
    /// The default is **serial**: library callers opt in explicitly, and the
    /// engine layer decides how per-request threads compose with its batch
    /// pool.
    fn default() -> Self {
        Self::serial()
    }
}

impl Parallelism {
    /// Strictly serial execution (the default).
    pub fn serial() -> Self {
        Self {
            threads: 1,
            min_candidates: DEFAULT_MIN_CANDIDATES,
        }
    }

    /// Up to `threads` threads per kernel (clamped to at least one), with the
    /// default size threshold.
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            min_candidates: DEFAULT_MIN_CANDIDATES,
        }
    }

    /// One thread per available core, with the default size threshold.
    pub fn auto() -> Self {
        Self::new(available_threads())
    }

    /// Overrides the candidate-count threshold (`0` forces parallelism for
    /// every input size — useful in tests).
    pub fn with_min_candidates(mut self, min_candidates: usize) -> Self {
        self.min_candidates = min_candidates;
        self
    }

    /// The configured maximum thread count.
    pub fn max_threads(&self) -> usize {
        self.threads
    }

    /// The candidate-count threshold below which kernels stay serial.
    pub fn min_candidates(&self) -> usize {
        self.min_candidates
    }

    /// True when this config never fans out.
    pub fn is_serial(&self) -> bool {
        self.threads <= 1
    }

    /// Number of threads a kernel over `n` candidates should use: `1` when the
    /// input is below the threshold, the configured budget otherwise.
    pub fn kernel_threads(&self, n: usize) -> usize {
        if self.threads <= 1 || n < self.min_candidates {
            1
        } else {
            self.threads
        }
    }
}

/// One worker per available core (minimum one).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Splits `0..len` into at most `parts` contiguous, near-equal, non-empty
/// ranges (fewer when `len < parts`). The generic shard step of every
/// shard/merge kernel: shard boundaries never change results because merges
/// are order-insensitive integer sums.
pub fn shard_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1).min(len);
    if parts == 0 {
        return Vec::new();
    }
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for index in 0..parts {
        let size = base + usize::from(index < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Runs every part and returns the outputs **in part order**, fanning the
/// parts out across up to `threads` scoped threads.
///
/// Unlike a pool, parts may borrow from the caller's stack — this is the
/// primitive kernels use to process shards of borrowed matrices and profiles.
/// With `threads <= 1` (or a single part) everything runs inline on the
/// calling thread, in order, with zero threading overhead.
///
/// # Panics
/// Propagates the first panic of any part after all threads have joined.
pub fn run_parts<T, F>(threads: usize, parts: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let threads = threads.max(1).min(parts.len());
    if threads <= 1 {
        return parts.into_iter().map(|part| part()).collect();
    }
    // Contiguous grouping keeps outputs trivially reorderable: group `g`
    // produces the results for its own slice of part indices.
    let ranges = shard_ranges(parts.len(), threads);
    let mut parts = parts.into_iter();
    let groups: Vec<Vec<F>> = ranges
        .iter()
        .map(|range| parts.by_ref().take(range.len()).collect())
        .collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .into_iter()
            .map(|group| {
                scope.spawn(move || group.into_iter().map(|part| part()).collect::<Vec<T>>())
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("run_parts worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_config_is_default_and_stays_serial() {
        let par = Parallelism::default();
        assert!(par.is_serial());
        assert_eq!(par.kernel_threads(10_000), 1);
        assert_eq!(par.min_candidates(), DEFAULT_MIN_CANDIDATES);
    }

    #[test]
    fn threshold_gates_threading() {
        let par = Parallelism::new(8);
        assert_eq!(par.max_threads(), 8);
        assert_eq!(par.kernel_threads(DEFAULT_MIN_CANDIDATES - 1), 1);
        assert_eq!(par.kernel_threads(DEFAULT_MIN_CANDIDATES), 8);
        let eager = Parallelism::new(4).with_min_candidates(0);
        assert_eq!(eager.kernel_threads(1), 4);
        assert!(!eager.is_serial());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Parallelism::new(0).max_threads(), 1);
        assert!(available_threads() >= 1);
        assert!(Parallelism::auto().max_threads() >= 1);
    }

    #[test]
    fn shard_ranges_cover_exactly_without_empties() {
        for len in 0..40usize {
            for parts in 1..10usize {
                let ranges = shard_ranges(len, parts);
                assert!(ranges.len() <= parts);
                let mut expected_start = 0;
                for range in &ranges {
                    assert_eq!(range.start, expected_start);
                    assert!(!range.is_empty(), "len={len} parts={parts}");
                    expected_start = range.end;
                }
                assert_eq!(expected_start, len);
                // Near-equal: sizes differ by at most one.
                if let (Some(first), Some(last)) = (ranges.first(), ranges.last()) {
                    assert!(first.len() - last.len() <= 1);
                }
            }
        }
    }

    #[test]
    fn run_parts_preserves_order_across_thread_counts() {
        for threads in [1usize, 2, 3, 8] {
            let parts: Vec<_> = (0..17usize).map(|i| move || i * 3).collect();
            let results = run_parts(threads, parts);
            assert_eq!(results, (0..17).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_parts_may_borrow_caller_data() {
        let data: Vec<u64> = (0..100).collect();
        let slices: Vec<&[u64]> = data.chunks(30).collect();
        let parts: Vec<_> = slices
            .iter()
            .map(|chunk| move || chunk.iter().sum::<u64>())
            .collect();
        let sums = run_parts(4, parts);
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn run_parts_handles_empty_input() {
        let parts: Vec<fn() -> u32> = Vec::new();
        assert!(run_parts(4, parts).is_empty());
    }
}
