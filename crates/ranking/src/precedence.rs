//! Precedence matrix `W` over a set of base rankings (Definition 11 in the paper).
//!
//! `W[a][b]` counts how many base rankings place candidate `b` *above* candidate `a`
//! (i.e. `b ≺ a` in the paper's notation: entries represent pairwise disagreements with
//! the order `a ≺ b`). Every pairwise consensus method in the workspace (Kemeny,
//! Copeland, Schulze and their fair variants) operates on this matrix, so it is computed
//! once per profile and shared.

use serde::{Deserialize, Serialize};

use crate::candidate::CandidateId;
use crate::error::RankingError;
use crate::ranking::Ranking;
use crate::Result;

/// Dense `n × n` precedence matrix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrecedenceMatrix {
    n: usize,
    num_rankings: usize,
    /// Row-major storage; entry `(a, b)` at `a * n + b`.
    counts: Vec<u32>,
}

impl PrecedenceMatrix {
    /// Builds the precedence matrix from a set of base rankings.
    ///
    /// All rankings must cover the same `n` candidates. Cost is `O(|R| · n²)`.
    pub fn from_rankings(rankings: &[Ranking]) -> Result<Self> {
        let Some(first) = rankings.first() else {
            return Err(RankingError::EmptyProfile);
        };
        let n = first.len();
        for r in rankings {
            if r.len() != n {
                return Err(RankingError::LengthMismatch {
                    left: n,
                    right: r.len(),
                });
            }
        }
        let mut counts = vec![0u32; n * n];
        for ranking in rankings {
            let order = ranking.as_slice();
            // For every pair (above, below) in this ranking, candidate `above` precedes
            // `below`, which is a disagreement against any consensus placing below ≺ above:
            // increment W[below][above].
            for (i, &above) in order.iter().enumerate() {
                for &below in &order[i + 1..] {
                    counts[below.index() * n + above.index()] += 1;
                }
            }
        }
        Ok(Self {
            n,
            num_rankings: rankings.len(),
            counts,
        })
    }

    /// Builds a matrix with weighted rankings: ranking `i` contributes `weights[i]` votes.
    pub fn from_weighted_rankings(rankings: &[Ranking], weights: &[u32]) -> Result<Self> {
        if rankings.len() != weights.len() {
            return Err(RankingError::LengthMismatch {
                left: rankings.len(),
                right: weights.len(),
            });
        }
        let Some(first) = rankings.first() else {
            return Err(RankingError::EmptyProfile);
        };
        let n = first.len();
        for r in rankings {
            if r.len() != n {
                return Err(RankingError::LengthMismatch {
                    left: n,
                    right: r.len(),
                });
            }
        }
        let mut counts = vec![0u32; n * n];
        let mut total_weight = 0usize;
        for (ranking, &w) in rankings.iter().zip(weights) {
            total_weight += w as usize;
            let order = ranking.as_slice();
            for (i, &above) in order.iter().enumerate() {
                for &below in &order[i + 1..] {
                    counts[below.index() * n + above.index()] += w;
                }
            }
        }
        Ok(Self {
            n,
            num_rankings: total_weight,
            counts,
        })
    }

    /// Number of candidates.
    pub fn num_candidates(&self) -> usize {
        self.n
    }

    /// Number of base rankings (or total weight for weighted construction).
    pub fn num_rankings(&self) -> usize {
        self.num_rankings
    }

    /// `W[a][b]`: number of base rankings ranking `b` above `a` — the disagreement cost of
    /// placing `a` above `b` in the consensus.
    pub fn disagreements_if_above(&self, a: CandidateId, b: CandidateId) -> u32 {
        self.counts[a.index() * self.n + b.index()]
    }

    /// Number of base rankings preferring `a` over `b` (support for `a ≺ b`).
    pub fn support_for(&self, a: CandidateId, b: CandidateId) -> u32 {
        self.counts[b.index() * self.n + a.index()]
    }

    /// Net pairwise margin of `a` over `b`: supporters of `a ≺ b` minus supporters of `b ≺ a`.
    pub fn margin(&self, a: CandidateId, b: CandidateId) -> i64 {
        self.support_for(a, b) as i64 - self.support_for(b, a) as i64
    }

    /// Total Kendall-tau cost of a consensus ranking against the base rankings,
    /// computed from the matrix in O(n²).
    pub fn total_disagreements(&self, consensus: &Ranking) -> Result<u64> {
        if consensus.len() != self.n {
            return Err(RankingError::LengthMismatch {
                left: consensus.len(),
                right: self.n,
            });
        }
        let order = consensus.as_slice();
        let mut cost = 0u64;
        for (i, &above) in order.iter().enumerate() {
            for &below in &order[i + 1..] {
                cost += self.disagreements_if_above(above, below) as u64;
            }
        }
        Ok(cost)
    }

    /// Copeland wins for each candidate: the number of pairwise contests the candidate wins,
    /// counting ties as wins for both sides (as in the paper's Fair-Copeland description).
    #[allow(clippy::needless_range_loop)] // dense n*n scan: indices are the clearer idiom
    pub fn copeland_wins(&self) -> Vec<u32> {
        let mut wins = vec![0u32; self.n];
        for a in 0..self.n {
            for b in 0..self.n {
                if a == b {
                    continue;
                }
                let sa = self.support_for(CandidateId(a as u32), CandidateId(b as u32));
                let sb = self.support_for(CandidateId(b as u32), CandidateId(a as u32));
                if sa >= sb {
                    wins[a] += 1;
                }
            }
        }
        wins
    }

    /// Borda-style score for each candidate derived from the matrix: total support the
    /// candidate receives across all pairwise contests.
    #[allow(clippy::needless_range_loop)]
    pub fn pairwise_support_scores(&self) -> Vec<u64> {
        let mut scores = vec![0u64; self.n];
        for a in 0..self.n {
            for b in 0..self.n {
                if a == b {
                    continue;
                }
                scores[a] += self.support_for(CandidateId(a as u32), CandidateId(b as u32)) as u64;
            }
        }
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kendall::kendall_tau;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_rankings() -> Vec<Ranking> {
        vec![
            Ranking::from_ids([0, 1, 2, 3]).unwrap(),
            Ranking::from_ids([1, 0, 2, 3]).unwrap(),
            Ranking::from_ids([3, 2, 1, 0]).unwrap(),
        ]
    }

    #[test]
    fn rejects_empty_and_mismatched_profiles() {
        assert!(matches!(
            PrecedenceMatrix::from_rankings(&[]),
            Err(RankingError::EmptyProfile)
        ));
        let rankings = vec![Ranking::identity(3), Ranking::identity(4)];
        assert!(matches!(
            PrecedenceMatrix::from_rankings(&rankings),
            Err(RankingError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn support_and_disagreement_are_complementary() {
        let rankings = sample_rankings();
        let w = PrecedenceMatrix::from_rankings(&rankings).unwrap();
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a == b {
                    continue;
                }
                let (ca, cb) = (CandidateId(a), CandidateId(b));
                assert_eq!(
                    w.support_for(ca, cb) + w.disagreements_if_above(ca, cb),
                    rankings.len() as u32
                );
            }
        }
    }

    #[test]
    fn support_counts_match_manual() {
        let rankings = sample_rankings();
        let w = PrecedenceMatrix::from_rankings(&rankings).unwrap();
        // candidate 0 above candidate 1 in rankings 0 and (not 1) and (not 2) => 1 actually:
        // r0: 0 before 1 -> yes; r1: 1 before 0 -> no; r2: 1 before 0 -> no.
        assert_eq!(w.support_for(CandidateId(0), CandidateId(1)), 1);
        assert_eq!(w.support_for(CandidateId(1), CandidateId(0)), 2);
        assert_eq!(w.margin(CandidateId(1), CandidateId(0)), 1);
        assert_eq!(w.margin(CandidateId(0), CandidateId(1)), -1);
    }

    #[test]
    fn total_disagreements_equals_sum_of_kendall_tau() {
        let rankings = sample_rankings();
        let w = PrecedenceMatrix::from_rankings(&rankings).unwrap();
        let consensus = Ranking::from_ids([1, 0, 3, 2]).unwrap();
        let expected: u64 = rankings
            .iter()
            .map(|r| kendall_tau(&consensus, r).unwrap())
            .sum();
        assert_eq!(w.total_disagreements(&consensus).unwrap(), expected);
    }

    #[test]
    fn total_disagreements_validates_length() {
        let w = PrecedenceMatrix::from_rankings(&sample_rankings()).unwrap();
        assert!(matches!(
            w.total_disagreements(&Ranking::identity(3)),
            Err(RankingError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn weighted_matrix_counts_weights() {
        let rankings = vec![
            Ranking::from_ids([0, 1]).unwrap(),
            Ranking::from_ids([1, 0]).unwrap(),
        ];
        let w = PrecedenceMatrix::from_weighted_rankings(&rankings, &[3, 1]).unwrap();
        assert_eq!(w.support_for(CandidateId(0), CandidateId(1)), 3);
        assert_eq!(w.support_for(CandidateId(1), CandidateId(0)), 1);
        assert_eq!(w.num_rankings(), 4);
        assert!(matches!(
            PrecedenceMatrix::from_weighted_rankings(&rankings, &[1]),
            Err(RankingError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn copeland_wins_unanimous_profile() {
        let rankings = vec![Ranking::identity(4), Ranking::identity(4)];
        let w = PrecedenceMatrix::from_rankings(&rankings).unwrap();
        assert_eq!(w.copeland_wins(), vec![3, 2, 1, 0]);
    }

    #[test]
    fn copeland_counts_ties_as_wins_for_both() {
        let rankings = vec![
            Ranking::from_ids([0, 1]).unwrap(),
            Ranking::from_ids([1, 0]).unwrap(),
        ];
        let w = PrecedenceMatrix::from_rankings(&rankings).unwrap();
        assert_eq!(w.copeland_wins(), vec![1, 1]);
    }

    proptest! {
        #[test]
        fn prop_total_disagreements_matches_kendall_sums(
            n in 2usize..15,
            m in 1usize..8,
            seed in any::<u64>()
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let rankings: Vec<Ranking> = (0..m).map(|_| Ranking::random(n, &mut rng)).collect();
            let consensus = Ranking::random(n, &mut rng);
            let w = PrecedenceMatrix::from_rankings(&rankings).unwrap();
            let expected: u64 = rankings.iter().map(|r| kendall_tau(&consensus, r).unwrap()).sum();
            prop_assert_eq!(w.total_disagreements(&consensus).unwrap(), expected);
        }
    }
}
