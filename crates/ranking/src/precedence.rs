//! Precedence matrix `W` over a set of base rankings (Definition 11 in the paper).
//!
//! `W[a][b]` counts how many base rankings place candidate `b` *above* candidate `a`
//! (i.e. `b ≺ a` in the paper's notation: entries represent pairwise disagreements with
//! the order `a ≺ b`). Every pairwise consensus method in the workspace (Kemeny,
//! Copeland, Schulze and their fair variants) operates on this matrix, so it is computed
//! once per profile and shared.

use std::ops::Range;

use serde::{Deserialize, Serialize};

use crate::candidate::CandidateId;
use crate::error::RankingError;
use crate::parallel::{
    record_pair_shard_tasks, record_ranking_shard_tasks, run_parts, shard_ranges, Parallelism,
};
use crate::ranking::Ranking;
use crate::Result;

/// Dense `n × n` precedence matrix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrecedenceMatrix {
    n: usize,
    num_rankings: usize,
    /// Row-major storage; entry `(a, b)` at `a * n + b`.
    counts: Vec<u32>,
}

/// Validates that a profile is non-empty and square, returning `n`.
fn validated_len(rankings: &[Ranking]) -> Result<usize> {
    let Some(first) = rankings.first() else {
        return Err(RankingError::EmptyProfile);
    };
    let n = first.len();
    for r in rankings {
        if r.len() != n {
            return Err(RankingError::LengthMismatch {
                left: n,
                right: r.len(),
            });
        }
    }
    Ok(n)
}

/// Adds one ranking's pairwise precedences into `counts` with weight `w`.
///
/// For every pair (above, below) in the ranking, candidate `above` precedes
/// `below`, which is a disagreement against any consensus placing below ≺
/// above: increment `W[below][above]`. The `below` row is hoisted out of the
/// inner loop so each ranking touches `counts` one row slice at a time.
fn accumulate_ranking(counts: &mut [u32], n: usize, ranking: &Ranking, w: u32) {
    let order = ranking.as_slice();
    for (j, below) in order.iter().enumerate().skip(1) {
        let row = &mut counts[below.index() * n..][..n];
        for above in &order[..j] {
            row[above.index()] += w;
        }
    }
}

/// Adds one ranking's pairwise precedences into a contiguous block of matrix
/// rows `rows` (a candidate-pair shard): only pairs whose `below` candidate
/// falls inside `rows` are written, so disjoint row blocks never alias.
fn accumulate_ranking_rows(
    block: &mut [u32],
    rows: &Range<usize>,
    n: usize,
    ranking: &Ranking,
    w: u32,
) {
    let order = ranking.as_slice();
    for (j, below) in order.iter().enumerate().skip(1) {
        let b = below.index();
        if b < rows.start || b >= rows.end {
            continue;
        }
        let row = &mut block[(b - rows.start) * n..][..n];
        for above in &order[..j] {
            row[above.index()] += w;
        }
    }
}

/// Builds the counts buffer for a shard of (ranking, weight) pairs.
fn build_shard(rankings: &[Ranking], weights: Option<&[u32]>, n: usize) -> Vec<u32> {
    let mut counts = vec![0u32; n * n];
    match weights {
        None => {
            for ranking in rankings {
                accumulate_ranking(&mut counts, n, ranking, 1);
            }
        }
        Some(weights) => {
            for (ranking, &w) in rankings.iter().zip(weights) {
                accumulate_ranking(&mut counts, n, ranking, w);
            }
        }
    }
    counts
}

/// Builds the row block `rows` of the matrix by scanning every ranking.
fn build_row_shard(
    rankings: &[Ranking],
    weights: Option<&[u32]>,
    n: usize,
    rows: Range<usize>,
) -> Vec<u32> {
    let mut block = vec![0u32; rows.len() * n];
    match weights {
        None => {
            for ranking in rankings {
                accumulate_ranking_rows(&mut block, &rows, n, ranking, 1);
            }
        }
        Some(weights) => {
            for (ranking, &w) in rankings.iter().zip(weights) {
                accumulate_ranking_rows(&mut block, &rows, n, ranking, w);
            }
        }
    }
    block
}

/// Minimum rankings-per-thread before ranking sharding beats row sharding.
const RANKING_SHARD_FACTOR: usize = 4;

/// Builds counts across `threads` shards, picking the sharding axis:
///
/// * **Ranking sharding** — when the profile is long relative to the thread
///   count, each shard accumulates a disjoint slice of rankings into a private
///   full matrix and the partials are summed element-wise.
/// * **Candidate-pair (row) sharding** — for short-but-wide matrices, each
///   shard scans *every* ranking but writes only a disjoint block of matrix
///   rows, so there is no `n²` partial-matrix merge and the build scales with
///   `n` independent of the ranking count.
///
/// Precedence counts are additive per ranking and integer addition is
/// order-insensitive, so both axes (and every shard boundary) are
/// bit-identical to the serial build.
fn build_sharded(
    rankings: &[Ranking],
    weights: Option<&[u32]>,
    n: usize,
    threads: usize,
) -> Vec<u32> {
    let threads = threads.max(1).min(rankings.len().max(n));
    if threads <= 1 {
        return build_shard(rankings, weights, n);
    }
    if rankings.len() >= threads * RANKING_SHARD_FACTOR {
        let parts: Vec<_> = shard_ranges(rankings.len(), threads)
            .into_iter()
            .map(|range| {
                let shard = &rankings[range.clone()];
                let shard_weights = weights.map(|w| &w[range]);
                move || build_shard(shard, shard_weights, n)
            })
            .collect();
        record_ranking_shard_tasks(parts.len() as u64);
        let mut partials = run_parts(threads, parts).into_iter();
        let mut counts = partials.next().expect("at least one shard");
        for partial in partials {
            for (total, part) in counts.iter_mut().zip(&partial) {
                *total += part;
            }
        }
        counts
    } else {
        let parts: Vec<_> = shard_ranges(n, threads)
            .into_iter()
            .map(|rows| move || build_row_shard(rankings, weights, n, rows))
            .collect();
        record_pair_shard_tasks(parts.len() as u64);
        let mut counts = Vec::with_capacity(n * n);
        for block in run_parts(threads, parts) {
            counts.extend_from_slice(&block);
        }
        counts
    }
}

/// Every support cell is bounded above by the total ranking weight, so one
/// `O(|R|)` bound check at build time guarantees no `u32` cell can wrap
/// during accumulation (and that downstream `u32` path-strength cells in the
/// Schulze kernel cannot overflow either).
fn check_support_capacity(total_weight: u64) -> Result<()> {
    if total_weight > u32::MAX as u64 {
        return Err(RankingError::SupportOverflow { total_weight });
    }
    Ok(())
}

impl PrecedenceMatrix {
    /// Builds the precedence matrix from a set of base rankings.
    ///
    /// All rankings must cover the same `n` candidates. Cost is `O(|R| · n²)`.
    pub fn from_rankings(rankings: &[Ranking]) -> Result<Self> {
        Self::from_rankings_parallel(rankings, &Parallelism::serial())
    }

    /// Builds the precedence matrix with up to [`Parallelism::max_threads`]
    /// shards building partial matrices that are summed — bit-identical to
    /// [`PrecedenceMatrix::from_rankings`] for every shard count.
    ///
    /// The size gate uses the larger of `n` and `|R|`: this kernel shards by
    /// rankings, so a short-but-wide profile (small `n`, huge `|R|`) is
    /// exactly as parallelisable as a tall one.
    pub fn from_rankings_parallel(rankings: &[Ranking], parallelism: &Parallelism) -> Result<Self> {
        let n = validated_len(rankings)?;
        check_support_capacity(rankings.len() as u64)?;
        let threads = parallelism.kernel_threads(n.max(rankings.len()));
        let counts = build_sharded(rankings, None, n, threads);
        Ok(Self {
            n,
            num_rankings: rankings.len(),
            counts,
        })
    }

    /// Builds a matrix with weighted rankings: ranking `i` contributes `weights[i]` votes.
    pub fn from_weighted_rankings(rankings: &[Ranking], weights: &[u32]) -> Result<Self> {
        Self::from_weighted_rankings_parallel(rankings, weights, &Parallelism::serial())
    }

    /// Weighted variant of [`PrecedenceMatrix::from_rankings_parallel`]:
    /// shards carry their weight slices, partial matrices are summed.
    pub fn from_weighted_rankings_parallel(
        rankings: &[Ranking],
        weights: &[u32],
        parallelism: &Parallelism,
    ) -> Result<Self> {
        if rankings.len() != weights.len() {
            return Err(RankingError::LengthMismatch {
                left: rankings.len(),
                right: weights.len(),
            });
        }
        let n = validated_len(rankings)?;
        let total_weight: u64 = weights.iter().map(|&w| w as u64).sum();
        check_support_capacity(total_weight)?;
        let threads = parallelism.kernel_threads(n.max(rankings.len()));
        let counts = build_sharded(rankings, Some(weights), n, threads);
        Ok(Self {
            n,
            num_rankings: total_weight as usize,
            counts,
        })
    }

    /// Folds one weighted ranking into the matrix in `O(n²)` — the
    /// incremental twin of rebuilding with the ranking appended.
    ///
    /// Precedence counts are order-insensitive integer sums, so appending is
    /// bit-identical to a full [`PrecedenceMatrix::from_weighted_rankings`]
    /// rebuild over the extended profile. The total-weight capacity check is
    /// re-applied before any cell is touched, so a failed append leaves the
    /// matrix unchanged.
    pub fn apply_append(&mut self, ranking: &Ranking, weight: u32) -> Result<()> {
        if ranking.len() != self.n {
            return Err(RankingError::LengthMismatch {
                left: self.n,
                right: ranking.len(),
            });
        }
        check_support_capacity(self.num_rankings as u64 + weight as u64)?;
        accumulate_ranking(&mut self.counts, self.n, ranking, weight);
        self.num_rankings += weight as usize;
        Ok(())
    }

    /// Removes one weighted ranking from the matrix in `O(n²)` — the inverse
    /// of [`PrecedenceMatrix::apply_append`].
    ///
    /// Every pairwise support cell the ranking touches is verified to hold at
    /// least `weight` *before* any subtraction, so retracting a ranking the
    /// matrix does not contain fails with
    /// [`RankingError::RetractUnderflow`] and leaves the matrix unchanged.
    /// Retracting the last ranking is allowed and yields the empty (all-zero)
    /// matrix.
    pub fn apply_retract(&mut self, ranking: &Ranking, weight: u32) -> Result<()> {
        if ranking.len() != self.n {
            return Err(RankingError::LengthMismatch {
                left: self.n,
                right: ranking.len(),
            });
        }
        if (self.num_rankings as u64) < weight as u64 {
            return Err(RankingError::RetractUnderflow { weight });
        }
        // Check pass: each (above, below) pair occurs exactly once per
        // ranking, so cell-wise `>= weight` here guarantees the subtraction
        // pass below cannot underflow.
        let order = ranking.as_slice();
        for (j, below) in order.iter().enumerate().skip(1) {
            let row = &self.counts[below.index() * self.n..][..self.n];
            for above in &order[..j] {
                if row[above.index()] < weight {
                    return Err(RankingError::RetractUnderflow { weight });
                }
            }
        }
        for (j, below) in order.iter().enumerate().skip(1) {
            let row = &mut self.counts[below.index() * self.n..][..self.n];
            for above in &order[..j] {
                row[above.index()] -= weight;
            }
        }
        self.num_rankings -= weight as usize;
        Ok(())
    }

    /// Number of candidates.
    pub fn num_candidates(&self) -> usize {
        self.n
    }

    /// Number of base rankings (or total weight for weighted construction).
    pub fn num_rankings(&self) -> usize {
        self.num_rankings
    }

    /// `W[a][b]`: number of base rankings ranking `b` above `a` — the disagreement cost of
    /// placing `a` above `b` in the consensus.
    pub fn disagreements_if_above(&self, a: CandidateId, b: CandidateId) -> u32 {
        self.counts[a.index() * self.n + b.index()]
    }

    /// Row `a` of the matrix: `row(a)[b]` is [`PrecedenceMatrix::disagreements_if_above`]
    /// `(a, b)`, equivalently the support for `b ≺ a` (so `support_for(a, b)`
    /// is `row(b)[a]`). Kernels iterate rows directly instead of paying a
    /// bounds-checked multiply per element.
    pub fn row(&self, a: CandidateId) -> &[u32] {
        &self.counts[a.index() * self.n..][..self.n]
    }

    /// Number of base rankings preferring `a` over `b` (support for `a ≺ b`).
    pub fn support_for(&self, a: CandidateId, b: CandidateId) -> u32 {
        self.counts[b.index() * self.n + a.index()]
    }

    /// Net pairwise margin of `a` over `b`: supporters of `a ≺ b` minus supporters of `b ≺ a`.
    pub fn margin(&self, a: CandidateId, b: CandidateId) -> i64 {
        self.support_for(a, b) as i64 - self.support_for(b, a) as i64
    }

    /// Total Kendall-tau cost of a consensus ranking against the base rankings,
    /// computed from the matrix in O(n²).
    pub fn total_disagreements(&self, consensus: &Ranking) -> Result<u64> {
        if consensus.len() != self.n {
            return Err(RankingError::LengthMismatch {
                left: consensus.len(),
                right: self.n,
            });
        }
        let order = consensus.as_slice();
        let mut cost = 0u64;
        for (i, &above) in order.iter().enumerate() {
            let row = self.row(above);
            for &below in &order[i + 1..] {
                cost += row[below.index()] as u64;
            }
        }
        Ok(cost)
    }

    /// Parallel variant of [`PrecedenceMatrix::total_disagreements`]: consensus
    /// positions are sharded into contiguous ranges whose partial costs are
    /// summed. `u64` addition is exact and associative, so the total is
    /// bit-identical to the serial scan for every thread count.
    pub fn total_disagreements_parallel(
        &self,
        consensus: &Ranking,
        parallelism: &Parallelism,
    ) -> Result<u64> {
        if consensus.len() != self.n {
            return Err(RankingError::LengthMismatch {
                left: consensus.len(),
                right: self.n,
            });
        }
        let threads = parallelism.kernel_threads(self.n);
        if threads <= 1 {
            return self.total_disagreements(consensus);
        }
        let order = consensus.as_slice();
        let parts: Vec<_> = shard_ranges(self.n, threads)
            .into_iter()
            .map(|range| {
                move || {
                    let mut cost = 0u64;
                    for (i, &above) in order.iter().enumerate().take(range.end).skip(range.start) {
                        let row = self.row(above);
                        for &below in &order[i + 1..] {
                            cost += row[below.index()] as u64;
                        }
                    }
                    cost
                }
            })
            .collect();
        record_pair_shard_tasks(parts.len() as u64);
        Ok(run_parts(threads, parts).into_iter().sum())
    }

    /// Copeland wins for each candidate: the number of pairwise contests the candidate wins,
    /// counting ties as wins for both sides (as in the paper's Fair-Copeland description).
    pub fn copeland_wins(&self) -> Vec<u32> {
        // One pass over the upper triangle using two row slices per `a`:
        // support_for(a, b) = row(b)[a] and support_for(b, a) = row(a)[b].
        let mut wins = vec![0u32; self.n];
        for a in 0..self.n {
            let row_a = &self.counts[a * self.n..][..self.n];
            for b in a + 1..self.n {
                let sa = self.counts[b * self.n + a];
                let sb = row_a[b];
                if sa >= sb {
                    wins[a] += 1;
                }
                if sb >= sa {
                    wins[b] += 1;
                }
            }
        }
        wins
    }

    /// Parallel variant of [`PrecedenceMatrix::copeland_wins`]: candidates are
    /// sharded into contiguous ranges and each shard decides all `n - 1`
    /// contests of its own candidates. Every contest is resolved by the same
    /// `>=` comparison on the same two cells as the serial triangle pass, so
    /// the win counts are identical integers.
    pub fn copeland_wins_parallel(&self, parallelism: &Parallelism) -> Vec<u32> {
        let threads = parallelism.kernel_threads(self.n);
        if threads <= 1 {
            return self.copeland_wins();
        }
        let n = self.n;
        let counts = &self.counts;
        let parts: Vec<_> = shard_ranges(n, threads)
            .into_iter()
            .map(|range| {
                move || {
                    let mut wins = vec![0u32; range.len()];
                    for (w, a) in wins.iter_mut().zip(range.clone()) {
                        let row_a = &counts[a * n..][..n];
                        for b in 0..n {
                            // support_for(a, b) = row(b)[a]; support_for(b, a) = row(a)[b].
                            if b != a && counts[b * n + a] >= row_a[b] {
                                *w += 1;
                            }
                        }
                    }
                    wins
                }
            })
            .collect();
        record_pair_shard_tasks(parts.len() as u64);
        let mut wins = Vec::with_capacity(n);
        for part in run_parts(threads, parts) {
            wins.extend_from_slice(&part);
        }
        wins
    }

    /// Borda-style score for each candidate derived from the matrix: total support the
    /// candidate receives across all pairwise contests.
    pub fn pairwise_support_scores(&self) -> Vec<u64> {
        // scores[a] = Σ_b support_for(a, b) = Σ_b row(b)[a]: a column sum,
        // computed as one cache-friendly sweep over the rows. The diagonal is
        // always zero, so no exclusion is needed.
        let mut scores = vec![0u64; self.n];
        for row in self.counts.chunks_exact(self.n) {
            for (score, &count) in scores.iter_mut().zip(row) {
                *score += count as u64;
            }
        }
        scores
    }

    /// Parallel variant of [`PrecedenceMatrix::pairwise_support_scores`]: the
    /// column space is sharded into contiguous ranges and each shard sweeps
    /// every row restricted to its columns. Per column the accumulation visits
    /// rows in the same top-to-bottom order as the serial sweep, so every
    /// score is bit-identical.
    pub fn pairwise_support_scores_parallel(&self, parallelism: &Parallelism) -> Vec<u64> {
        let threads = parallelism.kernel_threads(self.n);
        if threads <= 1 {
            return self.pairwise_support_scores();
        }
        let n = self.n;
        let counts = &self.counts;
        let parts: Vec<_> = shard_ranges(n, threads)
            .into_iter()
            .map(|cols| {
                move || {
                    let mut scores = vec![0u64; cols.len()];
                    for row in counts.chunks_exact(n) {
                        for (score, &count) in scores.iter_mut().zip(&row[cols.clone()]) {
                            *score += count as u64;
                        }
                    }
                    scores
                }
            })
            .collect();
        record_pair_shard_tasks(parts.len() as u64);
        let mut scores = Vec::with_capacity(n);
        for part in run_parts(threads, parts) {
            scores.extend_from_slice(&part);
        }
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kendall::kendall_tau;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_rankings() -> Vec<Ranking> {
        vec![
            Ranking::from_ids([0, 1, 2, 3]).unwrap(),
            Ranking::from_ids([1, 0, 2, 3]).unwrap(),
            Ranking::from_ids([3, 2, 1, 0]).unwrap(),
        ]
    }

    #[test]
    fn rejects_empty_and_mismatched_profiles() {
        assert!(matches!(
            PrecedenceMatrix::from_rankings(&[]),
            Err(RankingError::EmptyProfile)
        ));
        let rankings = vec![Ranking::identity(3), Ranking::identity(4)];
        assert!(matches!(
            PrecedenceMatrix::from_rankings(&rankings),
            Err(RankingError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn support_and_disagreement_are_complementary() {
        let rankings = sample_rankings();
        let w = PrecedenceMatrix::from_rankings(&rankings).unwrap();
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a == b {
                    continue;
                }
                let (ca, cb) = (CandidateId(a), CandidateId(b));
                assert_eq!(
                    w.support_for(ca, cb) + w.disagreements_if_above(ca, cb),
                    rankings.len() as u32
                );
            }
        }
    }

    #[test]
    fn support_counts_match_manual() {
        let rankings = sample_rankings();
        let w = PrecedenceMatrix::from_rankings(&rankings).unwrap();
        // candidate 0 above candidate 1 in rankings 0 and (not 1) and (not 2) => 1 actually:
        // r0: 0 before 1 -> yes; r1: 1 before 0 -> no; r2: 1 before 0 -> no.
        assert_eq!(w.support_for(CandidateId(0), CandidateId(1)), 1);
        assert_eq!(w.support_for(CandidateId(1), CandidateId(0)), 2);
        assert_eq!(w.margin(CandidateId(1), CandidateId(0)), 1);
        assert_eq!(w.margin(CandidateId(0), CandidateId(1)), -1);
    }

    #[test]
    fn total_disagreements_equals_sum_of_kendall_tau() {
        let rankings = sample_rankings();
        let w = PrecedenceMatrix::from_rankings(&rankings).unwrap();
        let consensus = Ranking::from_ids([1, 0, 3, 2]).unwrap();
        let expected: u64 = rankings
            .iter()
            .map(|r| kendall_tau(&consensus, r).unwrap())
            .sum();
        assert_eq!(w.total_disagreements(&consensus).unwrap(), expected);
    }

    #[test]
    fn total_disagreements_validates_length() {
        let w = PrecedenceMatrix::from_rankings(&sample_rankings()).unwrap();
        assert!(matches!(
            w.total_disagreements(&Ranking::identity(3)),
            Err(RankingError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn weighted_matrix_counts_weights() {
        let rankings = vec![
            Ranking::from_ids([0, 1]).unwrap(),
            Ranking::from_ids([1, 0]).unwrap(),
        ];
        let w = PrecedenceMatrix::from_weighted_rankings(&rankings, &[3, 1]).unwrap();
        assert_eq!(w.support_for(CandidateId(0), CandidateId(1)), 3);
        assert_eq!(w.support_for(CandidateId(1), CandidateId(0)), 1);
        assert_eq!(w.num_rankings(), 4);
        assert!(matches!(
            PrecedenceMatrix::from_weighted_rankings(&rankings, &[1]),
            Err(RankingError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn copeland_wins_unanimous_profile() {
        let rankings = vec![Ranking::identity(4), Ranking::identity(4)];
        let w = PrecedenceMatrix::from_rankings(&rankings).unwrap();
        assert_eq!(w.copeland_wins(), vec![3, 2, 1, 0]);
    }

    #[test]
    fn copeland_counts_ties_as_wins_for_both() {
        let rankings = vec![
            Ranking::from_ids([0, 1]).unwrap(),
            Ranking::from_ids([1, 0]).unwrap(),
        ];
        let w = PrecedenceMatrix::from_rankings(&rankings).unwrap();
        assert_eq!(w.copeland_wins(), vec![1, 1]);
    }

    #[test]
    fn row_accessor_matches_point_lookups() {
        let w = PrecedenceMatrix::from_rankings(&sample_rankings()).unwrap();
        for a in 0..4u32 {
            let row = w.row(CandidateId(a));
            assert_eq!(row.len(), 4);
            for b in 0..4u32 {
                assert_eq!(
                    row[b as usize],
                    w.disagreements_if_above(CandidateId(a), CandidateId(b))
                );
            }
        }
    }

    #[test]
    fn weighted_build_rejects_u32_support_overflow() {
        // Two identical rankings whose combined weight (2^31 + 1 each) sums to
        // 2^32 + 2 > u32::MAX: every cell would wrap, so the build must fail
        // with a structured error instead.
        let rankings = vec![
            Ranking::from_ids([0, 1]).unwrap(),
            Ranking::from_ids([0, 1]).unwrap(),
        ];
        let huge = (1u32 << 31) + 1;
        let err = PrecedenceMatrix::from_weighted_rankings(&rankings, &[huge, huge]).unwrap_err();
        assert_eq!(
            err,
            RankingError::SupportOverflow {
                total_weight: 2 * huge as u64
            }
        );

        // Exactly at capacity is fine: one ranking carrying the full u32 range.
        let one = vec![Ranking::from_ids([0, 1]).unwrap()];
        let w = PrecedenceMatrix::from_weighted_rankings(&one, &[u32::MAX]).unwrap();
        assert_eq!(w.support_for(CandidateId(0), CandidateId(1)), u32::MAX);
    }

    #[test]
    fn row_sharded_build_matches_ranking_sharded() {
        // Two rankings across eight threads falls below the ranking-shard
        // factor, forcing the candidate-pair (row) sharding path.
        let rankings = vec![
            Ranking::from_ids([3, 1, 4, 0, 2, 5]).unwrap(),
            Ranking::from_ids([5, 0, 2, 4, 1, 3]).unwrap(),
        ];
        let par = Parallelism::new(8).with_min_candidates(0);
        assert_eq!(
            PrecedenceMatrix::from_rankings_parallel(&rankings, &par).unwrap(),
            PrecedenceMatrix::from_rankings(&rankings).unwrap()
        );
        let weights = [2, 5];
        assert_eq!(
            PrecedenceMatrix::from_weighted_rankings_parallel(&rankings, &weights, &par).unwrap(),
            PrecedenceMatrix::from_weighted_rankings(&rankings, &weights).unwrap()
        );
    }

    #[test]
    fn parallel_scoring_matches_serial() {
        let rankings = sample_rankings();
        let w = PrecedenceMatrix::from_rankings(&rankings).unwrap();
        let par = Parallelism::new(3).with_min_candidates(0);
        let consensus = Ranking::from_ids([2, 0, 3, 1]).unwrap();
        assert_eq!(
            w.total_disagreements_parallel(&consensus, &par).unwrap(),
            w.total_disagreements(&consensus).unwrap()
        );
        assert_eq!(w.copeland_wins_parallel(&par), w.copeland_wins());
        assert_eq!(
            w.pairwise_support_scores_parallel(&par),
            w.pairwise_support_scores()
        );
        assert!(matches!(
            w.total_disagreements_parallel(&Ranking::identity(3), &par),
            Err(RankingError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn parallel_build_respects_min_candidates_gate() {
        // Below the threshold the parallel entry point must still produce the
        // same matrix (it just runs serially).
        let rankings = sample_rankings();
        let gated = Parallelism::new(8); // default threshold 48 > n = 4
        assert_eq!(
            PrecedenceMatrix::from_rankings_parallel(&rankings, &gated).unwrap(),
            PrecedenceMatrix::from_rankings(&rankings).unwrap()
        );
    }

    #[test]
    fn append_matches_full_rebuild() {
        let mut rankings = sample_rankings();
        let mut w = PrecedenceMatrix::from_rankings(&rankings).unwrap();
        let extra = Ranking::from_ids([2, 3, 0, 1]).unwrap();
        w.apply_append(&extra, 1).unwrap();
        rankings.push(extra);
        assert_eq!(w, PrecedenceMatrix::from_rankings(&rankings).unwrap());
    }

    #[test]
    fn retract_matches_rebuild_without_the_ranking() {
        let rankings = sample_rankings();
        let mut w = PrecedenceMatrix::from_rankings(&rankings).unwrap();
        w.apply_retract(&rankings[1], 1).unwrap();
        let remaining = [rankings[0].clone(), rankings[2].clone()];
        assert_eq!(w, PrecedenceMatrix::from_rankings(&remaining).unwrap());
    }

    #[test]
    fn retract_to_empty_zeroes_the_matrix() {
        let only = vec![Ranking::from_ids([1, 0, 2]).unwrap()];
        let mut w = PrecedenceMatrix::from_rankings(&only).unwrap();
        w.apply_retract(&only[0], 1).unwrap();
        assert_eq!(w.num_rankings(), 0);
        for a in 0..3u32 {
            for b in 0..3u32 {
                assert_eq!(w.disagreements_if_above(CandidateId(a), CandidateId(b)), 0);
            }
        }
        // An empty matrix accepts appends again, round-tripping to a rebuild.
        let next = Ranking::from_ids([2, 1, 0]).unwrap();
        w.apply_append(&next, 3).unwrap();
        assert_eq!(
            w,
            PrecedenceMatrix::from_weighted_rankings(&[next], &[3]).unwrap()
        );
    }

    #[test]
    fn retract_of_absent_ranking_fails_and_leaves_matrix_unchanged() {
        // A unanimous profile has zero support for any reversed pair, so
        // retracting the reverse ranking must underflow a cell.
        let rankings = vec![Ranking::identity(4), Ranking::identity(4)];
        let mut w = PrecedenceMatrix::from_rankings(&rankings).unwrap();
        let before = w.clone();
        let absent = Ranking::from_ids([3, 2, 1, 0]).unwrap();
        assert_eq!(
            w.apply_retract(&absent, 1).unwrap_err(),
            RankingError::RetractUnderflow { weight: 1 }
        );
        // Present, but not with weight 3 (total weight is only 2).
        assert_eq!(
            w.apply_retract(&rankings[0], 3).unwrap_err(),
            RankingError::RetractUnderflow { weight: 3 }
        );
        assert_eq!(w, before, "failed retract must not touch the matrix");
    }

    #[test]
    fn delta_edits_validate_length_and_capacity() {
        let mut w = PrecedenceMatrix::from_rankings(&sample_rankings()).unwrap();
        let before = w.clone();
        assert!(matches!(
            w.apply_append(&Ranking::identity(3), 1),
            Err(RankingError::LengthMismatch { .. })
        ));
        assert!(matches!(
            w.apply_retract(&Ranking::identity(5), 1),
            Err(RankingError::LengthMismatch { .. })
        ));
        assert_eq!(
            w.apply_append(&Ranking::identity(4), u32::MAX).unwrap_err(),
            RankingError::SupportOverflow {
                total_weight: 3 + u32::MAX as u64
            }
        );
        assert_eq!(w, before);
    }

    proptest! {
        #[test]
        fn prop_append_and_retract_are_bit_identical_to_rebuild(
            n in 2usize..10,
            m in 1usize..8,
            edits in 1usize..12,
            seed in any::<u64>()
        ) {
            // A randomized edit script over a weighted profile: each step
            // either appends a fresh random ranking or retracts a surviving
            // one, and after every step the incrementally maintained matrix
            // must equal a from-scratch weighted rebuild of the survivors.
            let mut rng = StdRng::seed_from_u64(seed);
            let mut live: Vec<(Ranking, u32)> = (0..m)
                .map(|i| (Ranking::random(n, &mut rng), (i as u32 % 4) + 1))
                .collect();
            let rankings: Vec<Ranking> = live.iter().map(|(r, _)| r.clone()).collect();
            let weights: Vec<u32> = live.iter().map(|(_, w)| *w).collect();
            let mut matrix =
                PrecedenceMatrix::from_weighted_rankings(&rankings, &weights).unwrap();
            for step in 0..edits {
                if live.is_empty() || step % 3 != 2 {
                    let ranking = Ranking::random(n, &mut rng);
                    let weight = (step as u32 % 5) + 1;
                    matrix.apply_append(&ranking, weight).unwrap();
                    live.push((ranking, weight));
                } else {
                    let victim = live.remove(step % live.len());
                    matrix.apply_retract(&victim.0, victim.1).unwrap();
                }
                if live.is_empty() {
                    prop_assert_eq!(matrix.num_rankings(), 0);
                    continue;
                }
                let rankings: Vec<Ranking> = live.iter().map(|(r, _)| r.clone()).collect();
                let weights: Vec<u32> = live.iter().map(|(_, w)| *w).collect();
                let rebuilt =
                    PrecedenceMatrix::from_weighted_rankings(&rankings, &weights).unwrap();
                prop_assert_eq!(&matrix, &rebuilt);
            }
        }

        #[test]
        fn prop_delta_matches_parallel_rebuild_across_thread_counts(
            n in 2usize..10,
            m in 1usize..8,
            shards in 1usize..9,
            seed in any::<u64>()
        ) {
            // Appending onto a serially built matrix must equal the *parallel*
            // rebuild of the extended profile for every shard count (both are
            // bit-identical to the serial rebuild, hence to each other).
            let mut rng = StdRng::seed_from_u64(seed);
            let mut rankings: Vec<Ranking> =
                (0..m).map(|_| Ranking::random(n, &mut rng)).collect();
            let mut matrix = PrecedenceMatrix::from_rankings(&rankings).unwrap();
            let extra = Ranking::random(n, &mut rng);
            matrix.apply_append(&extra, 1).unwrap();
            rankings.push(extra);
            let par = Parallelism::new(shards).with_min_candidates(0);
            let rebuilt = PrecedenceMatrix::from_rankings_parallel(&rankings, &par).unwrap();
            prop_assert_eq!(&matrix, &rebuilt);
        }

        #[test]
        fn prop_sharded_build_is_bit_identical(
            n in 2usize..12,
            m in 1usize..20,
            shards in 1usize..9,
            seed in any::<u64>()
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let rankings: Vec<Ranking> = (0..m).map(|_| Ranking::random(n, &mut rng)).collect();
            let serial = PrecedenceMatrix::from_rankings(&rankings).unwrap();
            let par = Parallelism::new(shards).with_min_candidates(0);
            let parallel = PrecedenceMatrix::from_rankings_parallel(&rankings, &par).unwrap();
            prop_assert_eq!(&serial, &parallel);

            let weights: Vec<u32> = (0..m as u32).map(|i| (seed as u32 % 5) + i % 7 + 1).collect();
            let serial_w = PrecedenceMatrix::from_weighted_rankings(&rankings, &weights).unwrap();
            let parallel_w =
                PrecedenceMatrix::from_weighted_rankings_parallel(&rankings, &weights, &par).unwrap();
            prop_assert_eq!(&serial_w, &parallel_w);
        }

        #[test]
        fn prop_pair_sharded_scoring_is_bit_identical(
            n in 2usize..12,
            m in 1usize..10,
            shards in 1usize..9,
            seed in any::<u64>()
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let rankings: Vec<Ranking> = (0..m).map(|_| Ranking::random(n, &mut rng)).collect();
            let consensus = Ranking::random(n, &mut rng);
            let w = PrecedenceMatrix::from_rankings(&rankings).unwrap();
            let par = Parallelism::new(shards).with_min_candidates(0);
            prop_assert_eq!(
                w.total_disagreements_parallel(&consensus, &par).unwrap(),
                w.total_disagreements(&consensus).unwrap()
            );
            prop_assert_eq!(w.copeland_wins_parallel(&par), w.copeland_wins());
            prop_assert_eq!(
                w.pairwise_support_scores_parallel(&par),
                w.pairwise_support_scores()
            );
        }

        #[test]
        fn prop_total_disagreements_matches_kendall_sums(
            n in 2usize..15,
            m in 1usize..8,
            seed in any::<u64>()
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let rankings: Vec<Ranking> = (0..m).map(|_| Ranking::random(n, &mut rng)).collect();
            let consensus = Ranking::random(n, &mut rng);
            let w = PrecedenceMatrix::from_rankings(&rankings).unwrap();
            let expected: u64 = rankings.iter().map(|r| kendall_tau(&consensus, r).unwrap()).sum();
            prop_assert_eq!(w.total_disagreements(&consensus).unwrap(), expected);
        }
    }
}
