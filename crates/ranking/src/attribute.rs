//! Protected attribute schema: attributes, value domains, and intersection encoding.
//!
//! The paper (Section II-A) models a set `P = {p_1, ..., p_q}` of categorical protected
//! attributes, each with a finite value domain, and an *intersection* attribute whose
//! domain is the Cartesian product of all attribute domains. This module provides an
//! interned representation of that schema: attributes and values are small integer ids,
//! and intersection values are mixed-radix codes over the per-attribute value ids.

use serde::{Deserialize, Serialize};

use crate::error::RankingError;
use crate::Result;

/// Identifier of a protected attribute within an [`AttributeSchema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttributeId(pub(crate) u16);

impl AttributeId {
    /// Index of the attribute within the schema (registration order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a value within one attribute's domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ValueId(pub(crate) u16);

impl ValueId {
    /// Index of the value within the attribute domain (registration order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single categorical protected attribute and its value domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtectedAttribute {
    name: String,
    values: Vec<String>,
}

impl ProtectedAttribute {
    /// Creates a protected attribute from a name and its domain of values.
    ///
    /// Returns an error if fewer than two values are supplied or if values repeat.
    pub fn new(
        name: impl Into<String>,
        values: impl IntoIterator<Item = impl Into<String>>,
    ) -> Result<Self> {
        let name = name.into();
        let values: Vec<String> = values.into_iter().map(Into::into).collect();
        if values.len() < 2 {
            return Err(RankingError::DegenerateAttribute(name));
        }
        for (i, v) in values.iter().enumerate() {
            if values[..i].contains(v) {
                return Err(RankingError::DuplicateValue {
                    attribute: name,
                    value: v.clone(),
                });
            }
        }
        Ok(Self { name, values })
    }

    /// Attribute name (e.g. `"Gender"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of values in the attribute's domain, `|dom(p_k)|` in the paper.
    pub fn domain_size(&self) -> usize {
        self.values.len()
    }

    /// Value names in registration order.
    pub fn values(&self) -> impl Iterator<Item = &str> {
        self.values.iter().map(String::as_str)
    }

    /// Name of a specific value.
    pub fn value_name(&self, value: ValueId) -> Option<&str> {
        self.values.get(value.index()).map(String::as_str)
    }

    /// Looks up a value id by name.
    pub fn value_id(&self, name: &str) -> Option<ValueId> {
        self.values
            .iter()
            .position(|v| v == name)
            .map(|i| ValueId(i as u16))
    }
}

/// The complete set of protected attributes declared for a candidate database.
///
/// The schema also defines the *intersection* attribute `Inter = p_1 × ... × p_q`
/// (Definition 2 in the paper). Intersection values are encoded as mixed-radix integers
/// over the per-attribute value ids so that intersectional groups can be indexed densely.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributeSchema {
    attributes: Vec<ProtectedAttribute>,
    /// Mixed-radix place value of each attribute in the intersection code.
    radix_weights: Vec<usize>,
    intersection_cardinality: usize,
}

impl AttributeSchema {
    /// Builds a schema from a list of protected attributes.
    pub fn new(attributes: Vec<ProtectedAttribute>) -> Result<Self> {
        if attributes.is_empty() {
            return Err(RankingError::EmptySchema);
        }
        for (i, attr) in attributes.iter().enumerate() {
            if attributes[..i].iter().any(|a| a.name() == attr.name()) {
                return Err(RankingError::DuplicateAttribute(attr.name().to_string()));
            }
        }
        let mut radix_weights = vec![0usize; attributes.len()];
        let mut weight = 1usize;
        for (i, attr) in attributes.iter().enumerate().rev() {
            radix_weights[i] = weight;
            weight = weight.saturating_mul(attr.domain_size());
        }
        Ok(Self {
            radix_weights,
            intersection_cardinality: weight,
            attributes,
        })
    }

    /// Number of protected attributes `q = |P|`.
    pub fn num_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// Iterates over `(AttributeId, &ProtectedAttribute)` pairs.
    pub fn attributes(&self) -> impl Iterator<Item = (AttributeId, &ProtectedAttribute)> {
        self.attributes
            .iter()
            .enumerate()
            .map(|(i, a)| (AttributeId(i as u16), a))
    }

    /// Returns the attribute with the given id.
    pub fn attribute(&self, id: AttributeId) -> Option<&ProtectedAttribute> {
        self.attributes.get(id.index())
    }

    /// Looks up an attribute id by name.
    pub fn attribute_id(&self, name: &str) -> Option<AttributeId> {
        self.attributes
            .iter()
            .position(|a| a.name() == name)
            .map(|i| AttributeId(i as u16))
    }

    /// Cardinality of the intersection attribute, `|Inter| = |p_1| * ... * |p_q|`.
    pub fn intersection_cardinality(&self) -> usize {
        self.intersection_cardinality
    }

    /// Encodes a full assignment of per-attribute values into an intersection code.
    ///
    /// `values[i]` must be the value id of attribute `i`. Codes are dense in
    /// `0..intersection_cardinality()`.
    pub fn intersection_code(&self, values: &[ValueId]) -> Result<usize> {
        if values.len() != self.attributes.len() {
            return Err(RankingError::LengthMismatch {
                left: values.len(),
                right: self.attributes.len(),
            });
        }
        let mut code = 0usize;
        for (i, value) in values.iter().enumerate() {
            let attr = &self.attributes[i];
            if value.index() >= attr.domain_size() {
                return Err(RankingError::UnknownValue {
                    attribute: attr.name().to_string(),
                    value_index: value.index(),
                });
            }
            code += value.index() * self.radix_weights[i];
        }
        Ok(code)
    }

    /// Decodes an intersection code back into per-attribute value ids.
    pub fn decode_intersection(&self, mut code: usize) -> Vec<ValueId> {
        let mut out = Vec::with_capacity(self.attributes.len());
        for (i, _attr) in self.attributes.iter().enumerate() {
            let digit = code / self.radix_weights[i];
            out.push(ValueId(digit as u16));
            code %= self.radix_weights[i];
        }
        out
    }

    /// Human-readable label for an intersection code, e.g. `"Woman×Black"`.
    pub fn intersection_label(&self, code: usize) -> String {
        let values = self.decode_intersection(code);
        values
            .iter()
            .enumerate()
            .map(|(i, v)| {
                self.attributes[i]
                    .value_name(*v)
                    .unwrap_or("<invalid>")
                    .to_string()
            })
            .collect::<Vec<_>>()
            .join("×")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> AttributeSchema {
        AttributeSchema::new(vec![
            ProtectedAttribute::new("Gender", ["Man", "Woman", "NonBinary"]).unwrap(),
            ProtectedAttribute::new("Race", ["A", "B", "C", "D", "E"]).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn attribute_requires_two_values() {
        let err = ProtectedAttribute::new("Gender", ["OnlyOne"]).unwrap_err();
        assert!(matches!(err, RankingError::DegenerateAttribute(_)));
    }

    #[test]
    fn attribute_rejects_duplicate_values() {
        let err = ProtectedAttribute::new("Gender", ["X", "X"]).unwrap_err();
        assert!(matches!(err, RankingError::DuplicateValue { .. }));
    }

    #[test]
    fn value_lookup_roundtrips() {
        let attr = ProtectedAttribute::new("Race", ["A", "B", "C"]).unwrap();
        let b = attr.value_id("B").unwrap();
        assert_eq!(attr.value_name(b), Some("B"));
        assert_eq!(attr.value_id("Z"), None);
        assert_eq!(attr.domain_size(), 3);
    }

    #[test]
    fn schema_rejects_duplicate_attribute_names() {
        let err = AttributeSchema::new(vec![
            ProtectedAttribute::new("Gender", ["M", "W"]).unwrap(),
            ProtectedAttribute::new("Gender", ["X", "Y"]).unwrap(),
        ])
        .unwrap_err();
        assert!(matches!(err, RankingError::DuplicateAttribute(_)));
    }

    #[test]
    fn schema_rejects_empty() {
        assert!(matches!(
            AttributeSchema::new(vec![]),
            Err(RankingError::EmptySchema)
        ));
    }

    #[test]
    fn intersection_cardinality_is_product_of_domains() {
        let s = schema();
        assert_eq!(s.intersection_cardinality(), 3 * 5);
    }

    #[test]
    fn intersection_codes_are_dense_and_unique() {
        let s = schema();
        let mut seen = vec![false; s.intersection_cardinality()];
        for g in 0..3u16 {
            for r in 0..5u16 {
                let code = s.intersection_code(&[ValueId(g), ValueId(r)]).unwrap();
                assert!(code < s.intersection_cardinality());
                assert!(!seen[code], "duplicate code {code}");
                seen[code] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn intersection_code_roundtrips() {
        let s = schema();
        for code in 0..s.intersection_cardinality() {
            let values = s.decode_intersection(code);
            assert_eq!(s.intersection_code(&values).unwrap(), code);
        }
    }

    #[test]
    fn intersection_code_validates_input() {
        let s = schema();
        assert!(matches!(
            s.intersection_code(&[ValueId(0)]),
            Err(RankingError::LengthMismatch { .. })
        ));
        assert!(matches!(
            s.intersection_code(&[ValueId(0), ValueId(99)]),
            Err(RankingError::UnknownValue { .. })
        ));
    }

    #[test]
    fn intersection_label_joins_value_names() {
        let s = schema();
        let code = s.intersection_code(&[ValueId(1), ValueId(2)]).unwrap();
        assert_eq!(s.intersection_label(code), "Woman×C");
    }

    #[test]
    fn schema_lookup_by_name() {
        let s = schema();
        let race = s.attribute_id("Race").unwrap();
        assert_eq!(s.attribute(race).unwrap().name(), "Race");
        assert!(s.attribute_id("Nationality").is_none());
    }

    #[test]
    fn serde_roundtrip() {
        let s = schema();
        let json = serde_json::to_string(&s).unwrap();
        let back: AttributeSchema = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
