//! Group definitions and precomputed group membership indexes.
//!
//! The paper defines two kinds of groups (Definitions 1 and 2):
//! * a *protected attribute group* `G(p_k : v)` — all candidates with value `v` for `p_k`;
//! * an *intersectional group* `InterG_j` — all candidates sharing the same combination of
//!   values across every protected attribute.
//!
//! Fairness metrics (FPR/ARP/IRP) need to answer "which group does this candidate belong
//! to?" millions of times, so [`GroupIndex`] precomputes, for every candidate, its value id
//! per attribute and its intersection code, plus the size of every group.

use serde::{Deserialize, Serialize};

use crate::attribute::AttributeId;
use crate::candidate::{CandidateDb, CandidateId};

/// Identifies a group: either one value of one protected attribute, or one intersection cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GroupKey {
    /// Protected attribute group `G(p_k : v_j)`: candidates with value index `value` for
    /// attribute `attribute`.
    Attribute {
        /// The protected attribute.
        attribute: AttributeId,
        /// Value index within the attribute's domain.
        value: usize,
    },
    /// Intersectional group `InterG_j`: candidates whose intersection code equals `code`.
    Intersection {
        /// Mixed-radix intersection code (see [`crate::AttributeSchema::intersection_code`]).
        code: usize,
    },
}

/// Per-candidate group membership for one "grouping axis" (one attribute or the intersection).
///
/// `membership[candidate] = group index within the axis`, and `sizes[g]` counts members.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupMembership {
    membership: Vec<usize>,
    sizes: Vec<usize>,
}

impl GroupMembership {
    fn new(membership: Vec<usize>, num_groups: usize) -> Self {
        let mut sizes = vec![0usize; num_groups];
        for &g in &membership {
            sizes[g] += 1;
        }
        Self { membership, sizes }
    }

    /// Group index of `candidate` along this axis.
    pub fn group_of(&self, candidate: CandidateId) -> usize {
        self.membership[candidate.index()]
    }

    /// Number of groups along this axis (including empty groups).
    pub fn num_groups(&self) -> usize {
        self.sizes.len()
    }

    /// Number of candidates in group `g`.
    pub fn group_size(&self, g: usize) -> usize {
        self.sizes[g]
    }

    /// Indexes of groups that actually contain at least one candidate.
    pub fn non_empty_groups(&self) -> impl Iterator<Item = usize> + '_ {
        self.sizes
            .iter()
            .enumerate()
            .filter(|(_, &s)| s > 0)
            .map(|(g, _)| g)
    }

    /// Raw membership slice: `membership[candidate index] = group index`.
    pub fn membership(&self) -> &[usize] {
        &self.membership
    }

    /// Total number of candidates.
    pub fn num_candidates(&self) -> usize {
        self.membership.len()
    }
}

/// Precomputed group membership for every protected attribute and for the intersection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupIndex {
    /// One membership table per protected attribute, in schema order.
    attributes: Vec<GroupMembership>,
    /// Membership table for the intersection.
    intersection: GroupMembership,
    num_candidates: usize,
}

impl GroupIndex {
    /// Builds the group index for a candidate database.
    pub fn new(db: &CandidateDb) -> Self {
        let n = db.len();
        let schema = db.schema();
        let mut attributes = Vec::with_capacity(schema.num_attributes());
        for (attr_id, attr) in schema.attributes() {
            let mut membership = Vec::with_capacity(n);
            for (_, cand) in db.candidates() {
                membership.push(cand.value(attr_id).expect("schema-validated").index());
            }
            attributes.push(GroupMembership::new(membership, attr.domain_size()));
        }
        let mut inter_membership = Vec::with_capacity(n);
        for (_, cand) in db.candidates() {
            inter_membership.push(cand.intersection());
        }
        let intersection =
            GroupMembership::new(inter_membership, schema.intersection_cardinality());
        Self {
            attributes,
            intersection,
            num_candidates: n,
        }
    }

    /// Number of candidates in the indexed database.
    pub fn num_candidates(&self) -> usize {
        self.num_candidates
    }

    /// Number of protected attributes.
    pub fn num_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// Membership table for one protected attribute.
    pub fn attribute(&self, attribute: AttributeId) -> &GroupMembership {
        &self.attributes[attribute.index()]
    }

    /// Membership table for the intersection.
    pub fn intersection(&self) -> &GroupMembership {
        &self.intersection
    }

    /// Iterates over `(AttributeId, &GroupMembership)` pairs.
    pub fn attributes(&self) -> impl Iterator<Item = (AttributeId, &GroupMembership)> {
        self.attributes
            .iter()
            .enumerate()
            .map(|(i, m)| (AttributeId(i as u16), m))
    }

    /// Members of a group identified by a [`GroupKey`].
    pub fn members(&self, key: GroupKey) -> Vec<CandidateId> {
        let (table, group) = self.resolve(key);
        table
            .membership()
            .iter()
            .enumerate()
            .filter(|(_, &g)| g == group)
            .map(|(i, _)| CandidateId(i as u32))
            .collect()
    }

    /// Size of the group identified by a [`GroupKey`].
    pub fn group_size(&self, key: GroupKey) -> usize {
        let (table, group) = self.resolve(key);
        table.group_size(group)
    }

    fn resolve(&self, key: GroupKey) -> (&GroupMembership, usize) {
        match key {
            GroupKey::Attribute { attribute, value } => {
                (&self.attributes[attribute.index()], value)
            }
            GroupKey::Intersection { code } => (&self.intersection, code),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::CandidateDbBuilder;

    fn db() -> CandidateDb {
        let mut b = CandidateDbBuilder::new();
        let gender = b.add_attribute("Gender", ["Man", "Woman"]).unwrap();
        let race = b.add_attribute("Race", ["A", "B", "C"]).unwrap();
        // 12 candidates, uniform over 2x3 = 6 intersection cells.
        for i in 0..12u32 {
            b.add_candidate(
                format!("c{i}"),
                [(gender, (i % 2) as usize), (race, (i % 3) as usize)],
            )
            .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn attribute_group_sizes_sum_to_n() {
        let db = db();
        let idx = GroupIndex::new(&db);
        for (_, table) in idx.attributes() {
            let total: usize = (0..table.num_groups()).map(|g| table.group_size(g)).sum();
            assert_eq!(total, db.len());
        }
        let inter = idx.intersection();
        let total: usize = (0..inter.num_groups()).map(|g| inter.group_size(g)).sum();
        assert_eq!(total, db.len());
    }

    #[test]
    fn membership_matches_candidate_values() {
        let db = db();
        let idx = GroupIndex::new(&db);
        let gender = db.schema().attribute_id("Gender").unwrap();
        for (id, cand) in db.candidates() {
            assert_eq!(
                idx.attribute(gender).group_of(id),
                cand.value(gender).unwrap().index()
            );
            assert_eq!(idx.intersection().group_of(id), cand.intersection());
        }
    }

    #[test]
    fn members_returns_exactly_group_candidates() {
        let db = db();
        let idx = GroupIndex::new(&db);
        let gender = db.schema().attribute_id("Gender").unwrap();
        let women = idx.members(GroupKey::Attribute {
            attribute: gender,
            value: 1,
        });
        assert_eq!(women.len(), 6);
        for id in women {
            assert_eq!(db.value_of(id, gender).unwrap().index(), 1);
        }
    }

    #[test]
    fn group_size_matches_members_len() {
        let db = db();
        let idx = GroupIndex::new(&db);
        for code in 0..db.schema().intersection_cardinality() {
            let key = GroupKey::Intersection { code };
            assert_eq!(idx.group_size(key), idx.members(key).len());
        }
    }

    #[test]
    fn non_empty_groups_skips_empty_cells() {
        // 3 candidates that only occupy some intersection cells.
        let mut b = CandidateDbBuilder::new();
        let g = b.add_attribute("G", ["x", "y"]).unwrap();
        let r = b.add_attribute("R", ["a", "b"]).unwrap();
        b.add_candidate("c0", [(g, 0), (r, 0)]).unwrap();
        b.add_candidate("c1", [(g, 0), (r, 0)]).unwrap();
        b.add_candidate("c2", [(g, 1), (r, 1)]).unwrap();
        let db = b.build().unwrap();
        let idx = GroupIndex::new(&db);
        let non_empty: Vec<usize> = idx.intersection().non_empty_groups().collect();
        assert_eq!(non_empty.len(), 2);
    }

    #[test]
    fn index_reports_dimensions() {
        let db = db();
        let idx = GroupIndex::new(&db);
        assert_eq!(idx.num_candidates(), 12);
        assert_eq!(idx.num_attributes(), 2);
        assert_eq!(idx.intersection().num_candidates(), 12);
    }
}
