//! # mani-ranking
//!
//! Foundation data model for the MANI-Rank reproduction: candidate databases with
//! multiple, multi-valued protected attributes; strict rankings (permutations);
//! pairwise decompositions; Kendall tau distances; and the precedence matrix used
//! by every consensus-ranking algorithm in the workspace.
//!
//! The types in this crate are deliberately "database-shaped": candidates are dense
//! integer ids into a [`CandidateDb`], protected attributes and their values are
//! interned into small integer ids, and group membership is precomputed into a
//! [`GroupIndex`] so that downstream fairness metrics are simple linear scans.
//!
//! ## Quick tour
//!
//! ```
//! use mani_ranking::{CandidateDbBuilder, Ranking};
//!
//! // Two protected attributes: Gender (3 values) and Race (2 values).
//! let mut builder = CandidateDbBuilder::new();
//! let gender = builder.add_attribute("Gender", ["Man", "Woman", "NonBinary"]).unwrap();
//! let race = builder.add_attribute("Race", ["A", "B"]).unwrap();
//! for i in 0..6 {
//!     builder
//!         .add_candidate(format!("cand-{i}"), [(gender, i % 3), (race, i % 2)])
//!         .unwrap();
//! }
//! let db = builder.build().unwrap();
//! assert_eq!(db.len(), 6);
//!
//! // A ranking is a strict permutation of all candidates.
//! let ranking = Ranking::identity(db.len());
//! assert_eq!(ranking.position_of(db.candidate_ids().next().unwrap()), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribute;
pub mod candidate;
pub mod error;
pub mod group;
pub mod kendall;
pub mod pairs;
pub mod parallel;
pub mod precedence;
pub mod profile;
pub mod ranking;

pub use attribute::{AttributeId, AttributeSchema, ProtectedAttribute, ValueId};
pub use candidate::{Candidate, CandidateDb, CandidateDbBuilder, CandidateId};
pub use error::RankingError;
pub use group::{GroupIndex, GroupKey, GroupMembership};
pub use kendall::{kendall_tau, kendall_tau_naive, normalized_kendall_tau};
pub use pairs::{mixed_pairs_for_group, total_mixed_pairs, total_pairs};
pub use parallel::{
    available_threads, kernel_counter_snapshot, run_parts, shard_ranges, KernelCounterSnapshot,
    Parallelism,
};
pub use precedence::PrecedenceMatrix;
pub use profile::RankingProfile;
pub use ranking::Ranking;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, RankingError>;
