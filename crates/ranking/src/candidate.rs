//! Candidate database: the set `X` of candidates with their protected attribute values.

use serde::{Deserialize, Serialize};

use crate::attribute::{AttributeId, AttributeSchema, ProtectedAttribute, ValueId};
use crate::error::RankingError;
use crate::Result;

/// Dense identifier of a candidate within a [`CandidateDb`].
///
/// Candidate ids are assigned in registration order starting at zero, so they can be
/// used directly as indexes into per-candidate arrays (positions, group membership, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CandidateId(pub u32);

impl CandidateId {
    /// The candidate id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for CandidateId {
    fn from(v: u32) -> Self {
        CandidateId(v)
    }
}

/// A single candidate: a display name plus one value per protected attribute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Candidate {
    name: String,
    values: Vec<ValueId>,
    intersection: usize,
}

impl Candidate {
    /// Display name supplied at registration time.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Value of the given protected attribute, `p_k(x_i)` in the paper.
    pub fn value(&self, attribute: AttributeId) -> Option<ValueId> {
        self.values.get(attribute.index()).copied()
    }

    /// All attribute values in schema order.
    pub fn values(&self) -> &[ValueId] {
        &self.values
    }

    /// Intersection code of the candidate, `Inter(x_i)` in the paper.
    pub fn intersection(&self) -> usize {
        self.intersection
    }
}

/// Builder for a [`CandidateDb`]; attributes must be declared before candidates.
#[derive(Debug, Default)]
pub struct CandidateDbBuilder {
    attributes: Vec<ProtectedAttribute>,
    candidates: Vec<(String, Vec<Option<ValueId>>)>,
}

impl CandidateDbBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a protected attribute and its value domain; returns its id.
    pub fn add_attribute(
        &mut self,
        name: impl Into<String>,
        values: impl IntoIterator<Item = impl Into<String>>,
    ) -> Result<AttributeId> {
        let attr = ProtectedAttribute::new(name, values)?;
        if self.attributes.iter().any(|a| a.name() == attr.name()) {
            return Err(RankingError::DuplicateAttribute(attr.name().to_string()));
        }
        self.attributes.push(attr);
        Ok(AttributeId((self.attributes.len() - 1) as u16))
    }

    /// Registers a candidate with explicit `(attribute, value index)` assignments.
    ///
    /// `value index` is the index into the attribute's declared domain.
    pub fn add_candidate(
        &mut self,
        name: impl Into<String>,
        assignments: impl IntoIterator<Item = (AttributeId, usize)>,
    ) -> Result<CandidateId> {
        let name = name.into();
        if self.candidates.iter().any(|(n, _)| *n == name) {
            return Err(RankingError::DuplicateCandidate(name));
        }
        let mut values: Vec<Option<ValueId>> = vec![None; self.attributes.len()];
        for (attr, value_index) in assignments {
            let Some(decl) = self.attributes.get(attr.index()) else {
                return Err(RankingError::UnknownAttribute(attr.index()));
            };
            if value_index >= decl.domain_size() {
                return Err(RankingError::UnknownValue {
                    attribute: decl.name().to_string(),
                    value_index,
                });
            }
            values[attr.index()] = Some(ValueId(value_index as u16));
        }
        self.candidates.push((name, values));
        Ok(CandidateId((self.candidates.len() - 1) as u32))
    }

    /// Registers a candidate with value *names* instead of indexes.
    pub fn add_candidate_named(
        &mut self,
        name: impl Into<String>,
        assignments: impl IntoIterator<Item = (AttributeId, impl AsRef<str>)>,
    ) -> Result<CandidateId> {
        let mut resolved = Vec::new();
        for (attr, value_name) in assignments {
            let Some(decl) = self.attributes.get(attr.index()) else {
                return Err(RankingError::UnknownAttribute(attr.index()));
            };
            let Some(value) = decl.value_id(value_name.as_ref()) else {
                return Err(RankingError::UnknownValue {
                    attribute: decl.name().to_string(),
                    value_index: usize::MAX,
                });
            };
            resolved.push((attr, value.index()));
        }
        self.add_candidate(name, resolved)
    }

    /// Finalises the database, validating that every candidate has every attribute set.
    pub fn build(self) -> Result<CandidateDb> {
        let schema = AttributeSchema::new(self.attributes)?;
        if self.candidates.is_empty() {
            return Err(RankingError::EmptyDatabase);
        }
        let mut candidates = Vec::with_capacity(self.candidates.len());
        for (name, values) in self.candidates {
            let mut resolved = Vec::with_capacity(schema.num_attributes());
            for (attr_id, attr) in schema.attributes() {
                match values.get(attr_id.index()).copied().flatten() {
                    Some(v) => resolved.push(v),
                    None => {
                        return Err(RankingError::MissingAttributeValue {
                            candidate: name,
                            attribute: attr.name().to_string(),
                        })
                    }
                }
            }
            let intersection = schema.intersection_code(&resolved)?;
            candidates.push(Candidate {
                name,
                values: resolved,
                intersection,
            });
        }
        Ok(CandidateDb { schema, candidates })
    }
}

/// The candidate database `X`: a schema of protected attributes plus all candidates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CandidateDb {
    schema: AttributeSchema,
    candidates: Vec<Candidate>,
}

impl CandidateDb {
    /// Number of candidates `n = |X|`.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// True if the database has no candidates (never true for a built database).
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// The protected attribute schema.
    pub fn schema(&self) -> &AttributeSchema {
        &self.schema
    }

    /// Candidate by id.
    pub fn candidate(&self, id: CandidateId) -> Result<&Candidate> {
        self.candidates
            .get(id.index())
            .ok_or(RankingError::CandidateOutOfRange {
                id: id.0,
                len: self.candidates.len(),
            })
    }

    /// Iterates over all candidate ids in registration order.
    pub fn candidate_ids(&self) -> impl Iterator<Item = CandidateId> + '_ {
        (0..self.candidates.len() as u32).map(CandidateId)
    }

    /// Iterates over `(CandidateId, &Candidate)` pairs.
    pub fn candidates(&self) -> impl Iterator<Item = (CandidateId, &Candidate)> {
        self.candidates
            .iter()
            .enumerate()
            .map(|(i, c)| (CandidateId(i as u32), c))
    }

    /// Looks up a candidate id by name (linear scan; intended for small examples/tests).
    pub fn candidate_by_name(&self, name: &str) -> Option<CandidateId> {
        self.candidates
            .iter()
            .position(|c| c.name() == name)
            .map(|i| CandidateId(i as u32))
    }

    /// Value of attribute `attribute` for candidate `id`.
    pub fn value_of(&self, id: CandidateId, attribute: AttributeId) -> Result<ValueId> {
        let candidate = self.candidate(id)?;
        candidate
            .value(attribute)
            .ok_or(RankingError::UnknownAttribute(attribute.index()))
    }

    /// Intersection code of candidate `id`.
    pub fn intersection_of(&self, id: CandidateId) -> Result<usize> {
        Ok(self.candidate(id)?.intersection())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_db() -> CandidateDb {
        let mut b = CandidateDbBuilder::new();
        let gender = b.add_attribute("Gender", ["Man", "Woman"]).unwrap();
        let race = b.add_attribute("Race", ["A", "B", "C"]).unwrap();
        for i in 0..6u32 {
            b.add_candidate(
                format!("c{i}"),
                [(gender, (i % 2) as usize), (race, (i % 3) as usize)],
            )
            .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let db = small_db();
        let ids: Vec<u32> = db.candidate_ids().map(|c| c.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(db.len(), 6);
        assert!(!db.is_empty());
    }

    #[test]
    fn builder_rejects_duplicate_candidates() {
        let mut b = CandidateDbBuilder::new();
        let g = b.add_attribute("G", ["x", "y"]).unwrap();
        b.add_candidate("same", [(g, 0)]).unwrap();
        let err = b.add_candidate("same", [(g, 1)]).unwrap_err();
        assert!(matches!(err, RankingError::DuplicateCandidate(_)));
    }

    #[test]
    fn builder_rejects_missing_values() {
        // A candidate that does not supply a value for every declared attribute is rejected
        // at build time.
        let mut b = CandidateDbBuilder::new();
        let g = b.add_attribute("G", ["x", "y"]).unwrap();
        let _r = b.add_attribute("R", ["a", "b"]).unwrap();
        b.add_candidate("c", [(g, 0)]).unwrap();
        let err = b.build().unwrap_err();
        assert!(matches!(err, RankingError::MissingAttributeValue { .. }));
    }

    #[test]
    fn builder_rejects_unknown_value_index() {
        let mut b = CandidateDbBuilder::new();
        let g = b.add_attribute("G", ["x", "y"]).unwrap();
        let err = b.add_candidate("c", [(g, 7)]).unwrap_err();
        assert!(matches!(err, RankingError::UnknownValue { .. }));
    }

    #[test]
    fn builder_rejects_empty_database() {
        let mut b = CandidateDbBuilder::new();
        b.add_attribute("G", ["x", "y"]).unwrap();
        assert!(matches!(b.build(), Err(RankingError::EmptyDatabase)));
    }

    #[test]
    fn named_assignment_resolves_values() {
        let mut b = CandidateDbBuilder::new();
        let g = b.add_attribute("Gender", ["Man", "Woman"]).unwrap();
        let id = b.add_candidate_named("alice", [(g, "Woman")]).unwrap();
        let db = b.build().unwrap();
        assert_eq!(db.value_of(id, g).unwrap().index(), 1);
    }

    #[test]
    fn intersection_codes_follow_schema() {
        let db = small_db();
        let schema = db.schema();
        for (id, cand) in db.candidates() {
            let expected = schema.intersection_code(cand.values()).unwrap();
            assert_eq!(db.intersection_of(id).unwrap(), expected);
        }
    }

    #[test]
    fn candidate_lookup_by_name() {
        let db = small_db();
        let id = db.candidate_by_name("c3").unwrap();
        assert_eq!(id.0, 3);
        assert!(db.candidate_by_name("nope").is_none());
        assert_eq!(db.candidate(id).unwrap().name(), "c3");
    }

    #[test]
    fn out_of_range_candidate_errors() {
        let db = small_db();
        assert!(matches!(
            db.candidate(CandidateId(99)),
            Err(RankingError::CandidateOutOfRange { .. })
        ));
    }
}
