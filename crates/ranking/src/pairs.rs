//! Pairwise decomposition utilities.
//!
//! MANI-Rank's positive-outcome model is pairwise (Section II-B of the paper): a ranking
//! over `n` candidates decomposes into `ω(X) = n(n-1)/2` pairs, and a group's treatment is
//! measured over its *mixed pairs* — pairs whose two candidates belong to different groups
//! along the grouping axis under consideration.

use crate::candidate::CandidateId;
use crate::group::GroupMembership;
use crate::ranking::Ranking;

/// Total number of candidate pairs in a ranking over `n` candidates: `ω(X) = n(n-1)/2`
/// (Equation 2 in the paper).
pub fn total_pairs(n: usize) -> u64 {
    let n = n as u64;
    n * n.saturating_sub(1) / 2
}

/// Number of mixed pairs involving a group of size `group_size` in a database of `n`
/// candidates: `ω_M(G, π) = |G| (|X| - |G|)` (Equation 3 in the paper).
pub fn mixed_pairs_for_group(group_size: usize, n: usize) -> u64 {
    (group_size as u64) * ((n - group_size) as u64)
}

/// Total number of mixed pairs for a grouping axis (Equation 4): all pairs minus the
/// within-group pairs of every group.
pub fn total_mixed_pairs(membership: &GroupMembership) -> u64 {
    let n = membership.num_candidates();
    let mut within = 0u64;
    for g in 0..membership.num_groups() {
        within += total_pairs(membership.group_size(g));
    }
    total_pairs(n) - within
}

/// Iterates over all ordered "favored" pairs `(a, b)` of a ranking where `a ≺ b`
/// (a ranked above b). There are exactly `ω(X)` such pairs.
pub fn favored_pairs(ranking: &Ranking) -> impl Iterator<Item = (CandidateId, CandidateId)> + '_ {
    let slice = ranking.as_slice();
    (0..slice.len()).flat_map(move |i| {
        let a = slice[i];
        slice[i + 1..].iter().map(move |&b| (a, b))
    })
}

/// Counts, for one candidate, how many candidates outside its group are ranked *below* it.
///
/// This is the per-candidate contribution to the FPR numerator. O(n) scan.
pub fn favored_mixed_pairs_of(
    ranking: &Ranking,
    membership: &GroupMembership,
    candidate: CandidateId,
) -> u64 {
    let my_group = membership.group_of(candidate);
    let my_pos = ranking.position_of(candidate);
    let mut count = 0u64;
    for pos in (my_pos + 1)..ranking.len() {
        let other = ranking.candidate_at(pos);
        if membership.group_of(other) != my_group {
            count += 1;
        }
    }
    count
}

/// Counts pairwise disagreements between two rankings restricted to a predicate over pairs.
///
/// Mostly a test/diagnostic helper; the production Kendall tau lives in [`crate::kendall`].
pub fn count_disagreements_where<F>(a: &Ranking, b: &Ranking, mut include: F) -> u64
where
    F: FnMut(CandidateId, CandidateId) -> bool,
{
    let mut count = 0u64;
    let n = a.len();
    for i in 0..n as u32 {
        for j in (i + 1)..n as u32 {
            let (ci, cj) = (CandidateId(i), CandidateId(j));
            if !include(ci, cj) {
                continue;
            }
            if a.prefers(ci, cj) != b.prefers(ci, cj) {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::CandidateDbBuilder;
    use crate::group::GroupIndex;

    fn db_and_index() -> (crate::CandidateDb, GroupIndex) {
        let mut b = CandidateDbBuilder::new();
        let g = b.add_attribute("G", ["x", "y"]).unwrap();
        for i in 0..6u32 {
            b.add_candidate(format!("c{i}"), [(g, (i % 2) as usize)])
                .unwrap();
        }
        let db = b.build().unwrap();
        let idx = GroupIndex::new(&db);
        (db, idx)
    }

    #[test]
    fn total_pairs_small_values() {
        assert_eq!(total_pairs(0), 0);
        assert_eq!(total_pairs(1), 0);
        assert_eq!(total_pairs(2), 1);
        assert_eq!(total_pairs(5), 10);
        assert_eq!(total_pairs(90), 90 * 89 / 2);
    }

    #[test]
    fn mixed_pairs_formula() {
        assert_eq!(mixed_pairs_for_group(3, 10), 21);
        assert_eq!(mixed_pairs_for_group(0, 10), 0);
        assert_eq!(mixed_pairs_for_group(10, 10), 0);
    }

    #[test]
    fn total_mixed_pairs_binary_balanced() {
        let (_db, idx) = db_and_index();
        let gender = crate::AttributeId(0);
        // 6 candidates, groups of 3 and 3: mixed pairs = 15 - 3 - 3 = 9 = 3*3.
        assert_eq!(total_mixed_pairs(idx.attribute(gender)), 9);
    }

    #[test]
    fn favored_pairs_count_is_omega() {
        let r = Ranking::identity(7);
        assert_eq!(favored_pairs(&r).count() as u64, total_pairs(7));
        // every emitted pair has the first element above the second
        for (a, b) in favored_pairs(&r) {
            assert!(r.prefers(a, b));
        }
    }

    #[test]
    fn favored_mixed_pairs_top_and_bottom() {
        let (_db, idx) = db_and_index();
        let gender = crate::AttributeId(0);
        let membership = idx.attribute(gender);
        // order: 0(x) 1(y) 2(x) 3(y) 4(x) 5(y)
        let r = Ranking::identity(6);
        // candidate 0 (group x, top): members of y below = 3
        assert_eq!(favored_mixed_pairs_of(&r, membership, CandidateId(0)), 3);
        // candidate 5 (group y, bottom): nobody below
        assert_eq!(favored_mixed_pairs_of(&r, membership, CandidateId(5)), 0);
        // candidate 3 (group y): below are 4(x),5(y) -> 1 mixed
        assert_eq!(favored_mixed_pairs_of(&r, membership, CandidateId(3)), 1);
    }

    #[test]
    fn count_disagreements_where_full_and_filtered() {
        let a = Ranking::identity(4);
        let b = a.reversed();
        // reversed ranking disagrees on every pair
        assert_eq!(
            count_disagreements_where(&a, &b, |_, _| true),
            total_pairs(4)
        );
        // excluding pairs containing candidate 0 leaves C(3,2)=3 pairs
        assert_eq!(
            count_disagreements_where(&a, &b, |x, y| x.0 != 0 && y.0 != 0),
            3
        );
        // identical rankings never disagree
        assert_eq!(count_disagreements_where(&a, &a, |_, _| true), 0);
    }
}
