//! Structured logfmt logging to stderr.
//!
//! One line per event: `ts=<ISO-8601> level=<level> target=<subsystem>
//! msg=<message> key=value ...`. Values containing spaces, quotes, or `=`
//! are quoted with `\"`/`\\` escapes so lines stay machine-parseable.
//!
//! The global logger is created on first use, reading its level from the
//! `MANI_LOG` environment variable (`off`, `error`, `warn`, `info`, `debug`,
//! `trace`; default `info`). `--log-level` on the CLI overrides it via
//! [`set_level`]. The level check is a single relaxed atomic load, so
//! disabled [`debug!`](crate::debug)- and trace-level call sites cost
//! nothing beyond it —
//! the macros only format fields after the check passes. Emission itself
//! serializes on a mutexed writer handle, keeping concurrent lines whole.

use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or request-fatal conditions.
    Error = 1,
    /// Degraded but continuing (rejected connections, malformed requests).
    Warn = 2,
    /// Lifecycle events (startup, shutdown, configuration).
    Info = 3,
    /// Per-request access lines and cache decisions.
    Debug = 4,
    /// Per-phase spam; only for chasing a specific bug.
    Trace = 5,
}

impl Level {
    /// Parses a level name (case-insensitive). `off` maps to `None`,
    /// silencing everything; unknown names are rejected.
    pub fn parse(name: &str) -> Option<Option<Level>> {
        match name.to_ascii_lowercase().as_str() {
            "off" | "none" => Some(None),
            "error" => Some(Some(Level::Error)),
            "warn" | "warning" => Some(Some(Level::Warn)),
            "info" => Some(Some(Level::Info)),
            "debug" => Some(Some(Level::Debug)),
            "trace" => Some(Some(Level::Trace)),
            _ => None,
        }
    }

    /// The lower-case label rendered into log lines.
    pub fn label(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

/// Where a [`Logger`] writes: stderr in production, a shared in-memory
/// buffer under test.
enum Sink {
    Stderr,
    Buffer(Arc<Mutex<Vec<u8>>>),
}

/// A level-filtered logfmt writer. The process-wide instance is reached via
/// the [`error!`](crate::error)/[`warn!`](crate::warn)/[`info!`](crate::info)/
/// [`debug!`](crate::debug) macros; standalone instances exist for tests.
pub struct Logger {
    /// Maximum enabled level as a `u8`; `0` disables all output.
    level: AtomicU8,
    sink: Mutex<Sink>,
}

impl std::fmt::Debug for Logger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Logger")
            .field("level", &self.level.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Logger {
    /// A stderr logger at the given level (`None` = silent).
    pub fn new(level: Option<Level>) -> Self {
        Self {
            level: AtomicU8::new(level.map_or(0, |l| l as u8)),
            sink: Mutex::new(Sink::Stderr),
        }
    }

    /// A logger writing into a shared buffer, for asserting on output.
    pub fn with_buffer(level: Option<Level>, buffer: Arc<Mutex<Vec<u8>>>) -> Self {
        Self {
            level: AtomicU8::new(level.map_or(0, |l| l as u8)),
            sink: Mutex::new(Sink::Buffer(buffer)),
        }
    }

    /// Changes the maximum enabled level (`None` = silent).
    pub fn set_level(&self, level: Option<Level>) {
        self.level
            .store(level.map_or(0, |l| l as u8), Ordering::Relaxed);
    }

    /// Whether a record at `level` would be emitted. One relaxed load.
    pub fn enabled(&self, level: Level) -> bool {
        level as u8 <= self.level.load(Ordering::Relaxed)
    }

    /// Redirects output into a shared buffer (tests only; the capture is
    /// process-global when called on the global logger).
    pub fn capture(&self, buffer: Arc<Mutex<Vec<u8>>>) {
        *self.sink.lock().expect("log sink poisoned") = Sink::Buffer(buffer);
    }

    /// Emits one logfmt line. Call sites should check [`Logger::enabled`]
    /// first (the macros do) so field values are never formatted for
    /// disabled levels; this re-checks for correctness.
    pub fn log(&self, level: Level, target: &str, msg: &str, fields: &[(&str, String)]) {
        if !self.enabled(level) {
            return;
        }
        let mut line = String::with_capacity(96);
        line.push_str("ts=");
        line.push_str(&format_timestamp(SystemTime::now()));
        line.push_str(" level=");
        line.push_str(level.label());
        line.push_str(" target=");
        push_value(&mut line, target);
        line.push_str(" msg=");
        push_value(&mut line, msg);
        for (key, value) in fields {
            line.push(' ');
            line.push_str(key);
            line.push('=');
            push_value(&mut line, value);
        }
        line.push('\n');
        let mut sink = self.sink.lock().expect("log sink poisoned");
        match &mut *sink {
            Sink::Stderr => {
                let _ = std::io::stderr().write_all(line.as_bytes());
            }
            Sink::Buffer(buffer) => {
                buffer
                    .lock()
                    .expect("log buffer poisoned")
                    .extend_from_slice(line.as_bytes());
            }
        }
    }
}

/// The process-wide logger, created on first use from `MANI_LOG`
/// (default `info`).
pub fn global() -> &'static Logger {
    static GLOBAL: OnceLock<Logger> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let level = std::env::var("MANI_LOG")
            .ok()
            .and_then(|raw| Level::parse(&raw))
            .unwrap_or(Some(Level::Info));
        Logger::new(level)
    })
}

/// Sets the global logger's level (e.g. from a `--log-level` flag).
pub fn set_level(level: Option<Level>) {
    global().set_level(level);
}

/// Appends a logfmt value, quoting when it contains characters that would
/// break `key=value` tokenization.
fn push_value(line: &mut String, value: &str) {
    let needs_quotes = value.is_empty()
        || value
            .chars()
            .any(|c| c == ' ' || c == '"' || c == '=' || c == '\\' || c.is_control());
    if !needs_quotes {
        line.push_str(value);
        return;
    }
    line.push('"');
    for c in value.chars() {
        match c {
            '"' => line.push_str("\\\""),
            '\\' => line.push_str("\\\\"),
            '\n' => line.push_str("\\n"),
            '\r' => line.push_str("\\r"),
            '\t' => line.push_str("\\t"),
            other if other.is_control() => {
                line.push_str(&format!("\\u{:04x}", other as u32));
            }
            other => line.push(other),
        }
    }
    line.push('"');
}

/// UTC ISO-8601 timestamp with millisecond precision, e.g.
/// `2026-08-07T14:03:25.017Z`. Std-only (no chrono): civil date from days
/// via Howard Hinnant's algorithm.
pub fn format_timestamp(now: SystemTime) -> String {
    let since_epoch = now.duration_since(UNIX_EPOCH).unwrap_or(Duration::ZERO);
    let secs = since_epoch.as_secs();
    let millis = since_epoch.subsec_millis();
    let (year, month, day) = civil_from_days((secs / 86_400) as i64);
    let tod = secs % 86_400;
    format!(
        "{year:04}-{month:02}-{day:02}T{:02}:{:02}:{:02}.{millis:03}Z",
        tod / 3_600,
        (tod % 3_600) / 60,
        tod % 60
    )
}

/// Gregorian `(year, month, day)` for a day count since 1970-01-01.
fn civil_from_days(days: i64) -> (i64, u32, u32) {
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64; // day of era [0, 146096]
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let year = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // day of year, Mar 1 = 0
    let mp = (5 * doy + 2) / 153;
    let day = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let month = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if month <= 2 { year + 1 } else { year }, month, day)
}

/// Emits one record through the global logger. Prefer the leveled macros.
#[macro_export]
macro_rules! logmsg {
    ($level:expr, $target:expr, $msg:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        let level = $level;
        let logger = $crate::log::global();
        if logger.enabled(level) {
            logger.log(
                level,
                $target,
                &$msg.to_string(),
                &[$((stringify!($key), $value.to_string())),*],
            );
        }
    }};
}

/// Logs at [`Level::Error`]: `error!("serve", "bind failed", error = e)`.
#[macro_export]
macro_rules! error {
    ($target:expr, $msg:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::logmsg!($crate::Level::Error, $target, $msg $(, $key = $value)*)
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($target:expr, $msg:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::logmsg!($crate::Level::Warn, $target, $msg $(, $key = $value)*)
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($target:expr, $msg:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::logmsg!($crate::Level::Info, $target, $msg $(, $key = $value)*)
    };
}

/// Logs at [`Level::Debug`] (the access-log level).
#[macro_export]
macro_rules! debug {
    ($target:expr, $msg:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::logmsg!($crate::Level::Debug, $target, $msg $(, $key = $value)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn captured(logger: &Logger, buffer: &Arc<Mutex<Vec<u8>>>) -> String {
        let _ = logger;
        String::from_utf8(buffer.lock().unwrap().clone()).unwrap()
    }

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(Level::parse("info"), Some(Some(Level::Info)));
        assert_eq!(Level::parse("WARN"), Some(Some(Level::Warn)));
        assert_eq!(Level::parse("off"), Some(None));
        assert_eq!(Level::parse("banana"), None);
        assert!(Level::Error < Level::Trace);
    }

    #[test]
    fn disabled_levels_emit_nothing() {
        let buffer = Arc::new(Mutex::new(Vec::new()));
        let logger = Logger::with_buffer(Some(Level::Warn), Arc::clone(&buffer));
        logger.log(Level::Debug, "t", "hidden", &[]);
        logger.log(Level::Warn, "t", "shown", &[]);
        let out = captured(&logger, &buffer);
        assert!(!out.contains("hidden"));
        assert!(out.contains("level=warn"));
        assert!(out.contains("msg=shown"));
    }

    #[test]
    fn fields_are_quoted_when_needed() {
        let buffer = Arc::new(Mutex::new(Vec::new()));
        let logger = Logger::with_buffer(Some(Level::Info), Arc::clone(&buffer));
        logger.log(
            Level::Info,
            "http",
            "request done",
            &[
                ("path", "/v1/stats".to_string()),
                ("note", "a \"quoted\" = value".to_string()),
                ("empty", String::new()),
            ],
        );
        let out = captured(&logger, &buffer);
        assert!(out.contains("msg=\"request done\""));
        assert!(out.contains("path=/v1/stats"));
        assert!(out.contains("note=\"a \\\"quoted\\\" = value\""));
        assert!(out.contains("empty=\"\""));
        assert!(out.ends_with('\n'));
    }

    #[test]
    fn timestamps_are_iso_8601() {
        let ts = format_timestamp(UNIX_EPOCH + Duration::from_millis(1_700_000_000_123));
        assert_eq!(ts, "2023-11-14T22:13:20.123Z");
        assert_eq!(format_timestamp(UNIX_EPOCH), "1970-01-01T00:00:00.000Z");
        // Leap-year day.
        let leap = UNIX_EPOCH + Duration::from_secs(951_782_400); // 2000-02-29
        assert!(format_timestamp(leap).starts_with("2000-02-29T"));
    }

    #[test]
    fn silent_logger_drops_everything() {
        let buffer = Arc::new(Mutex::new(Vec::new()));
        let logger = Logger::with_buffer(None, Arc::clone(&buffer));
        assert!(!logger.enabled(Level::Error));
        logger.log(Level::Error, "t", "m", &[]);
        assert!(buffer.lock().unwrap().is_empty());
    }
}
