//! Per-job phase timelines fed by RAII span timers.
//!
//! A [`TraceTimeline`] is created when a request or job is born and records
//! named phases (`queue_wait`, `cache_lookup`, `matrix_build`, `solve`,
//! `render`, …) as `(start, duration)` offsets from its origin instant.
//! Phases **merge by name**: recording `solve` twice accumulates duration
//! and bumps a count instead of growing the list, so a batch job's timeline
//! stays bounded and every phase appears exactly once in the rendered trace.
//!
//! Recording is a short mutex hold over a tiny vec (jobs have ~6 phases);
//! timelines are shared as `Arc<TraceTimeline>` between the worker running
//! the job and the handler rendering `GET /v1/jobs/{id}/trace`.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One named phase: earliest start, accumulated duration, merge count.
#[derive(Debug, Clone)]
struct PhaseRecord {
    name: &'static str,
    start_ns: u64,
    duration_ns: u64,
    count: u64,
}

/// Point-in-time copy of one merged phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSnapshot {
    /// Phase name (static: phases are compile-time known).
    pub name: &'static str,
    /// Nanoseconds from the timeline origin to the phase's earliest start.
    pub start_ns: u64,
    /// Accumulated nanoseconds across all merged recordings.
    pub duration_ns: u64,
    /// How many recordings merged into this phase.
    pub count: u64,
}

/// A phase timeline anchored at an origin instant.
#[derive(Debug)]
pub struct TraceTimeline {
    origin: Instant,
    phases: Mutex<Vec<PhaseRecord>>,
}

impl TraceTimeline {
    /// A fresh timeline anchored at "now".
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
            phases: Mutex::new(Vec::new()),
        }
    }

    /// The instant the timeline was created.
    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// Wall time since the timeline was created.
    pub fn age(&self) -> Duration {
        self.origin.elapsed()
    }

    /// Records one phase occurrence, merging into an existing record of the
    /// same name (duration accumulates, start keeps the earliest).
    pub fn record(&self, name: &'static str, start: Instant, duration: Duration) {
        let start_ns = saturating_ns(start.saturating_duration_since(self.origin));
        let duration_ns = saturating_ns(duration);
        let mut phases = self.phases.lock().expect("trace phases poisoned");
        if let Some(existing) = phases.iter_mut().find(|p| p.name == name) {
            existing.start_ns = existing.start_ns.min(start_ns);
            existing.duration_ns = existing.duration_ns.saturating_add(duration_ns);
            existing.count += 1;
        } else {
            phases.push(PhaseRecord {
                name,
                start_ns,
                duration_ns,
                count: 1,
            });
        }
    }

    /// Records a phase that ran from the origin until now (e.g. queue wait,
    /// which starts when the timeline is born).
    pub fn record_since_origin(&self, name: &'static str) {
        self.record(name, self.origin, self.origin.elapsed());
    }

    /// Copies out the merged phases in first-recorded order.
    pub fn snapshot(&self) -> Vec<PhaseSnapshot> {
        self.phases
            .lock()
            .expect("trace phases poisoned")
            .iter()
            .map(|p| PhaseSnapshot {
                name: p.name,
                start_ns: p.start_ns,
                duration_ns: p.duration_ns,
                count: p.count,
            })
            .collect()
    }

    /// The latest phase end (`start + duration`) in nanoseconds from the
    /// origin — the traced span of the timeline. Phases that ran in parallel
    /// may sum to more than this.
    pub fn span_ns(&self) -> u64 {
        self.phases
            .lock()
            .expect("trace phases poisoned")
            .iter()
            .map(|p| p.start_ns.saturating_add(p.duration_ns))
            .max()
            .unwrap_or(0)
    }
}

impl Default for TraceTimeline {
    fn default() -> Self {
        Self::new()
    }
}

fn saturating_ns(duration: Duration) -> u64 {
    duration.as_nanos().min(u128::from(u64::MAX)) as u64
}

/// RAII phase timer: records `name` into the timeline when dropped.
///
/// ```
/// use mani_obs::{Span, TraceTimeline};
/// let timeline = TraceTimeline::new();
/// {
///     let _span = Span::enter(&timeline, "matrix_build");
///     // ... work ...
/// } // recorded here
/// assert_eq!(timeline.snapshot()[0].name, "matrix_build");
/// ```
#[derive(Debug)]
pub struct Span<'a> {
    timeline: &'a TraceTimeline,
    name: &'static str,
    started: Instant,
}

impl<'a> Span<'a> {
    /// Starts timing `name` against `timeline`.
    pub fn enter(timeline: &'a TraceTimeline, name: &'static str) -> Self {
        Self {
            timeline,
            name,
            started: Instant::now(),
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.timeline
            .record(self.name, self.started, self.started.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_drop_and_merge_by_name() {
        let timeline = TraceTimeline::new();
        {
            let _a = Span::enter(&timeline, "solve");
        }
        {
            let _b = Span::enter(&timeline, "solve");
        }
        {
            let _c = Span::enter(&timeline, "render");
        }
        let phases = timeline.snapshot();
        assert_eq!(phases.len(), 2, "solve merged: {phases:?}");
        let solve = phases.iter().find(|p| p.name == "solve").unwrap();
        assert_eq!(solve.count, 2);
        assert_eq!(phases.iter().filter(|p| p.name == "render").count(), 1);
    }

    #[test]
    fn sequential_phases_sum_to_at_most_span() {
        let timeline = TraceTimeline::new();
        for name in ["queue_wait", "solve", "render"] {
            let _span = Span::enter(&timeline, name);
            std::thread::sleep(Duration::from_millis(2));
        }
        let phases = timeline.snapshot();
        let total: u64 = phases.iter().map(|p| p.duration_ns).sum();
        assert!(total > 0);
        assert!(
            total <= timeline.span_ns(),
            "sequential phases exceed span: {total} > {}",
            timeline.span_ns()
        );
        assert!(timeline.span_ns() <= saturating_ns(timeline.age()));
    }

    #[test]
    fn record_since_origin_starts_at_zero() {
        let timeline = TraceTimeline::new();
        std::thread::sleep(Duration::from_millis(1));
        timeline.record_since_origin("queue_wait");
        let phases = timeline.snapshot();
        assert_eq!(phases[0].start_ns, 0);
        assert!(phases[0].duration_ns >= 1_000_000);
    }
}
