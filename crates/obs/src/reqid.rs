//! Request-id acceptance and generation.
//!
//! Every HTTP exchange gets an id: a well-formed incoming `x-request-id`
//! header is accepted verbatim (so upstream proxies and retrying clients can
//! correlate), anything else gets a generated `req-<seed>-<n>` id unique
//! within the process. The id is echoed on the response, written into
//! access-log lines, and stamped onto async job records so one grep follows
//! a request from socket to solver.

use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Longest accepted incoming id; longer values are replaced, not truncated,
/// so an id is always either the client's exactly or clearly server-minted.
pub const MAX_REQUEST_ID_LEN: usize = 64;

/// Per-process entropy for generated ids, so ids from different server
/// processes don't collide in shared logs.
fn process_seed() -> u32 {
    static SEED: OnceLock<u32> = OnceLock::new();
    *SEED.get_or_init(|| {
        // RandomState is seeded per-process; hashing the pid through it
        // yields a stable-in-process, distinct-across-process tag.
        let mut hasher = std::collections::hash_map::RandomState::new().build_hasher();
        hasher.write_u32(std::process::id());
        hasher.finish() as u32
    })
}

/// Mints a fresh process-unique request id, e.g. `req-9f21c3aa-42`.
pub fn fresh_request_id() -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    format!("req-{:08x}-{n}", process_seed())
}

/// Accepts an incoming id iff it is 1..=[`MAX_REQUEST_ID_LEN`] chars of
/// ASCII alphanumerics, `-`, `_`, or `.` — safe to echo into headers and
/// logfmt lines unquoted.
pub fn sanitize_request_id(raw: &str) -> Option<&str> {
    let ok = !raw.is_empty()
        && raw.len() <= MAX_REQUEST_ID_LEN
        && raw
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.');
    ok.then_some(raw)
}

/// The id for a request: the sanitized incoming header value, or a fresh
/// generated id when the header is absent or malformed.
pub fn request_id_from_header(header: Option<&str>) -> String {
    header
        .and_then(sanitize_request_id)
        .map(str::to_string)
        .unwrap_or_else(fresh_request_id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_ids_are_unique_and_well_formed() {
        let a = fresh_request_id();
        let b = fresh_request_id();
        assert_ne!(a, b);
        assert!(a.starts_with("req-"));
        assert!(sanitize_request_id(&a).is_some(), "{a}");
    }

    #[test]
    fn sanitization_accepts_proxy_style_ids() {
        assert_eq!(sanitize_request_id("abc-123_DEF.7"), Some("abc-123_DEF.7"));
        assert_eq!(sanitize_request_id(""), None);
        assert_eq!(sanitize_request_id("has space"), None);
        assert_eq!(sanitize_request_id("quote\"me"), None);
        assert_eq!(sanitize_request_id("new\nline"), None);
        assert_eq!(sanitize_request_id(&"x".repeat(65)), None);
        assert_eq!(sanitize_request_id(&"x".repeat(64)).map(str::len), Some(64));
    }

    #[test]
    fn header_fallback_generates() {
        assert_eq!(request_id_from_header(Some("client-1")), "client-1");
        assert!(request_id_from_header(None).starts_with("req-"));
        assert!(request_id_from_header(Some("bad id")).starts_with("req-"));
    }
}
