//! Bounded worst-N ring of slow requests.
//!
//! [`SlowRing`] keeps the `capacity` slowest requests seen so far, each with
//! its request id, endpoint, status, and phase breakdown — enough to answer
//! "what were the worst requests lately and where did they spend their
//! time?" straight off `/v1/stats` without log archaeology. Insertion is a
//! short mutex hold; the ring is tiny (default capacity 16) so snapshotting
//! is cheap.

use std::sync::Mutex;

/// One slow request: identity plus phase breakdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowEntry {
    /// The request's `x-request-id` (accepted or generated).
    pub request_id: String,
    /// Metrics endpoint label (`consensus`, `jobs`, …).
    pub endpoint: &'static str,
    /// Human-readable target, e.g. `POST /v1/consensus`.
    pub target: String,
    /// Response status code.
    pub status: u16,
    /// End-to-end duration in nanoseconds.
    pub duration_ns: u64,
    /// `(phase name, accumulated nanoseconds)` pairs in recorded order.
    pub phases: Vec<(&'static str, u64)>,
}

/// A bounded collection of the worst requests by duration.
#[derive(Debug)]
pub struct SlowRing {
    capacity: usize,
    entries: Mutex<Vec<SlowEntry>>,
}

impl SlowRing {
    /// An empty ring keeping at most `capacity` entries (0 disables it).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: Mutex::new(Vec::with_capacity(capacity.min(64))),
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offers one request to the ring; kept only while it ranks among the
    /// `capacity` slowest seen.
    pub fn record(&self, entry: SlowEntry) {
        if self.capacity == 0 {
            return;
        }
        let mut entries = self.entries.lock().expect("slow ring poisoned");
        if entries.len() < self.capacity {
            entries.push(entry);
            entries.sort_by_key(|kept| std::cmp::Reverse(kept.duration_ns));
            return;
        }
        // Full: replace the fastest kept entry if this one is slower.
        let last = entries.len() - 1;
        if entry.duration_ns > entries[last].duration_ns {
            entries[last] = entry;
            entries.sort_by_key(|kept| std::cmp::Reverse(kept.duration_ns));
        }
    }

    /// The kept entries, slowest first.
    pub fn snapshot(&self) -> Vec<SlowEntry> {
        self.entries.lock().expect("slow ring poisoned").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: &str, duration_ns: u64) -> SlowEntry {
        SlowEntry {
            request_id: id.to_string(),
            endpoint: "consensus",
            target: "POST /v1/consensus".to_string(),
            status: 200,
            duration_ns,
            phases: vec![("solve", duration_ns / 2)],
        }
    }

    #[test]
    fn keeps_the_worst_n_sorted() {
        let ring = SlowRing::new(3);
        for (id, d) in [("a", 10), ("b", 50), ("c", 30), ("d", 40), ("e", 5)] {
            ring.record(entry(id, d));
        }
        let kept = ring.snapshot();
        let ids: Vec<&str> = kept.iter().map(|e| e.request_id.as_str()).collect();
        assert_eq!(ids, ["b", "d", "c"], "{kept:?}");
    }

    #[test]
    fn zero_capacity_disables() {
        let ring = SlowRing::new(0);
        ring.record(entry("a", 10));
        assert!(ring.snapshot().is_empty());
    }
}
