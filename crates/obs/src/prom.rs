//! Prometheus text-exposition (version 0.0.4) rendering.
//!
//! [`PromWriter`] builds the body of `GET /metrics`: `# HELP`/`# TYPE`
//! headers followed by samples, with histograms expanded into cumulative
//! `_bucket{le="..."}` series plus `_sum` and `_count`. The writer takes
//! *per-slot* bucket counts (the layout the serve-side atomic histograms
//! keep) and does the cumulative conversion itself, so callers can't get
//! the monotonicity invariant wrong.

use std::fmt::Write as _;

/// Streaming builder for one metrics exposition body.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// An empty exposition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the `# HELP` and `# TYPE` lines for a metric family. Must be
    /// called once per family, before its samples.
    pub fn family(&mut self, name: &str, kind: &str, help: &str) {
        let _ = writeln!(self.out, "# HELP {name} {}", escape_help(help));
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Writes one sample line with optional labels.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        self.push_labels(labels);
        self.out.push(' ');
        self.out.push_str(&format_value(value));
        self.out.push('\n');
    }

    /// Convenience: header plus single unlabeled sample for a counter.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.family(name, "counter", help);
        self.sample(name, &[], value as f64);
    }

    /// Convenience: header plus single unlabeled sample for a gauge.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.family(name, "gauge", help);
        self.sample(name, &[], value);
    }

    /// Expands one histogram series: cumulative `_bucket` lines for every
    /// bound plus `+Inf`, then `_sum` and `_count`. `slot_counts` holds
    /// per-slot (non-cumulative) counts, one per bound plus a final overflow
    /// slot. Call [`PromWriter::family`] for `name` (type `histogram`) once
    /// before the first series; several label sets may share the family.
    pub fn histogram(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
        slot_counts: &[u64],
        sum: f64,
    ) {
        debug_assert_eq!(slot_counts.len(), bounds.len() + 1, "overflow slot");
        let mut cumulative = 0u64;
        for (index, bound) in bounds.iter().enumerate() {
            cumulative += slot_counts.get(index).copied().unwrap_or(0);
            let le = format_value(*bound);
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            with_le.push(("le", &le));
            self.sample(&format!("{name}_bucket"), &with_le, cumulative as f64);
        }
        cumulative += slot_counts.last().copied().unwrap_or(0);
        let mut with_inf: Vec<(&str, &str)> = labels.to_vec();
        with_inf.push(("le", "+Inf"));
        self.sample(&format!("{name}_bucket"), &with_inf, cumulative as f64);
        self.sample(&format!("{name}_sum"), labels, sum);
        self.sample(&format!("{name}_count"), labels, cumulative as f64);
    }

    /// The finished exposition body.
    pub fn finish(self) -> String {
        self.out
    }

    fn push_labels(&mut self, labels: &[(&str, &str)]) {
        if labels.is_empty() {
            return;
        }
        self.out.push('{');
        for (index, (key, value)) in labels.iter().enumerate() {
            if index > 0 {
                self.out.push(',');
            }
            self.out.push_str(key);
            self.out.push_str("=\"");
            for c in value.chars() {
                match c {
                    '\\' => self.out.push_str("\\\\"),
                    '"' => self.out.push_str("\\\""),
                    '\n' => self.out.push_str("\\n"),
                    other => self.out.push(other),
                }
            }
            self.out.push('"');
        }
        self.out.push('}');
    }
}

/// Renders a sample value: integral values print without a decimal point,
/// everything else in plain decimal notation.
fn format_value(value: f64) -> String {
    if value.fract() == 0.0 && value.abs() < 9.0e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render() {
        let mut writer = PromWriter::new();
        writer.counter("mani_requests_total", "Requests served.", 42);
        writer.gauge("mani_uptime_seconds", "Uptime.", 1.5);
        let out = writer.finish();
        assert!(out.contains("# HELP mani_requests_total Requests served.\n"));
        assert!(out.contains("# TYPE mani_requests_total counter\n"));
        assert!(out.contains("\nmani_requests_total 42\n"));
        assert!(out.contains("mani_uptime_seconds 1.5\n"));
    }

    #[test]
    fn histograms_are_cumulative_with_inf_and_count() {
        let mut writer = PromWriter::new();
        writer.family("mani_latency_seconds", "histogram", "Latency.");
        writer.histogram(
            "mani_latency_seconds",
            &[("endpoint", "consensus")],
            &[0.001, 0.01, 0.1],
            &[5, 3, 0, 2], // per-slot, last = overflow
            0.75,
        );
        let out = writer.finish();
        assert!(
            out.contains("mani_latency_seconds_bucket{endpoint=\"consensus\",le=\"0.001\"} 5\n")
        );
        assert!(out.contains("mani_latency_seconds_bucket{endpoint=\"consensus\",le=\"0.01\"} 8\n"));
        assert!(out.contains("mani_latency_seconds_bucket{endpoint=\"consensus\",le=\"0.1\"} 8\n"));
        assert!(
            out.contains("mani_latency_seconds_bucket{endpoint=\"consensus\",le=\"+Inf\"} 10\n")
        );
        assert!(out.contains("mani_latency_seconds_sum{endpoint=\"consensus\"} 0.75\n"));
        assert!(out.contains("mani_latency_seconds_count{endpoint=\"consensus\"} 10\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut writer = PromWriter::new();
        writer.sample("m", &[("path", "a\"b\\c")], 1.0);
        assert_eq!(writer.finish(), "m{path=\"a\\\"b\\\\c\"} 1\n");
    }
}
