//! Std-only observability primitives shared by `mani-engine` and `mani-serve`.
//!
//! Four small, dependency-free pieces:
//!
//! * [`log`] — a structured [logfmt](https://brandur.org/logfmt) logger
//!   writing to stderr, level-filtered via the `MANI_LOG` environment
//!   variable or [`set_level`], with [`error!`], [`warn!`], [`info!`],
//!   [`debug!`] macros that skip field formatting entirely when the level is
//!   disabled.
//! * [`trace`] — [`TraceTimeline`], a per-job phase timeline fed by RAII
//!   [`Span`] timers (`queue_wait`, `cache_lookup`, `matrix_build`, `solve`,
//!   `render`, …) cheap enough to leave on in production.
//! * [`ring`] — [`SlowRing`], a bounded worst-N ring of slow requests with
//!   their request id and phase breakdown, surfaced at `/v1/stats`.
//! * [`prom`] — [`PromWriter`], a Prometheus text-exposition (version 0.0.4)
//!   renderer for counters, gauges, and cumulative `_bucket`/`_sum`/`_count`
//!   histograms, backing `GET /metrics`.
//!
//! Request correlation lives in [`reqid`]: accept a well-formed incoming
//! `x-request-id` or mint a fresh process-unique one, echo it on every
//! response, and stamp it into access-log lines and job records.
//!
//! ```
//! use mani_obs::{Span, TraceTimeline};
//!
//! let timeline = TraceTimeline::new();
//! {
//!     let _span = Span::enter(&timeline, "solve");
//!     // ... work ...
//! }
//! assert_eq!(timeline.snapshot().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod log;
pub mod prom;
pub mod reqid;
pub mod ring;
pub mod trace;

pub use log::{set_level, Level, Logger};
pub use prom::PromWriter;
pub use reqid::{fresh_request_id, request_id_from_header, sanitize_request_id};
pub use ring::{SlowEntry, SlowRing};
pub use trace::{PhaseSnapshot, Span, TraceTimeline};
