//! `mani-bench` — JSON kernel-benchmark emitter and regression gate.
//!
//! ```text
//! cargo run -p mani-bench --release -- --json [--out BENCH_kernels.json] [--smoke]
//!     [--iters N] [--compare BASELINE.json [--max-slowdown 0.25]]
//! ```
//!
//! With `--compare`, the fresh run is diffed against a previously committed
//! baseline (same JSON format — any earlier `--out` file works): the gated
//! metrics are the `schulze_strongest_paths` **flat kernel** and
//! **`matrix_build` throughput**, and any slowdown beyond `--max-slowdown`
//! (default 25%) exits non-zero. CI runs the smoke grid against
//! `BENCH_baseline_smoke.json`; to re-baseline after an intentional change
//! (or a runner-hardware change — baselines are machine-specific), copy the
//! fresh JSON over the committed baseline.
//!
//! Measures the three intra-request kernels the engine's hot path is made of —
//! precedence-matrix construction, Schulze strongest paths, and the
//! Fair-Kemeny branch and bound — at a grid of `(n, |R|)` points, serial
//! versus parallel, and (for Schulze) against the legacy nested-`Vec` kernel
//! kept as the in-tree baseline; plus the wire codecs and the `delta_update`
//! row comparing an append-1 precedence delta against a full rebuild. Results are written as JSON so successive
//! PRs have a trajectory to compare against; CI smoke-runs the tiny grid
//! (`--smoke`) to keep this harness compiling and running.
//!
//! All timings are best-of-`iters` wall-clock nanoseconds measured in the same
//! process run, so speedup ratios compare like with like.

use std::fmt::Write as _;
use std::time::Instant;

use mani_aggregation::SchulzeAggregator;
use mani_bench::BenchFixture;
use mani_core::{FairKemeny, MfcrMethod};
use mani_engine::EngineDataset;
use mani_ranking::{available_threads, Parallelism, PrecedenceMatrix, Ranking};
use mani_service::{
    dataset_to_value, decode_dataset, encode_dataset, parse_body, parse_dataset, render,
};
use mani_solver::SolverConfig;

/// One benchmark row, rendered as a JSON object.
struct Entry {
    kernel: &'static str,
    n: usize,
    rankings: usize,
    fields: Vec<(String, String)>,
}

impl Entry {
    /// Integer value of a field (fields hold raw JSON tokens).
    fn field_u64(&self, name: &str) -> Option<u64> {
        self.fields
            .iter()
            .find(|(key, _)| key == name)
            .and_then(|(_, value)| value.parse().ok())
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut smoke = false;
    let mut out = String::from("BENCH_kernels.json");
    let mut compare: Option<String> = None;
    let mut max_slowdown = 0.25f64;
    let mut iters_override: Option<usize> = None;
    let mut timestamp: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| match iter.next() {
            Some(value) => value.clone(),
            None => {
                eprintln!("mani-bench: {flag} needs a value");
                std::process::exit(1);
            }
        };
        match arg.as_str() {
            "--json" => json = true,
            "--smoke" => smoke = true,
            "--out" => out = value_of("--out"),
            "--compare" => compare = Some(value_of("--compare")),
            "--timestamp" => timestamp = Some(value_of("--timestamp")),
            "--max-slowdown" => {
                let raw = value_of("--max-slowdown");
                max_slowdown = raw.parse().unwrap_or_else(|_| {
                    eprintln!("mani-bench: cannot parse --max-slowdown value `{raw}`");
                    std::process::exit(1);
                });
            }
            "--iters" => {
                let raw = value_of("--iters");
                iters_override = Some(raw.parse().unwrap_or_else(|_| {
                    eprintln!("mani-bench: cannot parse --iters value `{raw}`");
                    std::process::exit(1);
                }));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: mani-bench --json [--out FILE] [--smoke] [--iters N]\n\
                     \x20                 [--timestamp STR] [--compare BASELINE [--max-slowdown F]]\n\
                     writes kernel throughput/latency for matrix-build, Schulze and\n\
                     Fair-Kemeny at (n, |R|) grid points to FILE (default BENCH_kernels.json).\n\
                     --compare diffs the fresh run against a committed baseline and exits\n\
                     non-zero when the Schulze flat kernel or matrix-build throughput\n\
                     regresses by more than --max-slowdown (default 0.25).\n\
                     --timestamp stamps an opaque run label into the output's `meta`\n\
                     header (the comparison gate ignores the header entirely)."
                );
                return;
            }
            other => {
                eprintln!("mani-bench: unknown flag `{other}` (try --help)");
                std::process::exit(1);
            }
        }
    }
    if !json {
        eprintln!("mani-bench: pass --json to run the kernel grid (see --help)");
        std::process::exit(1);
    }

    let threads = available_threads();
    let parallel = Parallelism::new(threads).with_min_candidates(0);
    let mut entries = Vec::new();

    // (n, |R|) grid points per kernel; the smoke grid keeps CI runs in
    // seconds while staying large enough (tens of microseconds per gated
    // kernel) that best-of-N timings are stable for the --compare gate. The
    // smoke grid carries one large-n Schulze point (n = 1000, iters capped by
    // `capped_iters`) so the regression gate exercises the tiled-kernel
    // regime, and the full grid extends to the CSRankings-scale points
    // n ∈ {1000, 2000, 5000}. The wire-codec grid sweeps ranking count (the
    // axis the two encodings diverge on) at a fixed candidate pool.
    let (matrix_grid, schulze_grid, kemeny_grid, codec_grid, delta_grid, mut iters) = if smoke {
        (
            vec![(48, 64)],
            vec![(48, 24), (1000, 16)],
            vec![(10, 8)],
            vec![(32, 200)],
            vec![(48, 64)],
            3usize,
        )
    } else {
        (
            vec![(160, 400), (240, 240), (1000, 200), (2000, 100)],
            vec![
                (160, 40),
                (256, 40),
                (384, 40),
                (1000, 40),
                (2000, 40),
                (5000, 40),
            ],
            vec![(20, 12), (26, 12)],
            vec![(50, 1000), (50, 10000)],
            vec![(160, 1000), (160, 10000)],
            3usize,
        )
    };
    if let Some(override_iters) = iters_override {
        iters = override_iters.max(1);
    }

    for &(n, r) in &matrix_grid {
        eprintln!("matrix-build n={n} |R|={r} ...");
        entries.push(bench_matrix_build(n, r, &parallel, capped_iters(n, iters)));
    }
    for &(n, r) in &schulze_grid {
        eprintln!("schulze n={n} |R|={r} ...");
        entries.push(bench_schulze(n, r, &parallel, capped_iters(n, iters)));
    }
    for &(n, r) in &kemeny_grid {
        eprintln!("fair-kemeny n={n} |R|={r} ...");
        entries.push(bench_fair_kemeny(n, r, &parallel, iters.min(2), smoke));
    }
    for &(n, r) in &codec_grid {
        eprintln!("wire-codec n={n} |R|={r} ...");
        entries.push(bench_wire_codec(n, r, iters));
    }
    for &(n, r) in &delta_grid {
        eprintln!("delta-update n={n} |R|={r} ...");
        entries.push(bench_delta_update(n, r, iters));
    }

    let body = render_json(threads, iters, smoke, timestamp.as_deref(), &entries);
    if let Err(error) = std::fs::write(&out, &body) {
        eprintln!("mani-bench: cannot write {out}: {error}");
        std::process::exit(1);
    }
    eprintln!("wrote {} entries to {out}", entries.len());

    if let Some(baseline_path) = compare {
        let failures = compare_with_baseline(&baseline_path, &entries, max_slowdown, threads);
        if failures > 0 {
            eprintln!(
                "mani-bench: {failures} gated kernel metric(s) regressed more than {:.0}% \
                 against {baseline_path}",
                max_slowdown * 100.0
            );
            std::process::exit(1);
        }
        eprintln!(
            "mani-bench: all gated kernel metrics within {:.0}% of {baseline_path}",
            max_slowdown * 100.0
        );
    }
}

/// The metrics the regression gate guards: `(kernel, field, what)` triples
/// where `field` is a best-of-run latency in nanoseconds (lower is better —
/// for a fixed grid point, latency slowdown equals throughput slowdown).
const GATED_METRICS: [(&str, &str, &str); 2] = [
    (
        "schulze_strongest_paths",
        "flat_serial_ns",
        "Schulze flat kernel",
    ),
    ("matrix_build", "serial_ns", "matrix-build throughput"),
];

/// Diffs `fresh` against the baseline file and reports every gated metric.
/// Returns the number of metrics that regressed beyond `max_slowdown`.
/// Nothing passes silently: a gated kernel that ends up with **zero actual
/// comparisons** — renamed label, dropped or moved grid point, missing field
/// — counts as a failure, so neither a fresh-side nor a baseline-side grid
/// change can hollow the gate out by accident (mismatched points are
/// reported individually; re-baseline with `--out` after intentional
/// changes).
fn compare_with_baseline(
    path: &str,
    fresh: &[Entry],
    max_slowdown: f64,
    current_threads: usize,
) -> usize {
    let baseline = match Baseline::load(path) {
        Ok(baseline) => baseline,
        Err(error) => {
            eprintln!("mani-bench: cannot use baseline {path}: {error}");
            return 1;
        }
    };
    // Non-fatal: serial latencies gate fine across machines, but parallel
    // speedup figures recorded at a different thread count are not comparable
    // — a 1-thread baseline never exercised the parallel kernels at all.
    match baseline.threads_available {
        Some(baseline_threads) if baseline_threads != current_threads as u64 => {
            eprintln!(
                "mani-bench: WARNING: baseline {path} was recorded with threads_available = \
                 {baseline_threads}, this run has {current_threads} — parallel speedup figures \
                 are not comparable (re-baseline with --out on this machine to fix)"
            );
        }
        None => {
            eprintln!(
                "mani-bench: WARNING: baseline {path} does not record threads_available; \
                 cannot check thread-count comparability"
            );
        }
        _ => {}
    }
    let mut failures = 0usize;
    for (kernel, field, what) in GATED_METRICS {
        let mut compared = 0usize;
        for entry in fresh.iter().filter(|entry| entry.kernel == kernel) {
            let Some(fresh_ns) = entry.field_u64(field) else {
                eprintln!(
                    "  MISSING {what} n={} |R|={}: fresh run lacks `{field}`",
                    entry.n, entry.rankings
                );
                continue;
            };
            let Some(baseline_ns) = baseline.field(kernel, entry.n, entry.rankings, field) else {
                eprintln!(
                    "  SKIP {what} n={} |R|={}: no matching baseline entry (grid changed? \
                     re-baseline with --out)",
                    entry.n, entry.rankings
                );
                continue;
            };
            compared += 1;
            // Latency ratio on a fixed grid point == inverse throughput ratio.
            let slowdown = fresh_ns as f64 / baseline_ns.max(1) as f64 - 1.0;
            let verdict = if slowdown > max_slowdown {
                failures += 1;
                "FAIL"
            } else {
                "ok"
            };
            eprintln!(
                "  {verdict:4} {what} n={} |R|={}: baseline {baseline_ns} ns -> fresh {fresh_ns} ns \
                 ({:+.1}%)",
                entry.n,
                entry.rankings,
                slowdown * 100.0
            );
        }
        if compared == 0 {
            eprintln!(
                "  FAIL {what}: no `{kernel}` grid point was compared against the baseline — \
                 the gate would be guarding nothing"
            );
            failures += 1;
        }
    }
    failures
}

/// A parsed baseline file (the output of an earlier `--json` run).
struct Baseline {
    entries: Vec<serde::Value>,
    /// Thread count the baseline was recorded with: read from
    /// `meta.threads_available` (current format) or the top-level
    /// `threads_available` (pre-`meta` files).
    threads_available: Option<u64>,
}

impl Baseline {
    fn load(path: &str) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        let parsed: serde::Value =
            serde_json::from_str(&text).map_err(|e| format!("invalid JSON: {e}"))?;
        let entries = parsed
            .get("entries")
            .and_then(serde::Value::as_array)
            .ok_or_else(|| "no `entries` array".to_string())?
            .to_vec();
        let threads_available = as_u64(
            parsed
                .get("meta")
                .and_then(|meta| meta.get("threads_available"))
                .or_else(|| parsed.get("threads_available")),
        );
        Ok(Self {
            entries,
            threads_available,
        })
    }

    /// The integer `field` of the baseline entry matching a grid point.
    fn field(&self, kernel: &str, n: usize, rankings: usize, field: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|entry| {
                entry.get("kernel").and_then(serde::Value::as_str) == Some(kernel)
                    && as_u64(entry.get("n")) == Some(n as u64)
                    && as_u64(entry.get("rankings")) == Some(rankings as u64)
            })
            .and_then(|entry| as_u64(entry.get(field)))
    }
}

/// Integer view of a shim JSON value.
fn as_u64(value: Option<&serde::Value>) -> Option<u64> {
    match value? {
        serde::Value::UInt(u) => Some(*u),
        serde::Value::Int(i) if *i >= 0 => Some(*i as u64),
        _ => None,
    }
}

/// Best-of-`iters` wall-clock nanoseconds for `work`, which must return a
/// value (kept alive so the optimiser cannot delete the computation).
fn time_best<R>(iters: usize, mut work: impl FnMut() -> R) -> (u64, R) {
    let mut best = u64::MAX;
    let mut last = None;
    for _ in 0..iters.max(1) {
        let started = Instant::now();
        let result = work();
        best = best.min(started.elapsed().as_nanos() as u64);
        last = Some(result);
    }
    (best, last.expect("at least one iteration"))
}

fn ratio(baseline: u64, candidate: u64) -> f64 {
    if candidate == 0 {
        0.0
    } else {
        baseline as f64 / candidate as f64
    }
}

/// Per-point iteration cap: the CSRankings-scale points run fewer iterations
/// so the full grid and the CI smoke run stay wall-clock bounded (an n = 5000
/// Schulze solve is tens of seconds on one core — best-of-1 is the budget).
fn capped_iters(n: usize, iters: usize) -> usize {
    if n >= 5000 {
        1
    } else if n >= 1000 {
        iters.min(2)
    } else {
        iters
    }
}

/// Largest `n` at which the legacy nested-`Vec` Schulze kernel is still timed
/// (and its bit-identity checked). Beyond this the O(n³) legacy kernel alone
/// would dominate the run's wall clock, so large-n entries compare the flat,
/// tiled and parallel kernels against each other only.
const LEGACY_SCHULZE_MAX_N: usize = 512;

fn bench_matrix_build(n: usize, r: usize, parallel: &Parallelism, iters: usize) -> Entry {
    let fixture = BenchFixture::low_fair(n, r, 0.6, 0xA11CE);
    let (serial_ns, serial) = time_best(iters, || fixture.profile.precedence_matrix());
    let (parallel_ns, sharded) =
        time_best(iters, || fixture.profile.precedence_matrix_with(parallel));
    assert_eq!(serial, sharded, "sharded build must be bit-identical");
    Entry {
        kernel: "matrix_build",
        n,
        rankings: r,
        fields: vec![
            ("serial_ns".into(), serial_ns.to_string()),
            ("parallel_ns".into(), parallel_ns.to_string()),
            ("threads".into(), parallel.max_threads().to_string()),
            (
                "speedup_parallel_vs_serial".into(),
                format!("{:.3}", ratio(serial_ns, parallel_ns)),
            ),
        ],
    }
}

fn bench_schulze(n: usize, r: usize, parallel: &Parallelism, iters: usize) -> Entry {
    let fixture = BenchFixture::low_fair(n, r, 0.6, 0xB0B);
    let matrix = fixture.profile.precedence_matrix();
    let aggregator = SchulzeAggregator::new();
    let serial = Parallelism::serial();
    // Un-tiled flat serial kernel: the gated `flat_serial_ns` metric and the
    // denominator for the tiled/parallel speedup figures.
    let (flat_ns, flat) = time_best(iters, || aggregator.strongest_paths_flat(&matrix));
    // Tiled serial kernel under the auto tile policy (untiled below the
    // FW_TILE_MIN_N threshold, in which case this times the same flat path).
    let (tiled_ns, tiled) = time_best(iters, || {
        aggregator.strongest_paths_matrix(&matrix, &serial)
    });
    let (parallel_ns, tiled_par) = time_best(iters, || {
        aggregator.strongest_paths_matrix(&matrix, parallel)
    });
    assert_eq!(tiled, flat, "tiled kernel must be bit-identical");
    assert_eq!(tiled_par, flat, "parallel kernel must be bit-identical");
    let mut fields = vec![
        ("flat_serial_ns".into(), flat_ns.to_string()),
        ("tiled_serial_ns".into(), tiled_ns.to_string()),
        ("parallel_ns".into(), parallel_ns.to_string()),
        (
            "tile_size".into(),
            serial.fw_tile_size(n.max(1)).to_string(),
        ),
        ("threads".into(), parallel.max_threads().to_string()),
        (
            "speedup_tiled_vs_flat".into(),
            format!("{:.3}", ratio(flat_ns, tiled_ns)),
        ),
        (
            "speedup_parallel_vs_flat".into(),
            format!("{:.3}", ratio(flat_ns, parallel_ns)),
        ),
    ];
    if n <= LEGACY_SCHULZE_MAX_N {
        let (legacy_ns, reference) = time_best(iters, || aggregator.strongest_paths(&matrix));
        assert_eq!(
            flat.to_nested(),
            reference,
            "flat kernel must be bit-identical"
        );
        fields.push(("legacy_serial_ns".into(), legacy_ns.to_string()));
        fields.push((
            "speedup_flat_vs_legacy".into(),
            format!("{:.3}", ratio(legacy_ns, flat_ns)),
        ));
        fields.push((
            "speedup_parallel_vs_legacy".into(),
            format!("{:.3}", ratio(legacy_ns, parallel_ns)),
        ));
    }
    Entry {
        kernel: "schulze_strongest_paths",
        n,
        rankings: r,
        fields,
    }
}

fn bench_fair_kemeny(
    n: usize,
    r: usize,
    parallel: &Parallelism,
    iters: usize,
    smoke: bool,
) -> Entry {
    let fixture = BenchFixture::low_fair(n, r, 1.0, 0xFA18);
    let ctx = fixture.context(0.25);
    let budget = if smoke { 20_000 } else { 250_000 };
    let serial_config = SolverConfig::with_max_nodes(budget);
    let parallel_config = SolverConfig::with_max_nodes(budget).with_parallelism(*parallel);
    let (serial_ns, serial) = time_best(iters, || {
        FairKemeny::with_config(serial_config.clone())
            .solve(&ctx)
            .expect("Fair-Kemeny solve")
    });
    let (parallel_ns, outcome) = time_best(iters, || {
        FairKemeny::with_config(parallel_config.clone())
            .solve(&ctx)
            .expect("Fair-Kemeny solve")
    });
    if serial.optimal && outcome.optimal {
        assert_eq!(
            serial.ranking, outcome.ranking,
            "completed searches must agree"
        );
    }
    Entry {
        kernel: "fair_kemeny",
        n,
        rankings: r,
        fields: vec![
            ("serial_ns".into(), serial_ns.to_string()),
            ("parallel_ns".into(), parallel_ns.to_string()),
            ("threads".into(), parallel.max_threads().to_string()),
            (
                "speedup_parallel_vs_serial".into(),
                format!("{:.3}", ratio(serial_ns, parallel_ns)),
            ),
            ("nodes_explored".into(), serial.nodes_explored.to_string()),
            ("optimal".into(), serial.optimal.to_string()),
        ],
    }
}

/// Wire-codec throughput: the JSON and binary columnar dataset encodings,
/// encode and decode, on the same dataset. Rankings are the axis the two
/// representations diverge on (JSON repeats every candidate name per ranking
/// entry; columnar stores u32 ids), so the grid sweeps `|R|` at a fixed pool.
/// Both decoders run their full validation (columnar additionally re-checks
/// the header fingerprint), so the rows compare end-to-end upload costs.
fn bench_wire_codec(n: usize, r: usize, iters: usize) -> Entry {
    let fixture = BenchFixture::low_fair(n, r, 0.6, 0xC0DEC);
    let dataset = EngineDataset::new("bench-codec", fixture.db, fixture.profile)
        .expect("bench fixture dataset");

    let (json_encode_ns, json_text) = time_best(iters, || render(&dataset_to_value(&dataset)));
    let (json_decode_ns, json_twin) = time_best(iters, || {
        parse_dataset(&parse_body(&json_text).expect("bench JSON parses"))
            .expect("bench JSON decodes")
    });
    let (col_encode_ns, col_bytes) = time_best(iters, || encode_dataset(&dataset));
    let (col_decode_ns, col_twin) = time_best(iters, || {
        decode_dataset(&col_bytes).expect("bench columnar decodes")
    });
    assert_eq!(
        json_twin.fingerprint(),
        col_twin.fingerprint(),
        "codec twins must decode to the same dataset"
    );

    let mb_s = |bytes: usize, ns: u64| format!("{:.1}", bytes as f64 / ns.max(1) as f64 * 1e3);
    Entry {
        kernel: "wire_codec",
        n,
        rankings: r,
        fields: vec![
            ("json_bytes".into(), json_text.len().to_string()),
            ("col_bytes".into(), col_bytes.len().to_string()),
            (
                "size_ratio_json_vs_col".into(),
                format!(
                    "{:.3}",
                    ratio(json_text.len() as u64, col_bytes.len() as u64)
                ),
            ),
            ("json_encode_ns".into(), json_encode_ns.to_string()),
            ("json_decode_ns".into(), json_decode_ns.to_string()),
            ("col_encode_ns".into(), col_encode_ns.to_string()),
            ("col_decode_ns".into(), col_decode_ns.to_string()),
            (
                "json_encode_mb_s".into(),
                mb_s(json_text.len(), json_encode_ns),
            ),
            (
                "json_decode_mb_s".into(),
                mb_s(json_text.len(), json_decode_ns),
            ),
            (
                "col_encode_mb_s".into(),
                mb_s(col_bytes.len(), col_encode_ns),
            ),
            (
                "col_decode_mb_s".into(),
                mb_s(col_bytes.len(), col_decode_ns),
            ),
        ],
    }
}

/// Incremental-update kernel: one appended ranking applied as an O(n²) delta
/// (`PrecedenceMatrix::apply_append` on a clone of the warm parent — the same
/// clone-then-apply shape the engine's versioned cache uses) against a full
/// `from_rankings` rebuild over the edited profile. Rankings are the axis a
/// delta wins on (the rebuild is O(|R|·n²), the delta O(n²)), so the grid
/// sweeps `|R|` at a fixed pool. Not a `--compare`-gated metric: the delta
/// row records the speedup trajectory the incremental API rests on.
fn bench_delta_update(n: usize, r: usize, iters: usize) -> Entry {
    let fixture = BenchFixture::low_fair(n, r, 0.6, 0xDE17A);
    let edit = fixture.profile.rankings()[0].clone();
    let mut edited: Vec<Ranking> = fixture.profile.rankings().to_vec();
    edited.push(edit.clone());
    let (rebuild_ns, rebuilt) = time_best(iters, || {
        PrecedenceMatrix::from_rankings(&edited).expect("bench rebuild")
    });
    let base = fixture.profile.precedence_matrix();
    let (delta_ns, derived) = time_best(iters, || {
        let mut matrix = base.clone();
        matrix.apply_append(&edit, 1).expect("bench append delta");
        matrix
    });
    assert_eq!(derived, rebuilt, "append delta must be bit-identical");
    Entry {
        kernel: "delta_update",
        n,
        rankings: r,
        fields: vec![
            ("delta_append_ns".into(), delta_ns.to_string()),
            ("rebuild_ns".into(), rebuild_ns.to_string()),
            (
                "speedup_delta_vs_rebuild".into(),
                format!("{:.3}", ratio(rebuild_ns, delta_ns)),
            ),
        ],
    }
}

/// Renders the run as JSON: a `meta` header describing how the numbers were
/// produced (the `--compare` gate reads only `entries`, so the header can
/// grow freely without invalidating committed baselines) plus the entry rows.
fn render_json(
    threads: usize,
    iters: usize,
    smoke: bool,
    timestamp: Option<&str>,
    entries: &[Entry],
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"meta\": {{");
    let _ = writeln!(out, "    \"generated_by\": \"mani-bench --json\",");
    let _ = writeln!(out, "    \"version\": \"{}\",", env!("CARGO_PKG_VERSION"));
    let _ = match timestamp {
        Some(stamp) => writeln!(out, "    \"timestamp\": \"{}\",", json_escape(stamp)),
        None => writeln!(out, "    \"timestamp\": null,"),
    };
    let _ = writeln!(
        out,
        "    \"grid\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(out, "    \"threads_available\": {threads},");
    let _ = writeln!(out, "    \"iters\": {iters}");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"entries\": [");
    for (index, entry) in entries.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"kernel\": \"{}\", \"n\": {}, \"rankings\": {}",
            entry.kernel, entry.n, entry.rankings
        );
        for (key, value) in &entry.fields {
            let _ = write!(out, ", \"{key}\": {value}");
        }
        let _ = writeln!(
            out,
            "}}{}",
            if index + 1 < entries.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Escapes a user-supplied string for embedding in a JSON string literal.
fn json_escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            other if other.is_control() => {
                let _ = write!(out, "\\u{:04x}", other as u32);
            }
            other => out.push(other),
        }
    }
    out
}
