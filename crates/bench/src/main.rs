//! `mani-bench` — JSON kernel-benchmark emitter.
//!
//! ```text
//! cargo run -p mani-bench --release -- --json [--out BENCH_kernels.json] [--smoke]
//! ```
//!
//! Measures the three intra-request kernels the engine's hot path is made of —
//! precedence-matrix construction, Schulze strongest paths, and the
//! Fair-Kemeny branch and bound — at a grid of `(n, |R|)` points, serial
//! versus parallel, and (for Schulze) against the legacy nested-`Vec` kernel
//! kept as the in-tree baseline. Results are written as JSON so successive
//! PRs have a trajectory to compare against; CI smoke-runs the tiny grid
//! (`--smoke`) to keep this harness compiling and running.
//!
//! All timings are best-of-`iters` wall-clock nanoseconds measured in the same
//! process run, so speedup ratios compare like with like.

use std::fmt::Write as _;
use std::time::Instant;

use mani_aggregation::SchulzeAggregator;
use mani_bench::BenchFixture;
use mani_core::{FairKemeny, MfcrMethod};
use mani_ranking::{available_threads, Parallelism};
use mani_solver::SolverConfig;

/// One benchmark row, rendered as a JSON object.
struct Entry {
    kernel: &'static str,
    n: usize,
    rankings: usize,
    fields: Vec<(String, String)>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut smoke = false;
    let mut out = String::from("BENCH_kernels.json");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--smoke" => smoke = true,
            "--out" => match iter.next() {
                Some(path) => out = path.clone(),
                None => {
                    eprintln!("mani-bench: --out needs a value");
                    std::process::exit(1);
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: mani-bench --json [--out FILE] [--smoke]\n\
                     writes kernel throughput/latency for matrix-build, Schulze and\n\
                     Fair-Kemeny at (n, |R|) grid points to FILE (default BENCH_kernels.json)"
                );
                return;
            }
            other => {
                eprintln!("mani-bench: unknown flag `{other}` (try --help)");
                std::process::exit(1);
            }
        }
    }
    if !json {
        eprintln!("mani-bench: pass --json to run the kernel grid (see --help)");
        std::process::exit(1);
    }

    let threads = available_threads();
    let parallel = Parallelism::new(threads).with_min_candidates(0);
    let mut entries = Vec::new();

    // (n, |R|) grid points per kernel; the smoke grid keeps CI runs in seconds.
    let (matrix_grid, schulze_grid, kemeny_grid, iters) = if smoke {
        (vec![(24, 16)], vec![(24, 12)], vec![(10, 8)], 1usize)
    } else {
        (
            vec![(160, 400), (240, 240)],
            vec![(160, 40), (256, 40), (384, 40)],
            vec![(20, 12), (26, 12)],
            3usize,
        )
    };

    for &(n, r) in &matrix_grid {
        eprintln!("matrix-build n={n} |R|={r} ...");
        entries.push(bench_matrix_build(n, r, &parallel, iters));
    }
    for &(n, r) in &schulze_grid {
        eprintln!("schulze n={n} |R|={r} ...");
        entries.push(bench_schulze(n, r, &parallel, iters));
    }
    for &(n, r) in &kemeny_grid {
        eprintln!("fair-kemeny n={n} |R|={r} ...");
        entries.push(bench_fair_kemeny(n, r, &parallel, iters.min(2), smoke));
    }

    let body = render_json(threads, iters, smoke, &entries);
    if let Err(error) = std::fs::write(&out, &body) {
        eprintln!("mani-bench: cannot write {out}: {error}");
        std::process::exit(1);
    }
    eprintln!("wrote {} entries to {out}", entries.len());
}

/// Best-of-`iters` wall-clock nanoseconds for `work`, which must return a
/// value (kept alive so the optimiser cannot delete the computation).
fn time_best<R>(iters: usize, mut work: impl FnMut() -> R) -> (u64, R) {
    let mut best = u64::MAX;
    let mut last = None;
    for _ in 0..iters.max(1) {
        let started = Instant::now();
        let result = work();
        best = best.min(started.elapsed().as_nanos() as u64);
        last = Some(result);
    }
    (best, last.expect("at least one iteration"))
}

fn ratio(baseline: u64, candidate: u64) -> f64 {
    if candidate == 0 {
        0.0
    } else {
        baseline as f64 / candidate as f64
    }
}

fn bench_matrix_build(n: usize, r: usize, parallel: &Parallelism, iters: usize) -> Entry {
    let fixture = BenchFixture::low_fair(n, r, 0.6, 0xA11CE);
    let (serial_ns, serial) = time_best(iters, || fixture.profile.precedence_matrix());
    let (parallel_ns, sharded) =
        time_best(iters, || fixture.profile.precedence_matrix_with(parallel));
    assert_eq!(serial, sharded, "sharded build must be bit-identical");
    Entry {
        kernel: "matrix_build",
        n,
        rankings: r,
        fields: vec![
            ("serial_ns".into(), serial_ns.to_string()),
            ("parallel_ns".into(), parallel_ns.to_string()),
            (
                "speedup_parallel_vs_serial".into(),
                format!("{:.3}", ratio(serial_ns, parallel_ns)),
            ),
        ],
    }
}

fn bench_schulze(n: usize, r: usize, parallel: &Parallelism, iters: usize) -> Entry {
    let fixture = BenchFixture::low_fair(n, r, 0.6, 0xB0B);
    let matrix = fixture.profile.precedence_matrix();
    let aggregator = SchulzeAggregator::new();
    let serial = Parallelism::serial();
    let (legacy_ns, reference) = time_best(iters, || aggregator.strongest_paths(&matrix));
    let (flat_ns, flat) = time_best(iters, || {
        aggregator.strongest_paths_matrix(&matrix, &serial)
    });
    let (parallel_ns, flat_par) = time_best(iters, || {
        aggregator.strongest_paths_matrix(&matrix, parallel)
    });
    assert_eq!(
        flat.to_nested(),
        reference,
        "flat kernel must be bit-identical"
    );
    assert_eq!(flat_par, flat, "parallel kernel must be bit-identical");
    Entry {
        kernel: "schulze_strongest_paths",
        n,
        rankings: r,
        fields: vec![
            ("legacy_serial_ns".into(), legacy_ns.to_string()),
            ("flat_serial_ns".into(), flat_ns.to_string()),
            ("parallel_ns".into(), parallel_ns.to_string()),
            (
                "speedup_flat_vs_legacy".into(),
                format!("{:.3}", ratio(legacy_ns, flat_ns)),
            ),
            (
                "speedup_parallel_vs_legacy".into(),
                format!("{:.3}", ratio(legacy_ns, parallel_ns)),
            ),
        ],
    }
}

fn bench_fair_kemeny(
    n: usize,
    r: usize,
    parallel: &Parallelism,
    iters: usize,
    smoke: bool,
) -> Entry {
    let fixture = BenchFixture::low_fair(n, r, 1.0, 0xFA18);
    let ctx = fixture.context(0.25);
    let budget = if smoke { 20_000 } else { 250_000 };
    let serial_config = SolverConfig::with_max_nodes(budget);
    let parallel_config = SolverConfig::with_max_nodes(budget).with_parallelism(*parallel);
    let (serial_ns, serial) = time_best(iters, || {
        FairKemeny::with_config(serial_config.clone())
            .solve(&ctx)
            .expect("Fair-Kemeny solve")
    });
    let (parallel_ns, outcome) = time_best(iters, || {
        FairKemeny::with_config(parallel_config.clone())
            .solve(&ctx)
            .expect("Fair-Kemeny solve")
    });
    if serial.optimal && outcome.optimal {
        assert_eq!(
            serial.ranking, outcome.ranking,
            "completed searches must agree"
        );
    }
    Entry {
        kernel: "fair_kemeny",
        n,
        rankings: r,
        fields: vec![
            ("serial_ns".into(), serial_ns.to_string()),
            ("parallel_ns".into(), parallel_ns.to_string()),
            (
                "speedup_parallel_vs_serial".into(),
                format!("{:.3}", ratio(serial_ns, parallel_ns)),
            ),
            ("nodes_explored".into(), serial.nodes_explored.to_string()),
            ("optimal".into(), serial.optimal.to_string()),
        ],
    }
}

fn render_json(threads: usize, iters: usize, smoke: bool, entries: &[Entry]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"generated_by\": \"mani-bench --json\",");
    let _ = writeln!(
        out,
        "  \"grid\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(out, "  \"threads_available\": {threads},");
    let _ = writeln!(out, "  \"iters\": {iters},");
    let _ = writeln!(out, "  \"entries\": [");
    for (index, entry) in entries.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"kernel\": \"{}\", \"n\": {}, \"rankings\": {}",
            entry.kernel, entry.n, entry.rankings
        );
        for (key, value) in &entry.fields {
            let _ = write!(out, ", \"{key}\": {value}");
        }
        let _ = writeln!(
            out,
            "}}{}",
            if index + 1 < entries.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}
