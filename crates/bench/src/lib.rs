//! # mani-bench
//!
//! Criterion benchmark harness for the MANI-Rank reproduction. Every table and figure in
//! the paper's evaluation has a corresponding bench target (see `benches/`), each of which
//! exercises the same experiment module from `mani-experiments` at the smoke scale and
//! additionally micro-benchmarks the method(s) the table/figure is about.
//!
//! This library crate only hosts shared fixture helpers so individual bench files stay
//! small.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mani_core::MfcrContext;
use mani_datagen::{binary_population, FairnessTarget, MallowsModel, ModalRankingBuilder};
use mani_experiments::Scale;
use mani_fairness::FairnessThresholds;
use mani_ranking::{CandidateDb, GroupIndex, RankingProfile};

/// An owned benchmark fixture: database, groups, and base rankings.
pub struct BenchFixture {
    /// Candidate database.
    pub db: CandidateDb,
    /// Group index.
    pub groups: GroupIndex,
    /// Base rankings.
    pub profile: RankingProfile,
}

impl BenchFixture {
    /// A binary Gender × Race workload with a Low-Fair modal ranking.
    pub fn low_fair(num_candidates: usize, num_rankings: usize, theta: f64, seed: u64) -> Self {
        let db = binary_population(num_candidates, 0.5, 0.5, seed);
        let groups = GroupIndex::new(&db);
        let modal = ModalRankingBuilder::new(&db).build(&FairnessTarget::low_fair(2));
        let profile = MallowsModel::new(modal, theta).sample_profile(num_rankings, seed ^ 0xBEEF);
        Self {
            db,
            groups,
            profile,
        }
    }

    /// Borrows an [`MfcrContext`] with a uniform Δ.
    pub fn context(&self, delta: f64) -> MfcrContext<'_> {
        MfcrContext::new(
            &self.db,
            &self.groups,
            &self.profile,
            FairnessThresholds::uniform(delta),
        )
    }
}

/// The scale used by all bench targets (smoke: seconds per target).
pub fn bench_scale() -> Scale {
    Scale::smoke()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds_consistent_sizes() {
        let fixture = BenchFixture::low_fair(20, 10, 0.6, 1);
        assert_eq!(fixture.db.len(), 20);
        assert_eq!(fixture.profile.len(), 10);
        let ctx = fixture.context(0.2);
        assert_eq!(ctx.profile.num_candidates(), 20);
        assert_eq!(bench_scale().name, "smoke");
    }
}
