//! Engine bench: batched execution (worker pool + shared precedence cache)
//! versus naive sequential per-method `solve` calls over the same workload.
//!
//! Two effects are measured separately:
//!
//! * `sequential/*` rebuilds the `O(n² · |R|)` precedence matrix inside every
//!   method call — the pre-engine behaviour;
//! * `engine/*` runs the same methods through `ConsensusEngine::submit_batch`,
//!   which builds each dataset's matrix once and fans methods out across the
//!   worker pool (wall-clock gains scale with core count; the matrix sharing
//!   wins even on a single core).
//!
//! After the timed sections the bench prints the measured speedup.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use mani_core::{MethodKind, MfcrContext};
use mani_datagen::{binary_population, FairnessTarget, MallowsModel, ModalRankingBuilder};
use mani_engine::{ConsensusEngine, ConsensusRequest, EngineDataset};
use mani_fairness::FairnessThresholds;
use mani_ranking::GroupIndex;

const METHODS: [MethodKind; 4] = [
    MethodKind::FairBorda,
    MethodKind::FairCopeland,
    MethodKind::FairSchulze,
    MethodKind::CorrectFairestPerm,
];
const DELTA: f64 = 0.1;

fn datasets() -> Vec<Arc<EngineDataset>> {
    [(80usize, 400usize, 1u64), (100, 500, 2), (120, 350, 3)]
        .into_iter()
        .map(|(n, m, seed)| {
            let db = binary_population(n, 0.5, 0.5, seed);
            let modal = ModalRankingBuilder::new(&db).build(&FairnessTarget::low_fair(2));
            let profile = MallowsModel::new(modal, 0.6).sample_profile(m, seed ^ 0xB00);
            Arc::new(EngineDataset::new(format!("bench-{n}x{m}"), db, profile).unwrap())
        })
        .collect()
}

fn run_sequential(datasets: &[Arc<EngineDataset>]) -> usize {
    let mut produced = 0;
    for ds in datasets {
        let groups = GroupIndex::new(ds.db());
        for kind in METHODS {
            let ctx = MfcrContext::new(
                ds.db(),
                &groups,
                ds.profile(),
                FairnessThresholds::uniform(DELTA),
            );
            let outcome = kind.instantiate().solve(&ctx).expect("method run");
            produced += outcome.ranking.len();
        }
    }
    produced
}

fn run_engine(engine: &ConsensusEngine, datasets: &[Arc<EngineDataset>]) -> usize {
    let requests = datasets
        .iter()
        .map(|ds| {
            ConsensusRequest::new(Arc::clone(ds), METHODS, FairnessThresholds::uniform(DELTA))
        })
        .collect();
    engine
        .submit_batch(requests)
        .iter()
        .flat_map(|r| r.successes())
        .map(|r| r.outcome.ranking.len())
        .sum()
}

fn bench(c: &mut Criterion) {
    let datasets = datasets();
    let engine = ConsensusEngine::new();

    let mut group = c.benchmark_group("engine_batch");
    group.sample_size(10);

    group.bench_function("sequential/3x4-methods", |b| {
        b.iter(|| run_sequential(&datasets))
    });
    group.bench_function("engine/3x4-methods", |b| {
        b.iter(|| run_engine(&engine, &datasets))
    });
    group.finish();

    // Headline comparison outside the harness: one timed run each.
    let started = Instant::now();
    let a = run_sequential(&datasets);
    let sequential = started.elapsed();
    let started = Instant::now();
    let b = run_engine(&engine, &datasets);
    let batched = started.elapsed();
    assert_eq!(a, b, "both paths must produce identical output volume");
    println!(
        "\nengine_batch summary: sequential {:.1} ms vs batched {:.1} ms -> {:.2}x speedup \
         ({} worker thread(s); gains grow with cores, matrix sharing wins even on one)",
        sequential.as_secs_f64() * 1e3,
        batched.as_secs_f64() * 1e3,
        sequential.as_secs_f64() / batched.as_secs_f64().max(1e-9),
        engine.threads(),
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
