//! Table II bench: Fair-Borda with large numbers of base rankings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mani_bench::BenchFixture;
use mani_core::{FairBorda, MfcrMethod};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_fair_borda_rankers");
    group.sample_size(10);
    for &num_rankings in &[100usize, 1_000, 5_000] {
        let fixture = BenchFixture::low_fair(40, num_rankings, 0.6, 2);
        let ctx = fixture.context(0.1);
        group.bench_with_input(
            BenchmarkId::from_parameter(num_rankings),
            &num_rankings,
            |b, _| b.iter(|| FairBorda::new().solve(&ctx).expect("run")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
