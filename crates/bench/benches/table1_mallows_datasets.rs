//! Table I bench: generating the Low/Medium/High-Fair Mallows datasets.

use criterion::{criterion_group, criterion_main, Criterion};
use mani_bench::bench_scale;
use mani_experiments::datasets;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    c.bench_function("table1/generate_datasets", |b| {
        b.iter(|| datasets::table1(&scale))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
