//! Figure 6 bench: Fair-* methods as the number of base rankings grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mani_bench::BenchFixture;
use mani_core::MethodKind;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_ranker_scale");
    group.sample_size(10);
    for &num_rankings in &[10usize, 50, 200] {
        let fixture = BenchFixture::low_fair(40, num_rankings, 0.6, 6);
        let ctx = fixture.context(0.1);
        for kind in [MethodKind::FairBorda, MethodKind::FairCopeland] {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), num_rankings),
                &num_rankings,
                |b, _| b.iter(|| kind.instantiate().solve(&ctx).expect("method run")),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
