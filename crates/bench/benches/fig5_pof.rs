//! Figure 5 bench: Price-of-Fairness sweep (θ and Δ panels).

use criterion::{criterion_group, criterion_main, Criterion};
use mani_bench::bench_scale;
use mani_experiments::fig5;

fn bench(c: &mut Criterion) {
    let mut scale = bench_scale();
    scale.thetas = vec![0.6];
    scale.deltas = vec![0.1, 0.3];
    scale.solver_max_nodes = 20_000;
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("price_of_fairness", |b| {
        b.iter(|| fig5::run(&scale).expect("fig5 run"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
