//! Table IV bench: the full exam case study (dataset generation + all methods).

use criterion::{criterion_group, criterion_main, Criterion};
use mani_bench::bench_scale;
use mani_experiments::table4;

fn bench(c: &mut Criterion) {
    let mut scale = bench_scale();
    scale.exam_students = 100;
    scale.solver_max_nodes = 20_000;
    let mut group = c.benchmark_group("table4");
    group.sample_size(10);
    group.bench_function("exam_case_study", |b| {
        b.iter(|| table4::run(&scale).expect("table4 run"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
