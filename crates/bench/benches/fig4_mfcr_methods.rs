//! Figure 4 bench: one iteration of every MFCR method on the Low-Fair workload.

use criterion::{criterion_group, criterion_main, Criterion};
use mani_bench::BenchFixture;
use mani_core::MethodKind;

fn bench(c: &mut Criterion) {
    let fixture = BenchFixture::low_fair(40, 25, 0.6, 4);
    let ctx = fixture.context(0.1);
    let mut group = c.benchmark_group("fig4_methods");
    group.sample_size(10);
    for kind in [
        MethodKind::FairSchulze,
        MethodKind::FairBorda,
        MethodKind::FairCopeland,
        MethodKind::PickFairestPerm,
        MethodKind::CorrectFairestPerm,
    ] {
        group.bench_function(kind.name(), |b| {
            b.iter(|| kind.instantiate().solve(&ctx).expect("method run"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
