//! Table V bench: the full CSRankings case study (dataset generation + all methods).

use criterion::{criterion_group, criterion_main, Criterion};
use mani_bench::bench_scale;
use mani_experiments::table5;

fn bench(c: &mut Criterion) {
    let mut scale = bench_scale();
    scale.csrankings_years = 10;
    scale.solver_max_nodes = 20_000;
    let mut group = c.benchmark_group("table5");
    group.sample_size(10);
    group.bench_function("csrankings_case_study", |b| {
        b.iter(|| table5::run(&scale).expect("table5 run"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
