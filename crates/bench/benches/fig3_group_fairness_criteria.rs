//! Figure 3 bench: constraint-formulation comparison via the exact solver.

use criterion::{criterion_group, criterion_main, Criterion};
use mani_bench::bench_scale;
use mani_experiments::fig3;

fn bench(c: &mut Criterion) {
    let mut scale = bench_scale();
    scale.thetas = vec![0.6];
    scale.solver_max_nodes = 20_000;
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("constraint_comparison", |b| {
        b.iter(|| fig3::run(&scale).expect("fig3 run"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
