//! Table III bench: Fair-Borda with large candidate sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mani_bench::BenchFixture;
use mani_core::{FairBorda, MfcrMethod};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_fair_borda_candidates");
    group.sample_size(10);
    for &n in &[100usize, 300, 600] {
        let fixture = BenchFixture::low_fair(n, 20, 0.6, 3);
        let ctx = fixture.context(0.33);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| FairBorda::new().solve(&ctx).expect("run"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
