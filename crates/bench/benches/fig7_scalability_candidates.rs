//! Figure 7 bench: Fair-* methods as the number of candidates grows, at two Δ values.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mani_bench::BenchFixture;
use mani_core::MethodKind;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_candidate_scale");
    group.sample_size(10);
    for &n in &[30usize, 60, 120] {
        let fixture = BenchFixture::low_fair(n, 20, 0.6, 7);
        for &delta in &[0.1f64, 0.33] {
            let ctx = fixture.context(delta);
            group.bench_with_input(
                BenchmarkId::new(format!("fair_borda_delta_{delta}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        MethodKind::FairBorda
                            .instantiate()
                            .solve(&ctx)
                            .expect("run")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
