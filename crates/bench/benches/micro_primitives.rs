//! Micro-benchmarks of the core primitives every experiment rests on: Kendall tau, FPR
//! scans, precedence-matrix construction, Mallows sampling, and Make-MR-Fair.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mani_bench::BenchFixture;
use mani_core::make_mr_fair;
use mani_fairness::{FairnessThresholds, ParityScores};
use mani_ranking::{kendall_tau, PrecedenceMatrix, Ranking};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro");

    for &n in &[100usize, 1_000] {
        let a = Ranking::identity(n);
        let b_rank = a.reversed();
        group.bench_with_input(BenchmarkId::new("kendall_tau", n), &n, |bench, _| {
            bench.iter(|| kendall_tau(&a, &b_rank).unwrap())
        });
    }

    let fixture = BenchFixture::low_fair(200, 50, 0.6, 11);
    group.bench_function("precedence_matrix/200x50", |b| {
        b.iter(|| PrecedenceMatrix::from_rankings(fixture.profile.rankings()).unwrap())
    });
    group.bench_function("parity_scores/200", |b| {
        let ranking = &fixture.profile.rankings()[0];
        b.iter(|| ParityScores::compute(ranking, &fixture.groups))
    });
    group.bench_function("make_mr_fair/200", |b| {
        let ranking = &fixture.profile.rankings()[0];
        b.iter(|| make_mr_fair(ranking, &fixture.groups, &FairnessThresholds::uniform(0.1)))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
