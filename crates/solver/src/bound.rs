//! Lower bounds for the branch-and-bound search.
//!
//! Every pair of candidates must appear in one of its two orders in the final ranking, so
//! each unresolved pair `{a, b}` contributes at least `min(W[a][b], W[b][a])` to the
//! objective. The sum of these minima over all pairs not yet fixed by the search prefix is
//! an admissible lower bound on the remaining cost. It is maintained incrementally: when a
//! candidate is placed, all its pairs with still-unplaced candidates become resolved, so
//! their minima are subtracted.

use mani_ranking::{CandidateId, PrecedenceMatrix};

/// Precomputed pairwise minima used by the incremental lower bound.
#[derive(Debug, Clone)]
pub struct PairwiseMinima {
    n: usize,
    /// `min(W[a][b], W[b][a])` stored row-major.
    minima: Vec<u64>,
    /// For each candidate, the sum of minima against every other candidate.
    row_sums: Vec<u64>,
    /// Sum of minima over all unordered pairs.
    total: u64,
}

impl PairwiseMinima {
    /// Computes pairwise minima for a precedence matrix. O(n²).
    pub fn new(matrix: &PrecedenceMatrix) -> Self {
        let n = matrix.num_candidates();
        let mut minima = vec![0u64; n * n];
        let mut row_sums = vec![0u64; n];
        let mut total = 0u64;
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let (ca, cb) = (CandidateId(a as u32), CandidateId(b as u32));
                let m = matrix
                    .disagreements_if_above(ca, cb)
                    .min(matrix.disagreements_if_above(cb, ca)) as u64;
                minima[a * n + b] = m;
                row_sums[a] += m;
                if a < b {
                    total += m;
                }
            }
        }
        Self {
            n,
            minima,
            row_sums,
            total,
        }
    }

    /// `min(W[a][b], W[b][a])` for one pair.
    pub fn pair_min(&self, a: CandidateId, b: CandidateId) -> u64 {
        self.minima[a.index() * self.n + b.index()]
    }

    /// Sum of minima of `a` against every other candidate.
    pub fn row_sum(&self, a: CandidateId) -> u64 {
        self.row_sums[a.index()]
    }

    /// Sum of minima over all unordered pairs (lower bound at the search root).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of candidates.
    pub fn num_candidates(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mani_ranking::{Ranking, RankingProfile};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn matrix(rankings: Vec<Ranking>) -> PrecedenceMatrix {
        RankingProfile::new(rankings).unwrap().precedence_matrix()
    }

    #[test]
    fn unanimous_profile_has_zero_total() {
        let m = matrix(vec![Ranking::identity(5); 3]);
        let minima = PairwiseMinima::new(&m);
        assert_eq!(minima.total(), 0);
        assert_eq!(minima.row_sum(CandidateId(0)), 0);
    }

    #[test]
    fn split_profile_has_positive_minima() {
        let r = Ranking::identity(3);
        let m = matrix(vec![r.clone(), r.reversed()]);
        let minima = PairwiseMinima::new(&m);
        // Every pair has one ranking on each side: min = 1 per pair, 3 pairs.
        assert_eq!(minima.total(), 3);
        assert_eq!(minima.pair_min(CandidateId(0), CandidateId(1)), 1);
        assert_eq!(minima.row_sum(CandidateId(1)), 2);
        assert_eq!(minima.num_candidates(), 3);
    }

    proptest! {
        #[test]
        fn prop_total_is_admissible_lower_bound(n in 2usize..10, m_count in 1usize..6, seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let rankings: Vec<Ranking> = (0..m_count).map(|_| Ranking::random(n, &mut rng)).collect();
            let mat = matrix(rankings);
            let minima = PairwiseMinima::new(&mat);
            // The bound must not exceed the cost of any ranking.
            for _ in 0..5 {
                let candidate = Ranking::random(n, &mut rng);
                prop_assert!(minima.total() <= mat.total_disagreements(&candidate).unwrap());
            }
        }

        #[test]
        fn prop_row_sums_consistent_with_pair_minima(n in 2usize..8, seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let rankings: Vec<Ranking> = (0..3).map(|_| Ranking::random(n, &mut rng)).collect();
            let mat = matrix(rankings);
            let minima = PairwiseMinima::new(&mat);
            for a in 0..n as u32 {
                let expected: u64 = (0..n as u32)
                    .filter(|&b| b != a)
                    .map(|b| minima.pair_min(CandidateId(a), CandidateId(b)))
                    .sum();
                prop_assert_eq!(minima.row_sum(CandidateId(a)), expected);
            }
            let total_from_rows: u64 = (0..n as u32).map(|a| minima.row_sum(CandidateId(a))).sum();
            prop_assert_eq!(total_from_rows, 2 * minima.total());
        }
    }
}
