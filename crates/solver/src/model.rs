//! Problem and configuration types for the exact Kemeny / Fair-Kemeny solver.

use mani_ranking::{Parallelism, PrecedenceMatrix, Ranking};
use serde::{Deserialize, Serialize};

use crate::constraints::AxisConstraint;

/// A (possibly fairness-constrained) Kemeny consensus problem.
#[derive(Debug, Clone)]
pub struct KemenyProblem {
    /// Precedence matrix of the base rankings.
    pub matrix: PrecedenceMatrix,
    /// Fairness constraints; empty for plain Kemeny.
    pub constraints: Vec<AxisConstraint>,
}

impl KemenyProblem {
    /// Plain (fairness-unaware) Kemeny problem.
    pub fn unconstrained(matrix: PrecedenceMatrix) -> Self {
        Self {
            matrix,
            constraints: Vec::new(),
        }
    }

    /// Fairness-constrained Kemeny problem.
    pub fn constrained(matrix: PrecedenceMatrix, constraints: Vec<AxisConstraint>) -> Self {
        Self {
            matrix,
            constraints,
        }
    }

    /// Number of candidates.
    pub fn num_candidates(&self) -> usize {
        self.matrix.num_candidates()
    }

    /// True when a complete ranking satisfies all fairness constraints.
    pub fn is_feasible(&self, ranking: &Ranking) -> bool {
        self.constraints.iter().all(|c| c.is_satisfied_by(ranking))
    }

    /// Kemeny objective value (total pairwise disagreements) of a ranking.
    pub fn cost(&self, ranking: &Ranking) -> u64 {
        self.matrix
            .total_disagreements(ranking)
            .expect("ranking and matrix sizes match by construction")
    }
}

/// Configuration for the branch-and-bound search.
#[derive(Debug, Clone, Serialize)]
pub struct SolverConfig {
    /// Maximum number of search nodes to expand before giving up on optimality.
    ///
    /// The default (2 million) keeps a single solve in the low seconds even on adversarial
    /// instances; the experiment harness raises it via `Scale::solver_max_nodes` when the
    /// paper-scale sweeps want tighter optimality.
    pub max_nodes: u64,
    /// Kernel-parallelism budget for subtree-parallel search (default:
    /// serial). When the search completes within the node budget the result is
    /// bit-identical for every thread count; when the budget is exhausted the
    /// anytime result may legitimately differ because workers race the budget.
    pub parallelism: Parallelism,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            max_nodes: 2_000_000,
            parallelism: Parallelism::serial(),
        }
    }
}

// Manual impl rather than derive: configs serialized before kernel
// parallelism existed carry no `parallelism` field and must keep
// deserializing (to the serial default).
impl Deserialize for SolverConfig {
    fn deserialize_value(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let max_nodes = value
            .get("max_nodes")
            .ok_or_else(|| serde::Error::new("SolverConfig: missing field `max_nodes`"))
            .and_then(u64::deserialize_value)?;
        let parallelism = match value.get("parallelism") {
            Some(raw) => Parallelism::deserialize_value(raw)?,
            None => Parallelism::serial(),
        };
        Ok(Self {
            max_nodes,
            parallelism,
        })
    }
}

impl SolverConfig {
    /// Config with an explicit node budget.
    pub fn with_max_nodes(max_nodes: u64) -> Self {
        Self {
            max_nodes,
            ..Self::default()
        }
    }

    /// Sets the kernel-parallelism budget.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }
}

/// Result of a solver run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolveOutcome {
    /// Best feasible ranking found.
    pub ranking: Ranking,
    /// Its Kemeny objective value.
    pub cost: u64,
    /// True when the search proved this is the optimum; false when the node budget was
    /// exhausted first (anytime result).
    pub optimal: bool,
    /// Number of search nodes expanded.
    pub nodes_explored: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mani_ranking::RankingProfile;

    #[test]
    fn unconstrained_problem_is_always_feasible() {
        let profile = RankingProfile::new(vec![Ranking::identity(4)]).unwrap();
        let problem = KemenyProblem::unconstrained(profile.precedence_matrix());
        assert!(problem.is_feasible(&Ranking::identity(4)));
        assert!(problem.is_feasible(&Ranking::identity(4).reversed()));
        assert_eq!(problem.num_candidates(), 4);
        assert_eq!(problem.cost(&Ranking::identity(4)), 0);
        assert_eq!(
            problem.cost(&Ranking::identity(4).reversed()),
            mani_ranking::total_pairs(4)
        );
    }

    #[test]
    fn constrained_problem_checks_axes() {
        let profile = RankingProfile::new(vec![Ranking::identity(4)]).unwrap();
        let constraint = AxisConstraint::new("G", vec![0, 0, 1, 1], 2, 0.1);
        let problem = KemenyProblem::constrained(profile.precedence_matrix(), vec![constraint]);
        // identity puts group 0 entirely on top -> infeasible under delta 0.1
        assert!(!problem.is_feasible(&Ranking::identity(4)));
        // the "sandwich" order 0,2,3,1 gives both groups an FPR of exactly 0.5
        assert!(problem.is_feasible(&Ranking::from_ids([0, 2, 3, 1]).unwrap()));
    }

    #[test]
    fn solver_config_default_and_custom() {
        assert_eq!(SolverConfig::default().max_nodes, 2_000_000);
        assert_eq!(SolverConfig::with_max_nodes(10).max_nodes, 10);
        let parallel = SolverConfig::default().with_parallelism(Parallelism::new(4));
        assert_eq!(parallel.parallelism.max_threads(), 4);
    }

    #[test]
    fn solver_config_deserializes_with_and_without_parallelism() {
        use serde::{Deserialize, Serialize};
        // Round trip preserves the parallelism budget.
        let config = SolverConfig::with_max_nodes(77).with_parallelism(Parallelism::new(3));
        let round: SolverConfig =
            Deserialize::deserialize_value(&config.serialize_value()).unwrap();
        assert_eq!(round.max_nodes, 77);
        assert_eq!(round.parallelism, config.parallelism);
        // A payload predating kernel parallelism still deserializes (serial).
        let legacy: SolverConfig = serde_json::from_str("{\"max_nodes\": 500000}").unwrap();
        assert_eq!(legacy.max_nodes, 500_000);
        assert!(legacy.parallelism.is_serial());
        // A wire value cannot smuggle in `threads: 0`.
        let clamped: SolverConfig = serde_json::from_str(
            "{\"max_nodes\": 5, \"parallelism\": {\"threads\": 0, \"min_candidates\": 48}}",
        )
        .unwrap();
        assert_eq!(clamped.parallelism.max_threads(), 1);
    }
}
