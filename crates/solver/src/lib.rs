//! # mani-solver
//!
//! Exact solver for the (fairness-constrained) Kemeny consensus ranking problem.
//!
//! The MANI-Rank paper solves Kemeny and Fair-Kemeny as 0/1 integer programs with IBM
//! CPLEX (Algorithm 1, Equations 7–12). CPLEX is proprietary, so this crate provides a
//! from-scratch replacement that solves the *same* optimisation problem exactly:
//!
//! > minimise the total pairwise disagreement with the precedence matrix, over all
//! > permutations, subject to `ARP_pk ≤ Δ` for every constrained protected attribute and
//! > `IRP ≤ Δ` for the (optionally constrained) intersection.
//!
//! The search is a depth-first branch and bound over ranking prefixes:
//!
//! * **Incremental cost** — placing candidate `c` next adds `Σ_{u unplaced} W[c][u]`
//!   disagreements, so the prefix cost is exact at every node.
//! * **Admissible lower bound** — unresolved pairs contribute at least
//!   `Σ min(W[a][b], W[b][a])`; the bound is maintained incrementally.
//! * **Fairness pruning** — for each constrained axis, the final FPR of each group is
//!   bracketed by an interval computed from the prefix; if no assignment of FPR values
//!   within those intervals can satisfy the Δ gap constraint, the subtree is pruned.
//! * **Incumbents** — the search is seeded with a heuristic feasible solution (Borda /
//!   Copeland refined by local search for plain Kemeny; Fair-Borda for Fair-Kemeny),
//!   so pruning is effective immediately.
//! * **Anytime mode** — a node budget caps the search; if it is exhausted the best
//!   feasible ranking found so far is returned with `optimal = false`.
//!
//! See `DESIGN.md` ("Substitutions") for why this preserves the paper's conclusions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bound;
pub mod constraints;
pub mod model;
pub mod search;

pub use constraints::AxisConstraint;
pub use model::{KemenyProblem, SolveOutcome, SolverConfig};
pub use search::solve;
