//! Fairness constraints for the exact solver, expressed per grouping axis.
//!
//! An [`AxisConstraint`] captures one row of the paper's constraint families (Equation 11
//! for a protected attribute, Equation 12 for the intersection): the grouping of candidates
//! along the axis and the maximum allowed FPR gap Δ between any two of its groups.

use mani_fairness::FairnessThresholds;
use mani_ranking::{mixed_pairs_for_group, GroupIndex, Ranking};
use serde::{Deserialize, Serialize};

/// Numerical slack used when comparing parity gaps against Δ, mirroring the tolerance used
/// by `mani-fairness::criteria`.
pub const DELTA_EPS: f64 = 1e-9;

/// One fairness constraint: the groups of a single axis must have pairwise FPR gaps ≤ Δ.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AxisConstraint {
    /// Human-readable label, e.g. `"Gender"` or `"Intersection"`.
    pub label: String,
    /// Group index per candidate (dense candidate id → group along this axis).
    pub membership: Vec<usize>,
    /// Number of groups along the axis (including empty groups).
    pub num_groups: usize,
    /// Maximum allowed FPR gap between any two non-empty groups.
    pub delta: f64,
    /// Mixed-pair denominators per group, `|G|(n - |G|)`; zero for empty or full groups.
    pub mixed_pairs: Vec<u64>,
    /// Group sizes.
    pub group_sizes: Vec<usize>,
}

impl AxisConstraint {
    /// Builds a constraint from a membership vector and a Δ threshold.
    pub fn new(
        label: impl Into<String>,
        membership: Vec<usize>,
        num_groups: usize,
        delta: f64,
    ) -> Self {
        let n = membership.len();
        let mut group_sizes = vec![0usize; num_groups];
        for &g in &membership {
            group_sizes[g] += 1;
        }
        let mixed_pairs = group_sizes
            .iter()
            .map(|&s| mixed_pairs_for_group(s, n))
            .collect();
        Self {
            label: label.into(),
            membership,
            num_groups,
            delta,
            mixed_pairs,
            group_sizes,
        }
    }

    /// Number of candidates covered by the constraint.
    pub fn num_candidates(&self) -> usize {
        self.membership.len()
    }

    /// True when the constraint can never be violated (fewer than two groups have mixed
    /// pairs, or Δ ≥ 1).
    pub fn is_trivial(&self) -> bool {
        if self.delta >= 1.0 {
            return true;
        }
        self.mixed_pairs.iter().filter(|&&m| m > 0).count() < 2
    }

    /// Exact FPR gap of a complete ranking along this axis.
    pub fn gap(&self, ranking: &Ranking) -> f64 {
        let favored = self.favored_counts(ranking);
        self.gap_from_counts(&favored)
    }

    /// True when `ranking` satisfies the constraint.
    pub fn is_satisfied_by(&self, ranking: &Ranking) -> bool {
        self.is_trivial() || self.gap(ranking) <= self.delta + DELTA_EPS
    }

    /// Favored mixed pair counts per group for a complete ranking (single O(n) pass).
    #[allow(clippy::explicit_counter_loop)] // seen_total counts candidates, not loop turns
    pub fn favored_counts(&self, ranking: &Ranking) -> Vec<u64> {
        let n = ranking.len();
        let mut favored = vec![0u64; self.num_groups];
        let mut seen_below = vec![0u64; self.num_groups];
        let mut seen_total = 0u64;
        for pos in (0..n).rev() {
            let candidate = ranking.candidate_at(pos);
            let g = self.membership[candidate.index()];
            favored[g] += seen_total - seen_below[g];
            seen_below[g] += 1;
            seen_total += 1;
        }
        favored
    }

    /// FPR gap computed from favored counts.
    #[allow(clippy::needless_range_loop)]
    pub fn gap_from_counts(&self, favored: &[u64]) -> f64 {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut seen = 0usize;
        for g in 0..self.num_groups {
            if self.mixed_pairs[g] == 0 {
                continue;
            }
            let fpr = favored[g] as f64 / self.mixed_pairs[g] as f64;
            min = min.min(fpr);
            max = max.max(fpr);
            seen += 1;
        }
        if seen < 2 {
            0.0
        } else {
            max - min
        }
    }

    /// Optimistic feasibility check for a *partial* prefix.
    ///
    /// `favored_so_far[g]` counts the favored mixed pairs already fixed by the prefix for
    /// group `g`, and `remaining[g]` counts the group's members that are still unplaced.
    /// Each remaining member of `g` can gain at most `(unplaced − remaining[g])` more
    /// favored mixed pairs against other unplaced candidates (additional pairs against the
    /// placed prefix are already fixed), so the final FPR of `g` lies in an interval.
    /// The constraint is still satisfiable only if there is a window of width Δ that
    /// intersects every group's interval, i.e. `max_g lo_g − min_g hi_g ≤ Δ`.
    pub fn feasible_given_prefix(
        &self,
        favored_so_far: &[u64],
        remaining: &[usize],
        unplaced: usize,
    ) -> bool {
        if self.is_trivial() {
            return true;
        }
        let mut max_lo = f64::NEG_INFINITY;
        let mut min_hi = f64::INFINITY;
        for g in 0..self.num_groups {
            if self.mixed_pairs[g] == 0 {
                continue;
            }
            let denom = self.mixed_pairs[g] as f64;
            let lo = favored_so_far[g] as f64 / denom;
            let extra_max = (remaining[g] as u64) * (unplaced - remaining[g]) as u64;
            let hi = (favored_so_far[g] + extra_max) as f64 / denom;
            max_lo = max_lo.max(lo);
            min_hi = min_hi.min(hi);
        }
        if !max_lo.is_finite() || !min_hi.is_finite() {
            return true;
        }
        max_lo - min_hi <= self.delta + DELTA_EPS
    }
}

/// Builds the list of axis constraints implied by [`FairnessThresholds`] over a group index.
///
/// One constraint per constrained protected attribute (Equation 11) plus one for the
/// intersection when it is constrained (Equation 12). Trivial constraints are dropped.
pub fn constraints_from_thresholds(
    groups: &GroupIndex,
    thresholds: &FairnessThresholds,
    attribute_labels: &[String],
) -> Vec<AxisConstraint> {
    let mut out = Vec::new();
    for (attr_id, membership) in groups.attributes() {
        if let Some(delta) = thresholds.attribute_delta(attr_id) {
            let label = attribute_labels
                .get(attr_id.index())
                .cloned()
                .unwrap_or_else(|| format!("attribute-{}", attr_id.index()));
            let constraint = AxisConstraint::new(
                label,
                membership.membership().to_vec(),
                membership.num_groups(),
                delta,
            );
            if !constraint.is_trivial() {
                out.push(constraint);
            }
        }
    }
    if let Some(delta) = thresholds.intersection_delta() {
        let inter = groups.intersection();
        let constraint = AxisConstraint::new(
            "Intersection",
            inter.membership().to_vec(),
            inter.num_groups(),
            delta,
        );
        if !constraint.is_trivial() {
            out.push(constraint);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mani_fairness::{attribute_rank_parity, intersectional_rank_parity};
    use mani_ranking::{CandidateDbBuilder, GroupIndex, Ranking};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn binary_constraint(n: usize, delta: f64) -> AxisConstraint {
        // alternating membership 0,1,0,1,...
        let membership: Vec<usize> = (0..n).map(|i| i % 2).collect();
        AxisConstraint::new("G", membership, 2, delta)
    }

    #[test]
    fn gap_matches_fairness_crate() {
        let mut b = CandidateDbBuilder::new();
        let g = b.add_attribute("Gender", ["M", "W"]).unwrap();
        let r = b.add_attribute("Race", ["A", "B", "C"]).unwrap();
        for i in 0..12usize {
            b.add_candidate(format!("c{i}"), [(g, i % 2), (r, i % 3)])
                .unwrap();
        }
        let db = b.build().unwrap();
        let idx = GroupIndex::new(&db);
        let labels = vec!["Gender".to_string(), "Race".to_string()];
        let constraints = constraints_from_thresholds(
            &idx,
            &mani_fairness::FairnessThresholds::uniform(0.1),
            &labels,
        );
        assert_eq!(constraints.len(), 3);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..5 {
            let ranking = Ranking::random(12, &mut rng);
            let gender = db.schema().attribute_id("Gender").unwrap();
            let race = db.schema().attribute_id("Race").unwrap();
            assert!(
                (constraints[0].gap(&ranking) - attribute_rank_parity(&ranking, &idx, gender))
                    .abs()
                    < 1e-12
            );
            assert!(
                (constraints[1].gap(&ranking) - attribute_rank_parity(&ranking, &idx, race)).abs()
                    < 1e-12
            );
            assert!(
                (constraints[2].gap(&ranking) - intersectional_rank_parity(&ranking, &idx)).abs()
                    < 1e-12
            );
        }
    }

    #[test]
    fn trivial_constraints_are_detected_and_dropped() {
        // Single-group axis (all candidates share the value) is trivial.
        let c = AxisConstraint::new("solo", vec![0, 0, 0], 2, 0.1);
        assert!(c.is_trivial());
        assert!(c.is_satisfied_by(&Ranking::identity(3)));
        // Loose delta is trivial.
        let c = binary_constraint(6, 1.0);
        assert!(c.is_trivial());
        // A normal constraint is not.
        let c = binary_constraint(6, 0.1);
        assert!(!c.is_trivial());
    }

    #[test]
    fn segregated_ranking_violates_tight_constraint() {
        // membership alternates, so the ranking [0,2,4,1,3,5] puts group 0 entirely on top.
        let c = binary_constraint(6, 0.1);
        let segregated = Ranking::from_ids([0, 2, 4, 1, 3, 5]).unwrap();
        assert!((c.gap(&segregated) - 1.0).abs() < 1e-12);
        assert!(!c.is_satisfied_by(&segregated));
        // the alternating identity ranking is much fairer
        let identity = Ranking::identity(6);
        assert!(c.gap(&identity) < 0.35);
    }

    #[test]
    fn empty_prefix_is_always_feasible() {
        let c = binary_constraint(8, 0.05);
        let favored = vec![0u64; 2];
        let remaining = vec![4usize, 4];
        assert!(c.feasible_given_prefix(&favored, &remaining, 8));
    }

    #[test]
    fn infeasible_prefix_is_pruned() {
        // 6 candidates, binary groups of 3. If all of group 0 is already placed on top,
        // its favored count is 9 = mixed pairs, FPR_0 = 1 fixed; group 1's FPR is 0 and can
        // gain nothing (no unplaced non-members). Δ = 0.1 is infeasible.
        let c = binary_constraint(6, 0.1);
        // group 0 = candidates 0,2,4; after placing them: favored_0 = 3+3+3 = 9
        let favored = vec![9u64, 0];
        let remaining = vec![0usize, 3];
        assert!(!c.feasible_given_prefix(&favored, &remaining, 3));
    }

    #[test]
    fn feasibility_is_optimistic_never_cuts_feasible_completions() {
        // Randomised check: take a random prefix of a ranking that satisfies the constraint;
        // the prefix must be declared feasible.
        let mut rng = StdRng::seed_from_u64(13);
        let c = binary_constraint(10, 0.3);
        for _ in 0..50 {
            let ranking = Ranking::random(10, &mut rng);
            if !c.is_satisfied_by(&ranking) {
                continue;
            }
            for prefix_len in 0..10 {
                let mut favored = vec![0u64; 2];
                let mut placed = [false; 10];
                for p in 0..prefix_len {
                    let cand = ranking.candidate_at(p);
                    placed[cand.index()] = true;
                }
                // favored counts fixed by the prefix: for each placed candidate, non-group
                // candidates ranked below it (placed later or unplaced).
                for p in 0..prefix_len {
                    let cand = ranking.candidate_at(p);
                    let g = c.membership[cand.index()];
                    let mut count = 0u64;
                    for q in (p + 1)..10 {
                        let other = ranking.candidate_at(q);
                        if c.membership[other.index()] != g {
                            count += 1;
                        }
                    }
                    favored[g] += count;
                }
                let mut remaining = vec![0usize; 2];
                for (i, &done) in placed.iter().enumerate() {
                    if !done {
                        remaining[c.membership[i]] += 1;
                    }
                }
                let unplaced = 10 - prefix_len;
                assert!(
                    c.feasible_given_prefix(&favored, &remaining, unplaced),
                    "prefix of a feasible ranking must not be pruned (len {prefix_len})"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn prop_gap_in_unit_interval(n in 2usize..20, seed in any::<u64>()) {
            let c = binary_constraint(n, 0.1);
            let mut rng = StdRng::seed_from_u64(seed);
            let ranking = Ranking::random(n, &mut rng);
            let gap = c.gap(&ranking);
            prop_assert!((0.0..=1.0).contains(&gap));
        }
    }
}
