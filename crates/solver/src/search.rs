//! Depth-first branch-and-bound over ranking prefixes.
//!
//! The search places candidates from the top of the consensus downwards. At every node it
//! knows the exact cost of the prefix, an admissible lower bound on the cost of any
//! completion, and — for Fair-Kemeny — an optimistic feasibility interval for every
//! fairness constraint. Children are explored in ascending bound order so good incumbents
//! are found early and pruning is aggressive.
//!
//! ## Subtree parallelism
//!
//! When [`SolverConfig::parallelism`] allows it, the root frontier is expanded
//! (in sequential DFS visit order) to at least `threads × 4` prefixes and the
//! subtrees are solved by scoped worker threads sharing one [`AtomicU64`]
//! incumbent bound. Determinism is preserved by construction:
//!
//! * each subtree prunes with `>=` only against bounds found *earlier in
//!   visit order* (the seeded incumbent and its own leaves) and strictly (`>`)
//!   against the shared cross-subtree bound, so the earliest minimum-cost leaf
//!   of the sequential search always survives in its subtree;
//! * subtree results are merged in frontier (i.e. sequential visit) order with
//!   strict improvement, reproducing the sequential first-found tie-break.
//!
//! A search that completes within the node budget therefore returns a
//! bit-identical ranking and cost for every thread count. Only the anytime
//! case (budget exhausted mid-search) and the reported node count may vary,
//! because workers race the shared budget.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use mani_ranking::{CandidateId, Ranking};

use crate::bound::PairwiseMinima;
use crate::constraints::AxisConstraint;
use crate::model::{KemenyProblem, SolveOutcome, SolverConfig};

/// Below this candidate count subtree parallelism is never attempted: the
/// frontier bookkeeping would rival the whole search.
const MIN_PARALLEL_CANDIDATES: usize = 8;

/// Solves a (fairness-constrained) Kemeny problem exactly, within the node budget.
///
/// `incumbent` seeds the upper bound; for constrained problems it should be a feasible
/// ranking (e.g. a Fair-Borda solution) so that the search can prune from the start. If the
/// node budget is exhausted, the best feasible ranking found so far is returned with
/// `optimal = false`; if none was found, the incumbent (even if infeasible) is returned as
/// a last resort.
pub fn solve(
    problem: &KemenyProblem,
    incumbent: Option<&Ranking>,
    config: &SolverConfig,
) -> SolveOutcome {
    let n = problem.num_candidates();
    let matrix = &problem.matrix;
    let minima = PairwiseMinima::new(matrix);

    let mut best_ranking: Option<Ranking> = None;
    let mut best_cost = u64::MAX;
    if let Some(start) = incumbent {
        if start.len() == n && problem.is_feasible(start) {
            best_cost = problem.cost(start);
            best_ranking = Some(start.clone());
        }
    }

    // Static branching order: candidates by descending Copeland wins, so likely-top
    // candidates are tried first at shallow depths.
    let wins = matrix.copeland_wins();
    let mut static_order: Vec<u32> = (0..n as u32).collect();
    static_order.sort_by(|&a, &b| wins[b as usize].cmp(&wins[a as usize]).then(a.cmp(&b)));

    let threads = config.parallelism.kernel_threads(n);
    if threads > 1 && n >= MIN_PARALLEL_CANDIDATES {
        if let Some(outcome) = solve_parallel(
            problem,
            &minima,
            &static_order,
            config,
            threads,
            best_cost,
            &best_ranking,
            incumbent,
        ) {
            return outcome;
        }
    }

    let mut state = SearchState::new(problem, &minima, n);
    let mut ctx = SearchContext {
        problem,
        minima: &minima,
        static_order: &static_order,
        config,
        nodes: 0,
        exhausted: false,
        best_cost,
        best_ranking,
        shared: None,
    };
    ctx.dfs(&mut state);
    finish_outcome(
        ctx.nodes,
        ctx.exhausted,
        ctx.best_cost,
        ctx.best_ranking,
        incumbent,
        problem,
        n,
    )
}

/// Packages the end-of-search state into a [`SolveOutcome`], falling back to
/// the incumbent (or identity) when no feasible ranking was found.
fn finish_outcome(
    nodes: u64,
    exhausted: bool,
    best_cost: u64,
    best_ranking: Option<Ranking>,
    incumbent: Option<&Ranking>,
    problem: &KemenyProblem,
    n: usize,
) -> SolveOutcome {
    let optimal = !exhausted && best_ranking.is_some();
    let (ranking, cost) = match best_ranking {
        Some(r) => (r, best_cost),
        None => {
            // No feasible solution found within the budget: fall back to the incumbent or,
            // failing that, the identity ranking (documented best-effort behaviour).
            let fallback = incumbent.cloned().unwrap_or_else(|| Ranking::identity(n));
            let cost = problem.cost(&fallback);
            (fallback, cost)
        }
    };
    SolveOutcome {
        ranking,
        cost,
        optimal,
        nodes_explored: nodes,
    }
}

/// Bound/budget state shared by every subtree worker.
struct SharedSearch {
    /// Best feasible leaf cost found anywhere (seeded with the incumbent).
    best: AtomicU64,
    /// Global node counter charged against [`SolverConfig::max_nodes`].
    nodes: AtomicU64,
    /// Set once the budget is exhausted; all workers bail out promptly.
    exhausted: AtomicBool,
}

/// Unplaced children of `state` with their lower bounds, cheapest first
/// (ties by `static_order` position via the stable tuple sort).
///
/// This is the **single** child enumeration shared by [`SearchContext::dfs`]
/// and [`expand_frontier`]: the bit-identical-across-threads guarantee relies
/// on the frontier partition following exactly the sequential child order, so
/// any change to the bound or ordering must happen here, for both.
fn ordered_children(state: &SearchState, static_order: &[u32]) -> Vec<(u64, u32)> {
    let mut children: Vec<(u64, u32)> = Vec::with_capacity(state.unplaced);
    for &c in static_order {
        let idx = c as usize;
        if state.placed[idx] {
            continue;
        }
        let child_bound = state.cost
            + state.cost_to_unplaced[idx]
            + (state.remaining_bound - state.min_to_unplaced[idx]);
        children.push((child_bound, c));
    }
    children.sort_unstable();
    children
}

/// Expands the root frontier to `target`-or-more prefixes in sequential DFS
/// visit order, level by level. Children are enumerated exactly like
/// [`SearchContext::dfs`] does (via [`ordered_children`]; pruned with `>=`
/// against the incumbent cost, constraint-infeasible prefixes dropped), so
/// the resulting prefix list is a partition of precisely the subtrees the
/// sequential search could visit, in its visit order.
fn expand_frontier(
    problem: &KemenyProblem,
    minima: &PairwiseMinima,
    static_order: &[u32],
    initial_best: u64,
    target: usize,
    nodes: &mut u64,
) -> Vec<Vec<u32>> {
    let n = problem.num_candidates();
    let max_depth = n.saturating_sub(2).min(4);
    let mut frontier: Vec<Vec<u32>> = vec![Vec::new()];
    let mut depth = 0usize;
    while frontier.len() < target && depth < max_depth {
        let mut next: Vec<Vec<u32>> = Vec::with_capacity(frontier.len() * 4);
        for prefix in &frontier {
            // Visiting this interior node (mirrors the sequential node count).
            *nodes += 1;
            let mut state = SearchState::new(problem, minima, n);
            for &c in prefix {
                let _ = state.place(c as usize, problem, minima);
            }
            for (child_bound, c) in ordered_children(&state, static_order) {
                if child_bound >= initial_best {
                    break;
                }
                let undo = state.place(c as usize, problem, minima);
                if state.feasible(&problem.constraints) {
                    let mut child = prefix.clone();
                    child.push(c);
                    next.push(child);
                }
                state.unplace(undo, problem, minima);
            }
        }
        frontier = next;
        depth += 1;
        if frontier.is_empty() {
            break;
        }
    }
    frontier
}

/// Runs the search with `threads` subtree workers. Returns `None` when the
/// frontier does not offer real fan-out (the caller then runs sequentially).
#[allow(clippy::too_many_arguments)]
fn solve_parallel(
    problem: &KemenyProblem,
    minima: &PairwiseMinima,
    static_order: &[u32],
    config: &SolverConfig,
    threads: usize,
    initial_best_cost: u64,
    initial_best_ranking: &Option<Ranking>,
    incumbent: Option<&Ranking>,
) -> Option<SolveOutcome> {
    let n = problem.num_candidates();
    let mut frontier_nodes = 0u64;
    let frontier = expand_frontier(
        problem,
        minima,
        static_order,
        initial_best_cost,
        threads * 4,
        &mut frontier_nodes,
    );
    if frontier.is_empty() {
        // Every subtree was pruned against the incumbent: the incumbent stands,
        // exactly as it would after a fully pruned sequential search.
        return Some(finish_outcome(
            frontier_nodes,
            false,
            initial_best_cost,
            initial_best_ranking.clone(),
            incumbent,
            problem,
            n,
        ));
    }
    if frontier.len() <= 1 {
        return None;
    }

    let shared = SharedSearch {
        best: AtomicU64::new(initial_best_cost),
        nodes: AtomicU64::new(frontier_nodes),
        exhausted: AtomicBool::new(false),
    };
    let next_index = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<(u64, Ranking)>>> =
        (0..frontier.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(frontier.len()) {
            scope.spawn(|| loop {
                // Work stealing by shared index: which worker solves which
                // subtree never affects the merged result.
                let index = next_index.fetch_add(1, Ordering::Relaxed);
                if index >= frontier.len() {
                    break;
                }
                let subtree_best = solve_subtree(
                    problem,
                    minima,
                    static_order,
                    config,
                    &shared,
                    &frontier[index],
                    initial_best_cost,
                );
                *results[index].lock().expect("subtree result lock poisoned") = subtree_best;
            });
        }
    });

    // Deterministic merge: frontier order is sequential visit order, and
    // strict improvement reproduces the sequential first-found tie-break.
    let mut best_cost = initial_best_cost;
    let mut best_ranking = initial_best_ranking.clone();
    for slot in results {
        if let Some((cost, ranking)) = slot.into_inner().expect("subtree result lock poisoned") {
            if cost < best_cost {
                best_cost = cost;
                best_ranking = Some(ranking);
            }
        }
    }
    let exhausted = shared.exhausted.load(Ordering::Relaxed);
    Some(finish_outcome(
        shared.nodes.load(Ordering::Relaxed),
        exhausted,
        best_cost,
        best_ranking,
        incumbent,
        problem,
        n,
    ))
}

/// Solves one frontier subtree to completion, returning its best feasible
/// leaf (strictly better than the seeded incumbent cost), if any.
fn solve_subtree(
    problem: &KemenyProblem,
    minima: &PairwiseMinima,
    static_order: &[u32],
    config: &SolverConfig,
    shared: &SharedSearch,
    prefix: &[u32],
    initial_best_cost: u64,
) -> Option<(u64, Ranking)> {
    let n = problem.num_candidates();
    let mut state = SearchState::new(problem, minima, n);
    for &c in prefix {
        let _ = state.place(c as usize, problem, minima);
    }
    let mut ctx = SearchContext {
        problem,
        minima,
        static_order,
        config,
        nodes: 0,
        exhausted: false,
        best_cost: initial_best_cost,
        best_ranking: None,
        shared: Some(shared),
    };
    ctx.dfs(&mut state);
    ctx.best_ranking.map(|ranking| (ctx.best_cost, ranking))
}

/// Mutable per-search-path state, updated by place/unplace operations.
struct SearchState {
    /// Candidate ids placed so far, top first.
    prefix: Vec<u32>,
    placed: Vec<bool>,
    /// Exact disagreement cost of the prefix.
    cost: u64,
    /// Sum of `min(W[a][b], W[b][a])` over pairs of unplaced candidates.
    remaining_bound: u64,
    /// For each candidate, the disagreement cost it would add if placed now
    /// (Σ over unplaced others of W[c][other]).
    cost_to_unplaced: Vec<u64>,
    /// For each candidate, Σ over unplaced others of the pairwise minimum.
    min_to_unplaced: Vec<u64>,
    /// Per constraint: favored mixed pairs fixed so far, per group.
    favored: Vec<Vec<u64>>,
    /// Per constraint: unplaced members per group.
    remaining_members: Vec<Vec<usize>>,
    unplaced: usize,
}

impl SearchState {
    fn new(problem: &KemenyProblem, minima: &PairwiseMinima, n: usize) -> Self {
        let matrix = &problem.matrix;
        let mut cost_to_unplaced = vec![0u64; n];
        let mut min_to_unplaced = vec![0u64; n];
        for a in 0..n {
            let ca = CandidateId(a as u32);
            min_to_unplaced[a] = minima.row_sum(ca);
            let mut cost = 0u64;
            for b in 0..n {
                if a == b {
                    continue;
                }
                cost += matrix.disagreements_if_above(ca, CandidateId(b as u32)) as u64;
            }
            cost_to_unplaced[a] = cost;
        }
        let favored = problem
            .constraints
            .iter()
            .map(|c| vec![0u64; c.num_groups])
            .collect();
        let remaining_members = problem
            .constraints
            .iter()
            .map(|c| c.group_sizes.clone())
            .collect();
        Self {
            prefix: Vec::with_capacity(n),
            placed: vec![false; n],
            cost: 0,
            remaining_bound: minima.total(),
            cost_to_unplaced,
            min_to_unplaced,
            favored,
            remaining_members,
            unplaced: n,
        }
    }

    /// Places candidate `c` at the next position; returns the data needed to undo.
    fn place(
        &mut self,
        c: usize,
        problem: &KemenyProblem,
        minima: &PairwiseMinima,
    ) -> PlacementUndo {
        let inc_cost = self.cost_to_unplaced[c];
        let inc_min = self.min_to_unplaced[c];
        self.cost += inc_cost;
        self.remaining_bound -= inc_min;
        self.placed[c] = true;
        self.prefix.push(c as u32);
        self.unplaced -= 1;

        let n = self.placed.len();
        let cc = CandidateId(c as u32);
        for other in 0..n {
            if other == c || self.placed[other] {
                continue;
            }
            let co = CandidateId(other as u32);
            self.cost_to_unplaced[other] -= problem.matrix.disagreements_if_above(co, cc) as u64;
            self.min_to_unplaced[other] -= minima.pair_min(co, cc);
        }

        let mut favored_deltas = Vec::with_capacity(problem.constraints.len());
        for (k, constraint) in problem.constraints.iter().enumerate() {
            let g = constraint.membership[c];
            self.remaining_members[k][g] -= 1;
            // Everything unplaced is below c; non-group members among them are favored pairs.
            let delta = (self.unplaced - self.remaining_members[k][g]) as u64;
            self.favored[k][g] += delta;
            favored_deltas.push(delta);
        }

        PlacementUndo {
            candidate: c,
            inc_cost,
            inc_min,
            favored_deltas,
        }
    }

    /// Reverts the most recent placement.
    fn unplace(&mut self, undo: PlacementUndo, problem: &KemenyProblem, minima: &PairwiseMinima) {
        let c = undo.candidate;
        for (k, constraint) in problem.constraints.iter().enumerate() {
            let g = constraint.membership[c];
            self.favored[k][g] -= undo.favored_deltas[k];
            self.remaining_members[k][g] += 1;
        }
        self.unplaced += 1;
        self.prefix.pop();
        self.placed[c] = false;
        self.cost -= undo.inc_cost;
        self.remaining_bound += undo.inc_min;

        let n = self.placed.len();
        let cc = CandidateId(c as u32);
        for other in 0..n {
            if other == c || self.placed[other] {
                continue;
            }
            let co = CandidateId(other as u32);
            self.cost_to_unplaced[other] += problem.matrix.disagreements_if_above(co, cc) as u64;
            self.min_to_unplaced[other] += minima.pair_min(co, cc);
        }
    }

    fn feasible(&self, constraints: &[AxisConstraint]) -> bool {
        constraints.iter().enumerate().all(|(k, c)| {
            c.feasible_given_prefix(&self.favored[k], &self.remaining_members[k], self.unplaced)
        })
    }

    fn leaf_satisfies(&self, constraints: &[AxisConstraint]) -> bool {
        constraints.iter().enumerate().all(|(k, c)| {
            c.is_trivial()
                || c.gap_from_counts(&self.favored[k]) <= c.delta + crate::constraints::DELTA_EPS
        })
    }
}

struct PlacementUndo {
    candidate: usize,
    inc_cost: u64,
    inc_min: u64,
    favored_deltas: Vec<u64>,
}

struct SearchContext<'a> {
    problem: &'a KemenyProblem,
    minima: &'a PairwiseMinima,
    static_order: &'a [u32],
    config: &'a SolverConfig,
    nodes: u64,
    exhausted: bool,
    /// Best upper bound found *earlier in visit order*: the seeded incumbent
    /// cost, improved by leaves of this (sub)search. `u64::MAX` when no upper
    /// bound exists yet.
    best_cost: u64,
    best_ranking: Option<Ranking>,
    /// Cross-subtree state when running as one worker of a parallel search.
    shared: Option<&'a SharedSearch>,
}

impl SearchContext<'_> {
    fn dfs(&mut self, state: &mut SearchState) {
        if self.exhausted {
            return;
        }
        self.nodes += 1;
        match self.shared {
            None => {
                if self.nodes > self.config.max_nodes {
                    self.exhausted = true;
                    return;
                }
            }
            Some(shared) => {
                if shared.exhausted.load(Ordering::Relaxed) {
                    self.exhausted = true;
                    return;
                }
                // The node budget is global across subtrees.
                let global_nodes = shared.nodes.fetch_add(1, Ordering::Relaxed) + 1;
                if global_nodes > self.config.max_nodes {
                    shared.exhausted.store(true, Ordering::Relaxed);
                    self.exhausted = true;
                    return;
                }
            }
        }

        if state.unplaced == 0 {
            if state.leaf_satisfies(&self.problem.constraints) && state.cost < self.best_cost {
                self.best_cost = state.cost;
                let order: Vec<u32> = state.prefix.clone();
                self.best_ranking =
                    Some(Ranking::from_ids(order).expect("prefix covers every candidate once"));
                if let Some(shared) = self.shared {
                    shared.best.fetch_min(state.cost, Ordering::Relaxed);
                }
            }
            return;
        }

        for (child_bound, c) in ordered_children(state, self.static_order) {
            if self.exhausted {
                return;
            }
            // Children are sorted by bound, so the first pruned child ends the
            // loop. Pruning is `>=` against bounds found earlier in visit order
            // (`best_cost`) but strictly `>` against the shared cross-subtree
            // bound: a later subtree may have tied this child's bound, and the
            // deterministic tie-break requires the earlier leaf to be found.
            if child_bound >= self.best_cost {
                break;
            }
            if let Some(shared) = self.shared {
                if child_bound > shared.best.load(Ordering::Relaxed) {
                    break;
                }
            }
            let undo = state.place(c as usize, self.problem, self.minima);
            if state.feasible(&self.problem.constraints) {
                self.dfs(state);
            }
            state.unplace(undo, self.problem, self.minima);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mani_ranking::{kendall_tau, Ranking, RankingProfile};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Brute-force Kemeny optimum by enumerating all permutations (tests only, small n).
    fn brute_force_kemeny(profile: &RankingProfile) -> u64 {
        let n = profile.num_candidates();
        let mut ids: Vec<u32> = (0..n as u32).collect();
        let mut best = u64::MAX;
        permute(&mut ids, 0, &mut |perm| {
            let r = Ranking::from_ids(perm.to_vec()).unwrap();
            let cost: u64 = profile
                .rankings()
                .iter()
                .map(|b| kendall_tau(&r, b).unwrap())
                .sum();
            best = best.min(cost);
        });
        best
    }

    fn permute(ids: &mut Vec<u32>, k: usize, visit: &mut impl FnMut(&[u32])) {
        if k == ids.len() {
            visit(ids);
            return;
        }
        for i in k..ids.len() {
            ids.swap(k, i);
            permute(ids, k + 1, visit);
            ids.swap(k, i);
        }
    }

    #[test]
    fn unanimous_profile_recovers_the_common_ranking() {
        let target = Ranking::from_ids([4, 2, 0, 3, 1]).unwrap();
        let profile = RankingProfile::new(vec![target.clone(); 3]).unwrap();
        let problem = KemenyProblem::unconstrained(profile.precedence_matrix());
        let outcome = solve(&problem, None, &SolverConfig::default());
        assert!(outcome.optimal);
        assert_eq!(outcome.cost, 0);
        assert_eq!(outcome.ranking, target);
    }

    #[test]
    fn matches_brute_force_on_small_profiles() {
        let mut rng = StdRng::seed_from_u64(99);
        for n in 2..=6usize {
            for _ in 0..4 {
                let rankings: Vec<Ranking> = (0..5).map(|_| Ranking::random(n, &mut rng)).collect();
                let profile = RankingProfile::new(rankings).unwrap();
                let problem = KemenyProblem::unconstrained(profile.precedence_matrix());
                let outcome = solve(&problem, None, &SolverConfig::default());
                assert!(outcome.optimal);
                assert_eq!(outcome.cost, brute_force_kemeny(&profile), "n = {n}");
                assert_eq!(outcome.cost, problem.cost(&outcome.ranking));
            }
        }
    }

    #[test]
    fn incumbent_does_not_change_the_optimum() {
        let mut rng = StdRng::seed_from_u64(7);
        let rankings: Vec<Ranking> = (0..7).map(|_| Ranking::random(7, &mut rng)).collect();
        let profile = RankingProfile::new(rankings).unwrap();
        let problem = KemenyProblem::unconstrained(profile.precedence_matrix());
        let without = solve(&problem, None, &SolverConfig::default());
        let incumbent = Ranking::random(7, &mut rng);
        let with = solve(&problem, Some(&incumbent), &SolverConfig::default());
        assert!(without.optimal && with.optimal);
        assert_eq!(without.cost, with.cost);
    }

    #[test]
    fn fairness_constraint_is_enforced() {
        // Profile strongly prefers group-0 candidates on top; the constrained optimum must
        // still satisfy the parity gap.
        let biased = Ranking::from_ids([0, 2, 4, 1, 3, 5]).unwrap(); // group0 = even ids on top
        let profile = RankingProfile::new(vec![biased.clone(); 4]).unwrap();
        let membership: Vec<usize> = (0..6).map(|i| i % 2).collect();
        let constraint = AxisConstraint::new("G", membership.clone(), 2, 0.2);
        let matrix = profile.precedence_matrix();

        let unconstrained = solve(
            &KemenyProblem::unconstrained(matrix.clone()),
            None,
            &SolverConfig::default(),
        );
        assert_eq!(unconstrained.ranking, biased);

        let constrained_problem = KemenyProblem::constrained(matrix, vec![constraint.clone()]);
        let outcome = solve(&constrained_problem, None, &SolverConfig::default());
        assert!(outcome.optimal);
        assert!(constraint.is_satisfied_by(&outcome.ranking));
        // Fairness costs something relative to the unconstrained optimum.
        assert!(outcome.cost >= unconstrained.cost);
    }

    #[test]
    fn constrained_cost_is_minimal_among_feasible_permutations() {
        let mut rng = StdRng::seed_from_u64(21);
        let rankings: Vec<Ranking> = (0..5).map(|_| Ranking::random(6, &mut rng)).collect();
        let profile = RankingProfile::new(rankings).unwrap();
        let membership: Vec<usize> = (0..6).map(|i| usize::from(i >= 3)).collect();
        let constraint = AxisConstraint::new("G", membership, 2, 0.25);
        let problem =
            KemenyProblem::constrained(profile.precedence_matrix(), vec![constraint.clone()]);
        let outcome = solve(&problem, None, &SolverConfig::default());
        assert!(outcome.optimal);

        // brute force over feasible permutations
        let mut ids: Vec<u32> = (0..6).collect();
        let mut best = u64::MAX;
        permute(&mut ids, 0, &mut |perm| {
            let r = Ranking::from_ids(perm.to_vec()).unwrap();
            if constraint.is_satisfied_by(&r) {
                best = best.min(problem.cost(&r));
            }
        });
        assert_eq!(outcome.cost, best);
    }

    #[test]
    fn node_budget_produces_anytime_result() {
        let mut rng = StdRng::seed_from_u64(3);
        let rankings: Vec<Ranking> = (0..5).map(|_| Ranking::random(10, &mut rng)).collect();
        let profile = RankingProfile::new(rankings).unwrap();
        let problem = KemenyProblem::unconstrained(profile.precedence_matrix());
        let incumbent = Ranking::identity(10);
        let outcome = solve(&problem, Some(&incumbent), &SolverConfig::with_max_nodes(5));
        assert!(!outcome.optimal);
        assert!(outcome.nodes_explored <= 6);
        // the result is never worse than the incumbent
        assert!(outcome.cost <= problem.cost(&incumbent));
    }

    #[test]
    fn impossible_constraint_falls_back_to_incumbent() {
        // With delta effectively negative-impossible (size-1 groups can't both be at 0 gap
        // unless n allows it), use an absurd constraint: two singleton groups and delta 0 over
        // a profile where exact parity is impossible (gap is either 0... actually for two
        // singletons FPR gap can be 0 only if they tie, impossible in a strict ranking unless
        // they have equal favored counts; with n = 2 the gap is always 1).
        let profile = RankingProfile::new(vec![Ranking::identity(2); 2]).unwrap();
        let constraint = AxisConstraint::new("G", vec![0, 1], 2, 0.0);
        let problem = KemenyProblem::constrained(profile.precedence_matrix(), vec![constraint]);
        let incumbent = Ranking::identity(2);
        let outcome = solve(&problem, Some(&incumbent), &SolverConfig::default());
        // No feasible ranking exists; the solver reports non-optimal and returns the incumbent.
        assert!(!outcome.optimal);
        assert_eq!(outcome.ranking, incumbent);
    }

    #[test]
    fn parallel_search_is_bit_identical_across_thread_counts() {
        use mani_ranking::Parallelism;
        let mut rng = StdRng::seed_from_u64(4242);
        for case in 0..6 {
            let n = 8 + case % 4;
            let rankings: Vec<Ranking> = (0..5).map(|_| Ranking::random(n, &mut rng)).collect();
            let profile = RankingProfile::new(rankings).unwrap();
            let membership: Vec<usize> = (0..n).map(|i| i % 2).collect();
            let constraint = AxisConstraint::new("G", membership, 2, 0.3);
            for constraints in [Vec::new(), vec![constraint]] {
                let problem =
                    KemenyProblem::constrained(profile.precedence_matrix(), constraints.clone());
                let incumbent = Ranking::identity(n);
                let sequential = solve(&problem, Some(&incumbent), &SolverConfig::default());
                assert!(sequential.optimal);
                for threads in [1usize, 2, 8] {
                    let config = SolverConfig::default()
                        .with_parallelism(Parallelism::new(threads).with_min_candidates(0));
                    let parallel = solve(&problem, Some(&incumbent), &config);
                    assert!(parallel.optimal);
                    assert_eq!(parallel.ranking, sequential.ranking, "threads = {threads}");
                    assert_eq!(parallel.cost, sequential.cost, "threads = {threads}");
                }
            }
        }
    }

    #[test]
    fn parallel_search_with_infeasible_constraint_matches_sequential_fallback() {
        use mani_ranking::Parallelism;
        // Eight candidates in eight singleton groups with delta 0: no strict
        // ranking can satisfy exact parity, so both paths must fall back.
        let mut rng = StdRng::seed_from_u64(11);
        let rankings: Vec<Ranking> = (0..4).map(|_| Ranking::random(8, &mut rng)).collect();
        let profile = RankingProfile::new(rankings).unwrap();
        let constraint = AxisConstraint::new("G", (0..8).collect(), 8, 0.0);
        let problem = KemenyProblem::constrained(profile.precedence_matrix(), vec![constraint]);
        let incumbent = Ranking::identity(8);
        let sequential = solve(&problem, Some(&incumbent), &SolverConfig::default());
        let config =
            SolverConfig::default().with_parallelism(Parallelism::new(4).with_min_candidates(0));
        let parallel = solve(&problem, Some(&incumbent), &config);
        assert_eq!(parallel.optimal, sequential.optimal);
        assert_eq!(parallel.ranking, sequential.ranking);
        assert_eq!(parallel.cost, sequential.cost);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn prop_parallel_matches_sequential(
            n in 8usize..12,
            m in 1usize..5,
            threads in 2usize..9,
            seed in any::<u64>()
        ) {
            use mani_ranking::Parallelism;
            let mut rng = StdRng::seed_from_u64(seed);
            let rankings: Vec<Ranking> = (0..m).map(|_| Ranking::random(n, &mut rng)).collect();
            let profile = RankingProfile::new(rankings).unwrap();
            let problem = KemenyProblem::unconstrained(profile.precedence_matrix());
            let sequential = solve(&problem, None, &SolverConfig::default());
            let config = SolverConfig::default()
                .with_parallelism(Parallelism::new(threads).with_min_candidates(0));
            let parallel = solve(&problem, None, &config);
            prop_assert!(sequential.optimal && parallel.optimal);
            prop_assert_eq!(&parallel.ranking, &sequential.ranking);
            prop_assert_eq!(parallel.cost, sequential.cost);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_solver_matches_brute_force(n in 2usize..6, m in 1usize..5, seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let rankings: Vec<Ranking> = (0..m).map(|_| Ranking::random(n, &mut rng)).collect();
            let profile = RankingProfile::new(rankings).unwrap();
            let problem = KemenyProblem::unconstrained(profile.precedence_matrix());
            let outcome = solve(&problem, None, &SolverConfig::default());
            prop_assert!(outcome.optimal);
            prop_assert_eq!(outcome.cost, brute_force_kemeny(&profile));
            prop_assert_eq!(outcome.cost, problem.cost(&outcome.ranking));
        }
    }
}
