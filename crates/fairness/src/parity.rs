//! Attribute Rank Parity (ARP) and Intersectional Rank Parity (IRP) — Definitions 5 and 6.
//!
//! Both measures reduce a grouping axis to a single interpretable number: the largest
//! absolute FPR difference between any two of its groups. `0` means perfect statistical
//! parity along the axis; `1` means one group is entirely on top while another is
//! entirely at the bottom.

use mani_ranking::{AttributeId, GroupIndex, Ranking};
use serde::{Deserialize, Serialize};

use crate::fpr::{group_fprs, FprScores};

/// ARP for one protected attribute: the maximum FPR gap between any two of its groups.
pub fn attribute_rank_parity(
    ranking: &Ranking,
    groups: &GroupIndex,
    attribute: AttributeId,
) -> f64 {
    group_fprs(ranking, groups.attribute(attribute)).max_pairwise_gap()
}

/// IRP: the maximum FPR gap between any two intersectional groups.
pub fn intersectional_rank_parity(ranking: &Ranking, groups: &GroupIndex) -> f64 {
    group_fprs(ranking, groups.intersection()).max_pairwise_gap()
}

/// All parity scores of a ranking: one ARP per protected attribute plus the IRP, along with
/// the per-group FPR scores they were derived from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParityScores {
    /// ARP per protected attribute, in schema order.
    arp: Vec<f64>,
    /// IRP of the intersection.
    irp: f64,
    /// FPR scores per attribute axis, in schema order.
    attribute_fprs: Vec<FprScores>,
    /// FPR scores for the intersection axis.
    intersection_fprs: FprScores,
}

impl ParityScores {
    /// Computes ARP for every protected attribute and the IRP in one pass each.
    pub fn compute(ranking: &Ranking, groups: &GroupIndex) -> Self {
        let mut arp = Vec::with_capacity(groups.num_attributes());
        let mut attribute_fprs = Vec::with_capacity(groups.num_attributes());
        for (_, membership) in groups.attributes() {
            let fprs = group_fprs(ranking, membership);
            arp.push(fprs.max_pairwise_gap());
            attribute_fprs.push(fprs);
        }
        let intersection_fprs = group_fprs(ranking, groups.intersection());
        let irp = intersection_fprs.max_pairwise_gap();
        Self {
            arp,
            irp,
            attribute_fprs,
            intersection_fprs,
        }
    }

    /// ARP of one protected attribute.
    pub fn arp(&self, attribute: AttributeId) -> f64 {
        self.arp[attribute.index()]
    }

    /// All ARP scores in schema order.
    pub fn arps(&self) -> &[f64] {
        &self.arp
    }

    /// IRP of the intersection.
    pub fn irp(&self) -> f64 {
        self.irp
    }

    /// FPR scores of the groups of one protected attribute.
    pub fn attribute_fprs(&self, attribute: AttributeId) -> &FprScores {
        &self.attribute_fprs[attribute.index()]
    }

    /// FPR scores of the intersectional groups.
    pub fn intersection_fprs(&self) -> &FprScores {
        &self.intersection_fprs
    }

    /// The largest parity violation across all attributes and the intersection.
    pub fn max_violation(&self) -> f64 {
        self.arp.iter().copied().fold(self.irp, f64::max)
    }
}

/// The single worst parity score across every protected attribute and the intersection.
pub fn max_parity_violation(ranking: &Ranking, groups: &GroupIndex) -> f64 {
    ParityScores::compute(ranking, groups).max_violation()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mani_ranking::{CandidateDb, CandidateDbBuilder, CandidateId};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// 12 candidates, Gender (2) × Race (3), uniform cells of size 2.
    fn db() -> (CandidateDb, GroupIndex) {
        let mut b = CandidateDbBuilder::new();
        let g = b.add_attribute("Gender", ["M", "W"]).unwrap();
        let r = b.add_attribute("Race", ["A", "B", "C"]).unwrap();
        for i in 0..12usize {
            b.add_candidate(format!("c{i}"), [(g, i % 2), (r, (i / 2) % 3)])
                .unwrap();
        }
        let db = b.build().unwrap();
        let idx = GroupIndex::new(&db);
        (db, idx)
    }

    #[test]
    fn segregated_ranking_has_maximal_arp() {
        let (db, idx) = db();
        let gender = db.schema().attribute_id("Gender").unwrap();
        // All men (value 0: even ids) on top, all women at the bottom.
        let mut order: Vec<u32> = (0..12u32).filter(|i| i % 2 == 0).collect();
        order.extend((0..12u32).filter(|i| i % 2 == 1));
        let r = Ranking::from_ids(order).unwrap();
        let arp = attribute_rank_parity(&r, &idx, gender);
        assert!((arp - 1.0).abs() < 1e-12);
        // Race stays balanced because each race block keeps an even gender mix.
        let race = db.schema().attribute_id("Race").unwrap();
        assert!(attribute_rank_parity(&r, &idx, race) < 0.5);
    }

    #[test]
    fn alternating_ranking_has_low_gender_arp() {
        let (db, idx) = db();
        let gender = db.schema().attribute_id("Gender").unwrap();
        // identity order alternates genders: M W M W ...
        let r = Ranking::identity(12);
        // Alternating M/W over 12 candidates gives FPR gap of exactly 1/6.
        let arp = attribute_rank_parity(&r, &idx, gender);
        assert!(
            arp < 0.2,
            "alternating order should be near parity, got {arp}"
        );
    }

    #[test]
    fn irp_detects_intersectional_bias_hidden_from_attributes() {
        // Classic intersectionality example: 8 candidates, binary Gender x binary Race.
        // Order: (M,A) (W,B) (M,A) (W,B) (W,A) (M,B) (W,A) (M,B)
        // Both Gender and Race are perfectly alternating overall, but the (M,A) cell is always
        // on top and (M,B) always at the bottom.
        let mut b = CandidateDbBuilder::new();
        let g = b.add_attribute("Gender", ["M", "W"]).unwrap();
        let r = b.add_attribute("Race", ["A", "B"]).unwrap();
        let spec: [(usize, usize); 8] = [
            (0, 0),
            (1, 1),
            (0, 0),
            (1, 1),
            (1, 0),
            (0, 1),
            (1, 0),
            (0, 1),
        ];
        for (i, (gv, rv)) in spec.iter().enumerate() {
            b.add_candidate(format!("c{i}"), [(g, *gv), (r, *rv)])
                .unwrap();
        }
        let db = b.build().unwrap();
        let idx = GroupIndex::new(&db);
        let ranking = Ranking::identity(8);
        let scores = ParityScores::compute(&ranking, &idx);
        let gender = db.schema().attribute_id("Gender").unwrap();
        let race = db.schema().attribute_id("Race").unwrap();
        assert!(scores.arp(gender) < 0.35);
        assert!(scores.arp(race) < 0.35);
        assert!(
            scores.irp() > 0.6,
            "intersection should reveal strong bias, got {}",
            scores.irp()
        );
        assert!(scores.max_violation() >= scores.irp());
    }

    #[test]
    fn parity_scores_expose_fprs() {
        let (db, idx) = db();
        let ranking = Ranking::identity(12);
        let scores = ParityScores::compute(&ranking, &idx);
        let gender = db.schema().attribute_id("Gender").unwrap();
        assert_eq!(scores.attribute_fprs(gender).defined().count(), 2);
        assert_eq!(scores.intersection_fprs().defined().count(), 6);
        assert_eq!(scores.arps().len(), 2);
    }

    #[test]
    fn max_parity_violation_matches_components() {
        let (db, idx) = db();
        let mut rng = StdRng::seed_from_u64(3);
        let ranking = Ranking::random(12, &mut rng);
        let scores = ParityScores::compute(&ranking, &idx);
        let max = max_parity_violation(&ranking, &idx);
        let gender = db.schema().attribute_id("Gender").unwrap();
        let race = db.schema().attribute_id("Race").unwrap();
        let expected = scores.arp(gender).max(scores.arp(race)).max(scores.irp());
        assert!((max - expected).abs() < 1e-12);
    }

    #[test]
    fn reversal_preserves_binary_arp() {
        // For a binary attribute, reversing the ranking swaps the two groups' FPR scores,
        // so the ARP (their absolute gap) is unchanged.
        let mut b = CandidateDbBuilder::new();
        let g = b.add_attribute("G", ["a", "b"]).unwrap();
        for i in 0..10usize {
            b.add_candidate(format!("c{i}"), [(g, usize::from(i < 7))])
                .unwrap();
        }
        let db = b.build().unwrap();
        let idx = GroupIndex::new(&db);
        let attr = db.schema().attribute_id("G").unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..5 {
            let r = Ranking::random(10, &mut rng);
            let a1 = attribute_rank_parity(&r, &idx, attr);
            let a2 = attribute_rank_parity(&r.reversed(), &idx, attr);
            assert!((a1 - a2).abs() < 1e-12);
        }
    }

    proptest! {
        #[test]
        fn prop_parity_scores_in_unit_interval(seed in any::<u64>(), n_cells in 1usize..4) {
            let mut b = CandidateDbBuilder::new();
            let g = b.add_attribute("G", ["x", "y"]).unwrap();
            let r = b.add_attribute("R", ["p", "q", "s"]).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 6 * n_cells;
            for i in 0..n {
                b.add_candidate(format!("c{i}"), [(g, i % 2), (r, i % 3)]).unwrap();
            }
            let db = b.build().unwrap();
            let idx = GroupIndex::new(&db);
            let ranking = Ranking::random(n, &mut rng);
            let scores = ParityScores::compute(&ranking, &idx);
            for &a in scores.arps() {
                prop_assert!((0.0..=1.0).contains(&a));
            }
            prop_assert!((0.0..=1.0).contains(&scores.irp()));
            prop_assert!(scores.max_violation() <= 1.0);
            // identity check against the convenience functions
            let gender = db.schema().attribute_id("G").unwrap();
            prop_assert!((scores.arp(gender) - attribute_rank_parity(&ranking, &idx, gender)).abs() < 1e-12);
            prop_assert!((scores.irp() - intersectional_rank_parity(&ranking, &idx)).abs() < 1e-12);
            let _ = CandidateId(0);
        }
    }
}
