//! Pairwise Disagreement loss (Definition 9) — the preference-representation metric of MFCR.
//!
//! `PD_loss(R, π_C) = Σ_{r ∈ R} d_KT(π_C, r) / (ω(X) · |R|)` — the fraction of pairwise
//! preferences expressed in the base rankings that are *not* honoured by the consensus.

use mani_ranking::{kendall_tau, total_pairs, Ranking, RankingProfile, Result};

/// Sum of Kendall tau distances from the consensus to every base ranking.
pub fn total_kendall_distance(profile: &RankingProfile, consensus: &Ranking) -> Result<u64> {
    let mut total = 0u64;
    for r in profile.rankings() {
        total += kendall_tau(consensus, r)?;
    }
    Ok(total)
}

/// Pairwise Disagreement loss in `[0, 1]` (Definition 9).
pub fn pairwise_disagreement_loss(profile: &RankingProfile, consensus: &Ranking) -> Result<f64> {
    let total = total_kendall_distance(profile, consensus)?;
    let denom = total_pairs(profile.num_candidates()) * profile.len() as u64;
    if denom == 0 {
        return Ok(0.0);
    }
    Ok(total as f64 / denom as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_loss_for_unanimous_agreement() {
        let r = Ranking::identity(6);
        let profile = RankingProfile::new(vec![r.clone(), r.clone(), r.clone()]).unwrap();
        assert_eq!(pairwise_disagreement_loss(&profile, &r).unwrap(), 0.0);
        assert_eq!(total_kendall_distance(&profile, &r).unwrap(), 0);
    }

    #[test]
    fn full_loss_against_unanimous_opposition() {
        let r = Ranking::identity(6);
        let profile = RankingProfile::new(vec![r.clone(); 4]).unwrap();
        let loss = pairwise_disagreement_loss(&profile, &r.reversed()).unwrap();
        assert!((loss - 1.0).abs() < 1e-12);
    }

    #[test]
    fn loss_matches_profile_method() {
        let mut rng = StdRng::seed_from_u64(5);
        let rankings: Vec<Ranking> = (0..5).map(|_| Ranking::random(9, &mut rng)).collect();
        let profile = RankingProfile::new(rankings).unwrap();
        let consensus = Ranking::random(9, &mut rng);
        let a = pairwise_disagreement_loss(&profile, &consensus).unwrap();
        let b = profile.pairwise_disagreement_loss(&consensus).unwrap();
        assert!((a - b).abs() < 1e-15);
    }

    #[test]
    fn length_mismatch_errors() {
        let profile = RankingProfile::new(vec![Ranking::identity(4)]).unwrap();
        assert!(pairwise_disagreement_loss(&profile, &Ranking::identity(5)).is_err());
    }

    proptest! {
        #[test]
        fn prop_loss_bounded_and_monotone_in_distance(
            n in 2usize..12,
            m in 1usize..6,
            seed in any::<u64>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let rankings: Vec<Ranking> = (0..m).map(|_| Ranking::random(n, &mut rng)).collect();
            let profile = RankingProfile::new(rankings.clone()).unwrap();
            let consensus = Ranking::random(n, &mut rng);
            let loss = pairwise_disagreement_loss(&profile, &consensus).unwrap();
            prop_assert!((0.0..=1.0).contains(&loss));
            // The loss of a consensus and of its reversal cover all pairs exactly once per
            // base ranking, so they always sum to 1.
            let anti_loss = pairwise_disagreement_loss(&profile, &consensus.reversed()).unwrap();
            prop_assert!((loss + anti_loss - 1.0).abs() < 1e-9);
        }
    }
}
