//! # mani-fairness
//!
//! Group fairness metrics for rankings over candidates with multiple, multi-valued
//! protected attributes, as defined in the MANI-Rank paper (ICDE 2022):
//!
//! * [`fpr`] — Favored Pair Representation (Definition 4): a group's share of favored
//!   mixed pairs; `0.5` means perfect statistical parity for that group.
//! * [`parity`] — Attribute Rank Parity (ARP, Definition 5) and Intersectional Rank
//!   Parity (IRP, Definition 6): the largest FPR gap between any two groups of an
//!   attribute / of the intersection.
//! * [`criteria`] — the MANI-Rank criteria (Definition 7): `ARP_pk ≤ Δ` for every
//!   protected attribute and `IRP ≤ Δ`, with optional per-attribute thresholds.
//! * [`pd_loss`] — Pairwise Disagreement loss (Definition 9), the preference
//!   representation metric of the MFCR problem.
//! * [`pof`] — Price of Fairness (Equation 13).
//! * [`audit`] — one-call fairness audits producing the per-group / per-attribute rows
//!   reported in the paper's Tables IV and V.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod criteria;
pub mod fpr;
pub mod parity;
pub mod pd_loss;
pub mod pof;

pub use audit::{AttributeAudit, FairnessAudit, GroupAudit};
pub use criteria::{FairnessThresholds, ManiRankCriteria, Violation};
pub use fpr::{group_fpr, group_fprs, FprScores};
pub use parity::{
    attribute_rank_parity, intersectional_rank_parity, max_parity_violation, ParityScores,
};
pub use pd_loss::{pairwise_disagreement_loss, total_kendall_distance};
pub use pof::price_of_fairness;
