//! The MANI-Rank group fairness criteria (Definition 7) and threshold configuration.
//!
//! A ranking satisfies MANI-Rank fairness at level Δ when every protected attribute's ARP
//! and the intersection's IRP are at most Δ. The paper's "Customizing Group Fairness"
//! paragraph additionally allows per-attribute thresholds (`Δ_pk`) and a distinct
//! intersection threshold (`Δ_Inter`); [`FairnessThresholds`] models both forms.

use mani_ranking::{AttributeId, GroupIndex, Ranking};
use serde::{Deserialize, Serialize};

use crate::parity::ParityScores;

/// Desired proximity to statistical parity for each protected attribute and the intersection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FairnessThresholds {
    /// Default Δ applied to any axis without an explicit override.
    default_delta: f64,
    /// Per-attribute overrides, `(attribute index, Δ_pk)`.
    attribute_overrides: Vec<(usize, f64)>,
    /// Override for the intersection, `Δ_Inter`.
    intersection_override: Option<f64>,
    /// Whether the intersection constraint is enforced at all (Figure 3's
    /// "protected attribute only" ablation disables it).
    constrain_intersection: bool,
    /// Whether per-attribute constraints are enforced at all (Figure 3's
    /// "intersection only" ablation disables them).
    constrain_attributes: bool,
}

impl FairnessThresholds {
    /// Uniform threshold Δ for every protected attribute and the intersection —
    /// the common case in the paper.
    pub fn uniform(delta: f64) -> Self {
        Self {
            default_delta: delta,
            attribute_overrides: Vec::new(),
            intersection_override: None,
            constrain_intersection: true,
            constrain_attributes: true,
        }
    }

    /// Constrain only the protected attributes (intersection unconstrained).
    ///
    /// Used for the Figure 3 ablation "protected attribute only group fairness".
    pub fn attributes_only(delta: f64) -> Self {
        let mut t = Self::uniform(delta);
        t.constrain_intersection = false;
        t
    }

    /// Constrain only the intersection (attributes unconstrained).
    ///
    /// Used for the Figure 3 ablation "intersection only group fairness".
    pub fn intersection_only(delta: f64) -> Self {
        let mut t = Self::uniform(delta);
        t.constrain_attributes = false;
        t
    }

    /// No fairness constraints at all — plain consensus ranking.
    pub fn unconstrained() -> Self {
        Self {
            default_delta: 1.0,
            attribute_overrides: Vec::new(),
            intersection_override: None,
            constrain_intersection: false,
            constrain_attributes: false,
        }
    }

    /// Overrides the threshold for a specific attribute (`Δ_pk`).
    pub fn with_attribute_delta(mut self, attribute: AttributeId, delta: f64) -> Self {
        self.attribute_overrides
            .retain(|(a, _)| *a != attribute.index());
        self.attribute_overrides.push((attribute.index(), delta));
        self
    }

    /// Overrides the threshold for the intersection (`Δ_Inter`).
    pub fn with_intersection_delta(mut self, delta: f64) -> Self {
        self.intersection_override = Some(delta);
        self
    }

    /// The default Δ.
    pub fn default_delta(&self) -> f64 {
        self.default_delta
    }

    /// Effective threshold for one protected attribute, or `None` if attributes are
    /// unconstrained.
    pub fn attribute_delta(&self, attribute: AttributeId) -> Option<f64> {
        if !self.constrain_attributes {
            return None;
        }
        Some(
            self.attribute_overrides
                .iter()
                .find(|(a, _)| *a == attribute.index())
                .map(|(_, d)| *d)
                .unwrap_or(self.default_delta),
        )
    }

    /// Effective threshold for the intersection, or `None` if it is unconstrained.
    pub fn intersection_delta(&self) -> Option<f64> {
        if !self.constrain_intersection {
            return None;
        }
        Some(self.intersection_override.unwrap_or(self.default_delta))
    }

    /// True when neither attributes nor intersection are constrained.
    pub fn is_unconstrained(&self) -> bool {
        !self.constrain_attributes && !self.constrain_intersection
    }
}

impl Default for FairnessThresholds {
    /// The paper's most common setting: uniform Δ = 0.1.
    fn default() -> Self {
        Self::uniform(0.1)
    }
}

/// One violated constraint of the MANI-Rank criteria.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Violation {
    /// A protected attribute's ARP exceeds its threshold.
    Attribute {
        /// Index of the violating attribute in the schema.
        attribute: usize,
        /// Measured ARP.
        arp: f64,
        /// Allowed threshold.
        delta: f64,
    },
    /// The intersection's IRP exceeds its threshold.
    Intersection {
        /// Measured IRP.
        irp: f64,
        /// Allowed threshold.
        delta: f64,
    },
}

impl Violation {
    /// The amount by which the constraint is violated.
    pub fn excess(&self) -> f64 {
        match self {
            Violation::Attribute { arp, delta, .. } => arp - delta,
            Violation::Intersection { irp, delta } => irp - delta,
        }
    }
}

/// Evaluation of the MANI-Rank criteria for one ranking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManiRankCriteria {
    satisfied: bool,
    violations: Vec<Violation>,
    parity: ParityScores,
}

impl ManiRankCriteria {
    /// Evaluates MANI-Rank fairness (Definition 7) for `ranking` under `thresholds`.
    pub fn evaluate(
        ranking: &Ranking,
        groups: &GroupIndex,
        thresholds: &FairnessThresholds,
    ) -> Self {
        let parity = ParityScores::compute(ranking, groups);
        Self::from_parity(parity, groups, thresholds)
    }

    /// Evaluates the criteria from precomputed parity scores.
    pub fn from_parity(
        parity: ParityScores,
        groups: &GroupIndex,
        thresholds: &FairnessThresholds,
    ) -> Self {
        const EPS: f64 = 1e-9;
        let mut violations = Vec::new();
        for (attr_id, _) in groups.attributes() {
            if let Some(delta) = thresholds.attribute_delta(attr_id) {
                let arp = parity.arp(attr_id);
                if arp > delta + EPS {
                    violations.push(Violation::Attribute {
                        attribute: attr_id.index(),
                        arp,
                        delta,
                    });
                }
            }
        }
        if let Some(delta) = thresholds.intersection_delta() {
            let irp = parity.irp();
            if irp > delta + EPS {
                violations.push(Violation::Intersection { irp, delta });
            }
        }
        Self {
            satisfied: violations.is_empty(),
            violations,
            parity,
        }
    }

    /// True when every constrained axis is at or below its threshold.
    pub fn is_satisfied(&self) -> bool {
        self.satisfied
    }

    /// The violated constraints, if any.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// The parity scores the evaluation was based on.
    pub fn parity(&self) -> &ParityScores {
        &self.parity
    }

    /// The single worst violation (largest excess), if any.
    pub fn worst_violation(&self) -> Option<&Violation> {
        self.violations
            .iter()
            .max_by(|a, b| a.excess().partial_cmp(&b.excess()).unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mani_ranking::CandidateDbBuilder;

    fn db() -> (mani_ranking::CandidateDb, GroupIndex) {
        let mut b = CandidateDbBuilder::new();
        let g = b.add_attribute("Gender", ["M", "W"]).unwrap();
        let r = b.add_attribute("Race", ["A", "B"]).unwrap();
        for i in 0..8usize {
            b.add_candidate(format!("c{i}"), [(g, i % 2), (r, (i / 2) % 2)])
                .unwrap();
        }
        let db = b.build().unwrap();
        let idx = GroupIndex::new(&db);
        (db, idx)
    }

    #[test]
    fn uniform_thresholds_apply_everywhere() {
        let t = FairnessThresholds::uniform(0.2);
        assert_eq!(
            t.attribute_delta(AttributeId::from_index_for_tests(0)),
            Some(0.2)
        );
        assert_eq!(t.intersection_delta(), Some(0.2));
        assert!(!t.is_unconstrained());
    }

    #[test]
    fn overrides_take_precedence() {
        let attr0 = AttributeId::from_index_for_tests(0);
        let attr1 = AttributeId::from_index_for_tests(1);
        let t = FairnessThresholds::uniform(0.1)
            .with_attribute_delta(attr0, 0.3)
            .with_intersection_delta(0.05);
        assert_eq!(t.attribute_delta(attr0), Some(0.3));
        assert_eq!(t.attribute_delta(attr1), Some(0.1));
        assert_eq!(t.intersection_delta(), Some(0.05));
        // Re-overriding replaces the previous value.
        let t = t.with_attribute_delta(attr0, 0.4);
        assert_eq!(t.attribute_delta(attr0), Some(0.4));
    }

    #[test]
    fn ablation_configurations_disable_axes() {
        let attr0 = AttributeId::from_index_for_tests(0);
        let a = FairnessThresholds::attributes_only(0.1);
        assert_eq!(a.attribute_delta(attr0), Some(0.1));
        assert_eq!(a.intersection_delta(), None);

        let i = FairnessThresholds::intersection_only(0.1);
        assert_eq!(i.attribute_delta(attr0), None);
        assert_eq!(i.intersection_delta(), Some(0.1));

        let u = FairnessThresholds::unconstrained();
        assert!(u.is_unconstrained());
        assert_eq!(u.attribute_delta(attr0), None);
        assert_eq!(u.intersection_delta(), None);
    }

    #[test]
    fn segregated_ranking_violates_tight_delta() {
        let (db, idx) = db();
        // All men on top.
        let mut order: Vec<u32> = (0..8u32).filter(|i| i % 2 == 0).collect();
        order.extend((0..8u32).filter(|i| i % 2 == 1));
        let ranking = Ranking::from_ids(order).unwrap();
        let result = ManiRankCriteria::evaluate(&ranking, &idx, &FairnessThresholds::uniform(0.1));
        assert!(!result.is_satisfied());
        assert!(!result.violations().is_empty());
        let worst = result.worst_violation().unwrap();
        assert!(worst.excess() > 0.0);
        drop(db);
    }

    #[test]
    fn loose_delta_is_always_satisfied() {
        let (_db, idx) = db();
        let ranking = Ranking::identity(8);
        let result = ManiRankCriteria::evaluate(&ranking, &idx, &FairnessThresholds::uniform(1.0));
        assert!(result.is_satisfied());
        assert!(result.violations().is_empty());
        assert!(result.worst_violation().is_none());
    }

    #[test]
    fn unconstrained_never_violates() {
        let (_db, idx) = db();
        let mut order: Vec<u32> = (0..8u32).filter(|i| i % 2 == 0).collect();
        order.extend((0..8u32).filter(|i| i % 2 == 1));
        let ranking = Ranking::from_ids(order).unwrap();
        let result =
            ManiRankCriteria::evaluate(&ranking, &idx, &FairnessThresholds::unconstrained());
        assert!(result.is_satisfied());
    }

    #[test]
    fn attributes_only_ignores_intersection_violation() {
        // Build the "hidden intersectional bias" example from the parity tests: attributes
        // balanced but intersection strongly biased.
        let mut b = CandidateDbBuilder::new();
        let g = b.add_attribute("Gender", ["M", "W"]).unwrap();
        let r = b.add_attribute("Race", ["A", "B"]).unwrap();
        let spec: [(usize, usize); 8] = [
            (0, 0),
            (1, 1),
            (0, 0),
            (1, 1),
            (1, 0),
            (0, 1),
            (1, 0),
            (0, 1),
        ];
        for (i, (gv, rv)) in spec.iter().enumerate() {
            b.add_candidate(format!("c{i}"), [(g, *gv), (r, *rv)])
                .unwrap();
        }
        let db = b.build().unwrap();
        let idx = GroupIndex::new(&db);
        let ranking = Ranking::identity(8);

        let attrs_only =
            ManiRankCriteria::evaluate(&ranking, &idx, &FairnessThresholds::attributes_only(0.4));
        assert!(
            attrs_only.is_satisfied(),
            "attribute-only check should pass"
        );

        let full = ManiRankCriteria::evaluate(&ranking, &idx, &FairnessThresholds::uniform(0.4));
        assert!(
            !full.is_satisfied(),
            "full MANI-Rank check should catch the intersection"
        );
        assert!(full
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::Intersection { .. })));
    }

    #[test]
    fn violation_excess_is_positive_amount_over_threshold() {
        let v = Violation::Attribute {
            attribute: 0,
            arp: 0.5,
            delta: 0.1,
        };
        assert!((v.excess() - 0.4).abs() < 1e-12);
        let v = Violation::Intersection {
            irp: 0.3,
            delta: 0.05,
        };
        assert!((v.excess() - 0.25).abs() < 1e-12);
    }

    // Test-only constructor for AttributeId since its field is crate-private in mani-ranking.
    trait AttrIdTestExt {
        fn from_index_for_tests(i: usize) -> AttributeId;
    }
    impl AttrIdTestExt for AttributeId {
        fn from_index_for_tests(i: usize) -> AttributeId {
            // Round-trip through a schema to obtain a real id.
            let mut b = CandidateDbBuilder::new();
            let mut ids = Vec::new();
            for k in 0..=i {
                ids.push(b.add_attribute(format!("attr{k}"), ["a", "b"]).unwrap());
            }
            ids[i]
        }
    }
}
