//! Fairness audits: one-call summaries of a ranking's group treatment.
//!
//! The paper's case studies (Tables IV and V) report, for every ranking, the FPR of every
//! protected attribute group, the ARP of every attribute, and the IRP. [`FairnessAudit`]
//! produces exactly that structure, ready to be formatted as a table row.

use mani_ranking::{CandidateDb, GroupIndex, Ranking};
use serde::{Deserialize, Serialize};

use crate::fpr::group_fprs;
use crate::parity::ParityScores;

/// FPR of one group, labelled with its attribute and value names.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupAudit {
    /// Attribute name (or `"Intersection"`).
    pub attribute: String,
    /// Group label (value name or intersection label).
    pub group: String,
    /// Number of candidates in the group.
    pub size: usize,
    /// FPR score, `None` when the group has no mixed pairs.
    pub fpr: Option<f64>,
}

/// Audit of one protected attribute: its groups' FPR scores and its ARP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributeAudit {
    /// Attribute name.
    pub attribute: String,
    /// Per-group FPR scores.
    pub groups: Vec<GroupAudit>,
    /// Attribute Rank Parity.
    pub arp: f64,
}

/// Complete fairness audit of one ranking, mirroring a row of the paper's Tables IV/V.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FairnessAudit {
    /// Label identifying the audited ranking (e.g. `"Kemeny"` or `"Math"`).
    pub label: String,
    /// One audit per protected attribute, in schema order.
    pub attributes: Vec<AttributeAudit>,
    /// FPR scores of non-empty intersectional groups.
    pub intersection_groups: Vec<GroupAudit>,
    /// Intersectional Rank Parity.
    pub irp: f64,
}

impl FairnessAudit {
    /// Audits `ranking` against the database's protected attribute structure.
    pub fn new(
        label: impl Into<String>,
        ranking: &Ranking,
        db: &CandidateDb,
        groups: &GroupIndex,
    ) -> Self {
        let schema = db.schema();
        let parity = ParityScores::compute(ranking, groups);
        let mut attributes = Vec::with_capacity(schema.num_attributes());
        for (attr_id, attr) in schema.attributes() {
            let fprs = group_fprs(ranking, groups.attribute(attr_id));
            let group_audits = attr
                .values()
                .enumerate()
                .map(|(value_index, value_name)| GroupAudit {
                    attribute: attr.name().to_string(),
                    group: value_name.to_string(),
                    size: groups.attribute(attr_id).group_size(value_index),
                    fpr: fprs.score(value_index),
                })
                .collect();
            attributes.push(AttributeAudit {
                attribute: attr.name().to_string(),
                groups: group_audits,
                arp: parity.arp(attr_id),
            });
        }
        let inter_fprs = group_fprs(ranking, groups.intersection());
        let intersection_groups = groups
            .intersection()
            .non_empty_groups()
            .map(|code| GroupAudit {
                attribute: "Intersection".to_string(),
                group: schema.intersection_label(code),
                size: groups.intersection().group_size(code),
                fpr: inter_fprs.score(code),
            })
            .collect();
        Self {
            label: label.into(),
            attributes,
            intersection_groups,
            irp: parity.irp(),
        }
    }

    /// ARP of the named attribute, if present.
    pub fn arp_of(&self, attribute: &str) -> Option<f64> {
        self.attributes
            .iter()
            .find(|a| a.attribute == attribute)
            .map(|a| a.arp)
    }

    /// FPR of the named attribute value, if present and defined.
    pub fn fpr_of(&self, attribute: &str, group: &str) -> Option<f64> {
        self.attributes
            .iter()
            .find(|a| a.attribute == attribute)?
            .groups
            .iter()
            .find(|g| g.group == group)?
            .fpr
    }

    /// Largest parity violation (max over all ARPs and the IRP).
    pub fn max_violation(&self) -> f64 {
        self.attributes
            .iter()
            .map(|a| a.arp)
            .fold(self.irp, f64::max)
    }

    /// Formats the audit as a compact single-line summary.
    pub fn summary(&self) -> String {
        let mut parts = vec![format!("{}:", self.label)];
        for attr in &self.attributes {
            parts.push(format!("ARP({})={:.3}", attr.attribute, attr.arp));
        }
        parts.push(format!("IRP={:.3}", self.irp));
        parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mani_ranking::CandidateDbBuilder;

    fn db() -> (CandidateDb, GroupIndex) {
        let mut b = CandidateDbBuilder::new();
        let g = b.add_attribute("Gender", ["Man", "Woman"]).unwrap();
        let l = b.add_attribute("Lunch", ["NoSub", "Sub"]).unwrap();
        for i in 0..8usize {
            b.add_candidate(format!("s{i}"), [(g, i % 2), (l, (i / 4) % 2)])
                .unwrap();
        }
        let db = b.build().unwrap();
        let idx = GroupIndex::new(&db);
        (db, idx)
    }

    #[test]
    fn audit_lists_every_attribute_and_group() {
        let (db, idx) = db();
        let audit = FairnessAudit::new("identity", &Ranking::identity(8), &db, &idx);
        assert_eq!(audit.attributes.len(), 2);
        assert_eq!(audit.attributes[0].groups.len(), 2);
        assert_eq!(audit.intersection_groups.len(), 4);
        assert_eq!(audit.label, "identity");
    }

    #[test]
    fn audit_lookups_by_name() {
        let (db, idx) = db();
        let audit = FairnessAudit::new("r", &Ranking::identity(8), &db, &idx);
        assert!(audit.arp_of("Gender").is_some());
        assert!(audit.arp_of("Missing").is_none());
        assert!(audit.fpr_of("Gender", "Man").is_some());
        assert!(audit.fpr_of("Gender", "Other").is_none());
        // binary attribute: FPRs sum to one
        let man = audit.fpr_of("Gender", "Man").unwrap();
        let woman = audit.fpr_of("Gender", "Woman").unwrap();
        assert!((man + woman - 1.0).abs() < 1e-12);
    }

    #[test]
    fn audit_matches_parity_scores() {
        let (db, idx) = db();
        let ranking = Ranking::identity(8).reversed();
        let audit = FairnessAudit::new("rev", &ranking, &db, &idx);
        let parity = ParityScores::compute(&ranking, &idx);
        let gender = db.schema().attribute_id("Gender").unwrap();
        assert!((audit.arp_of("Gender").unwrap() - parity.arp(gender)).abs() < 1e-12);
        assert!((audit.irp - parity.irp()).abs() < 1e-12);
        assert!(audit.max_violation() >= audit.irp);
    }

    #[test]
    fn audit_group_sizes_sum_to_population() {
        let (db, idx) = db();
        let audit = FairnessAudit::new("r", &Ranking::identity(8), &db, &idx);
        for attr in &audit.attributes {
            let total: usize = attr.groups.iter().map(|g| g.size).sum();
            assert_eq!(total, 8);
        }
        let total: usize = audit.intersection_groups.iter().map(|g| g.size).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn summary_mentions_every_attribute() {
        let (db, idx) = db();
        let audit = FairnessAudit::new("Kemeny", &Ranking::identity(8), &db, &idx);
        let s = audit.summary();
        assert!(s.contains("Kemeny"));
        assert!(s.contains("ARP(Gender)"));
        assert!(s.contains("ARP(Lunch)"));
        assert!(s.contains("IRP"));
    }

    #[test]
    fn serde_roundtrip() {
        let (db, idx) = db();
        let audit = FairnessAudit::new("r", &Ranking::identity(8), &db, &idx);
        let json = serde_json::to_string(&audit).unwrap();
        let back: FairnessAudit = serde_json::from_str(&json).unwrap();
        assert_eq!(audit, back);
    }
}
