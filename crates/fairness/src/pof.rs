//! Price of Fairness (Equation 13 of the paper).
//!
//! `PoF = PD_loss(R, π_C*) − PD_loss(R, π_C)`: the increase in pairwise disagreement loss
//! paid by the fair consensus ranking `π_C*` relative to the fairness-unaware consensus
//! `π_C`. It is non-negative whenever the unfair consensus optimises PD loss.

use mani_ranking::{Ranking, RankingProfile, Result};

use crate::pd_loss::pairwise_disagreement_loss;

/// Price of Fairness between a fair consensus and a fairness-unaware consensus.
pub fn price_of_fairness(
    profile: &RankingProfile,
    fair_consensus: &Ranking,
    unfair_consensus: &Ranking,
) -> Result<f64> {
    let fair = pairwise_disagreement_loss(profile, fair_consensus)?;
    let unfair = pairwise_disagreement_loss(profile, unfair_consensus)?;
    Ok(fair - unfair)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identical_rankings_have_zero_pof() {
        let r = Ranking::identity(5);
        let profile = RankingProfile::new(vec![r.clone(), r.clone()]).unwrap();
        assert_eq!(price_of_fairness(&profile, &r, &r).unwrap(), 0.0);
    }

    #[test]
    fn pof_positive_when_fair_ranking_disagrees_more() {
        let base = Ranking::identity(6);
        let profile = RankingProfile::new(vec![base.clone(); 3]).unwrap();
        // "fair" ranking = reversal (maximally distant), "unfair" = the base itself.
        let pof = price_of_fairness(&profile, &base.reversed(), &base).unwrap();
        assert!((pof - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pof_is_antisymmetric_in_its_arguments() {
        let mut rng = StdRng::seed_from_u64(1);
        let rankings: Vec<Ranking> = (0..4).map(|_| Ranking::random(7, &mut rng)).collect();
        let profile = RankingProfile::new(rankings).unwrap();
        let a = Ranking::random(7, &mut rng);
        let b = Ranking::random(7, &mut rng);
        let ab = price_of_fairness(&profile, &a, &b).unwrap();
        let ba = price_of_fairness(&profile, &b, &a).unwrap();
        assert!((ab + ba).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_pof_bounded_by_unit_interval(n in 2usize..10, m in 1usize..5, seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let rankings: Vec<Ranking> = (0..m).map(|_| Ranking::random(n, &mut rng)).collect();
            let profile = RankingProfile::new(rankings).unwrap();
            let fair = Ranking::random(n, &mut rng);
            let unfair = Ranking::random(n, &mut rng);
            let pof = price_of_fairness(&profile, &fair, &unfair).unwrap();
            prop_assert!((-1.0..=1.0).contains(&pof));
        }
    }
}
