//! Favored Pair Representation (FPR) — Definition 4 of the paper.
//!
//! For a group `G` in ranking `π`, `FPR_G(π)` is the fraction of `G`'s mixed pairs in
//! which the `G` member is favored (ranked above the non-member):
//!
//! ```text
//! FPR_G(π) = Σ_{x ∈ G} #{ y ∉ G : x ≺_π y }  /  (|G| · (|X| - |G|))
//! ```
//!
//! `FPR = 0` means the group sits entirely at the bottom, `1` entirely at the top, and
//! `0.5` means the group receives its directly proportional share of favored positions —
//! i.e. statistical parity for that group.
//!
//! The implementation computes the FPR of *every* group along a grouping axis (one
//! protected attribute or the intersection) in a single O(n + g) pass over the ranking,
//! by walking from the bottom up and tracking how many already-seen candidates lie below
//! each group.

use mani_ranking::{GroupMembership, Ranking};
use serde::{Deserialize, Serialize};

/// FPR scores of every group along one grouping axis (attribute or intersection).
///
/// Groups that have no members, or that cover the entire database (no mixed pairs),
/// carry `None` — their fair treatment is undefined.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FprScores {
    scores: Vec<Option<f64>>,
}

impl FprScores {
    /// FPR of group `g`, or `None` if the group has no mixed pairs.
    pub fn score(&self, g: usize) -> Option<f64> {
        self.scores.get(g).copied().flatten()
    }

    /// All scores, indexed by group id along the axis.
    pub fn scores(&self) -> &[Option<f64>] {
        &self.scores
    }

    /// Iterates over `(group index, score)` for groups with defined scores.
    pub fn defined(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.scores
            .iter()
            .enumerate()
            .filter_map(|(g, s)| s.map(|v| (g, v)))
    }

    /// Largest absolute FPR difference between any two groups with defined scores.
    ///
    /// This is exactly ARP (for an attribute axis) or IRP (for the intersection axis).
    /// Returns `0.0` when fewer than two groups have defined scores.
    pub fn max_pairwise_gap(&self) -> f64 {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut count = 0usize;
        for (_, v) in self.defined() {
            min = min.min(v);
            max = max.max(v);
            count += 1;
        }
        if count < 2 {
            0.0
        } else {
            max - min
        }
    }

    /// Group index with the highest FPR (ties broken by lower group index).
    pub fn argmax(&self) -> Option<usize> {
        self.defined()
            .fold(None, |best: Option<(usize, f64)>, (g, v)| match best {
                Some((_, bv)) if bv >= v => best,
                _ => Some((g, v)),
            })
            .map(|(g, _)| g)
    }

    /// Group index with the lowest FPR (ties broken by lower group index).
    pub fn argmin(&self) -> Option<usize> {
        self.defined()
            .fold(None, |best: Option<(usize, f64)>, (g, v)| match best {
                Some((_, bv)) if bv <= v => best,
                _ => Some((g, v)),
            })
            .map(|(g, _)| g)
    }
}

/// Computes the FPR of every group along one grouping axis in a single pass.
///
/// # Panics
/// Panics if the ranking and membership table cover different numbers of candidates;
/// that is a programming error (they must come from the same database).
#[allow(clippy::explicit_counter_loop)] // seen_total counts candidates walked, not loop turns
pub fn group_fprs(ranking: &Ranking, membership: &GroupMembership) -> FprScores {
    assert_eq!(
        ranking.len(),
        membership.num_candidates(),
        "ranking and group membership must cover the same candidates"
    );
    let n = ranking.len();
    let num_groups = membership.num_groups();

    // favored[g] accumulates, over members x of g, the number of non-members below x.
    let mut favored = vec![0u64; num_groups];
    // seen_below[g] = how many members of g we have already passed walking bottom-up.
    let mut seen_below = vec![0u64; num_groups];
    let mut seen_total = 0u64;

    for pos in (0..n).rev() {
        let candidate = ranking.candidate_at(pos);
        let g = membership.group_of(candidate);
        // Candidates below this one that are NOT in g:
        favored[g] += seen_total - seen_below[g];
        seen_below[g] += 1;
        seen_total += 1;
    }

    let scores = (0..num_groups)
        .map(|g| {
            let size = membership.group_size(g);
            let mixed = mani_ranking::mixed_pairs_for_group(size, n);
            if mixed == 0 {
                None
            } else {
                Some(favored[g] as f64 / mixed as f64)
            }
        })
        .collect();
    FprScores { scores }
}

/// FPR of a single group along an axis. Convenience wrapper over [`group_fprs`].
pub fn group_fpr(ranking: &Ranking, membership: &GroupMembership, group: usize) -> Option<f64> {
    group_fprs(ranking, membership).score(group)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mani_ranking::pairs::favored_mixed_pairs_of;
    use mani_ranking::{
        mixed_pairs_for_group, CandidateDb, CandidateDbBuilder, CandidateId, GroupIndex,
    };
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Database with one binary attribute split sizes (na, nb) in blocks.
    fn binary_db(na: usize, nb: usize) -> (CandidateDb, GroupIndex) {
        let mut b = CandidateDbBuilder::new();
        let g = b.add_attribute("G", ["a", "b"]).unwrap();
        for i in 0..(na + nb) {
            let v = usize::from(i >= na);
            b.add_candidate(format!("c{i}"), [(g, v)]).unwrap();
        }
        let db = b.build().unwrap();
        let idx = GroupIndex::new(&db);
        (db, idx)
    }

    /// Reference FPR computed with the O(n²) per-candidate helper from mani-ranking.
    fn reference_fpr(
        ranking: &Ranking,
        membership: &GroupMembership,
        group: usize,
        n: usize,
    ) -> Option<f64> {
        let size = membership.group_size(group);
        let mixed = mixed_pairs_for_group(size, n);
        if mixed == 0 {
            return None;
        }
        let mut favored = 0u64;
        for c in 0..n as u32 {
            let cand = CandidateId(c);
            if membership.group_of(cand) == group {
                favored += favored_mixed_pairs_of(ranking, membership, cand);
            }
        }
        Some(favored as f64 / mixed as f64)
    }

    #[test]
    fn group_on_top_has_fpr_one() {
        let (_db, idx) = binary_db(3, 5);
        let gender = idx.attributes().next().unwrap().0;
        // identity ranking: group a occupies positions 0..3 (top)
        let r = Ranking::identity(8);
        let scores = group_fprs(&r, idx.attribute(gender));
        assert_eq!(scores.score(0), Some(1.0));
        assert_eq!(scores.score(1), Some(0.0));
        assert_eq!(scores.max_pairwise_gap(), 1.0);
        assert_eq!(scores.argmax(), Some(0));
        assert_eq!(scores.argmin(), Some(1));
    }

    #[test]
    fn perfectly_interleaved_binary_groups_near_half() {
        // equal-size groups alternating a,b,a,b,... FPR_a slightly above 0.5, FPR_b below;
        // with sizes 4/4 the exact values are 10/16 and 6/16.
        let mut b = CandidateDbBuilder::new();
        let g = b.add_attribute("G", ["a", "b"]).unwrap();
        for i in 0..8usize {
            b.add_candidate(format!("c{i}"), [(g, i % 2)]).unwrap();
        }
        let db = b.build().unwrap();
        let idx = GroupIndex::new(&db);
        let r = Ranking::identity(8);
        let scores = group_fprs(&r, idx.attribute(idx.attributes().next().unwrap().0));
        assert!((scores.score(0).unwrap() - 10.0 / 16.0).abs() < 1e-12);
        assert!((scores.score(1).unwrap() - 6.0 / 16.0).abs() < 1e-12);
        drop(db);
    }

    #[test]
    fn single_group_axis_has_no_defined_scores() {
        // Attribute with two declared values but all candidates share one value:
        // the lone non-empty group has zero mixed pairs -> None.
        let mut b = CandidateDbBuilder::new();
        let g = b.add_attribute("G", ["a", "b"]).unwrap();
        for i in 0..4usize {
            b.add_candidate(format!("c{i}"), [(g, 0)]).unwrap();
        }
        let db = b.build().unwrap();
        let idx = GroupIndex::new(&db);
        let axis = idx.attribute(idx.attributes().next().unwrap().0);
        let scores = group_fprs(&Ranking::identity(4), axis);
        assert_eq!(scores.score(0), None);
        assert_eq!(scores.score(1), None);
        assert_eq!(scores.max_pairwise_gap(), 0.0);
        assert_eq!(scores.argmax(), None);
    }

    #[test]
    fn fpr_symmetric_binary_complement() {
        // For a binary attribute with groups of sizes na and nb the favored counts of the two
        // groups sum to the number of mixed pairs, so FPR_a + FPR_b = 1.
        let (_db, idx) = binary_db(4, 9);
        let axis = idx.attribute(idx.attributes().next().unwrap().0);
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            let r = Ranking::random(13, &mut rng);
            let s = group_fprs(&r, axis);
            assert!((s.score(0).unwrap() + s.score(1).unwrap() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn intersection_axis_fprs_defined_for_nonempty_cells() {
        let mut b = CandidateDbBuilder::new();
        let g = b.add_attribute("G", ["m", "w"]).unwrap();
        let r = b.add_attribute("R", ["x", "y", "z"]).unwrap();
        for i in 0..12usize {
            b.add_candidate(format!("c{i}"), [(g, i % 2), (r, i % 3)])
                .unwrap();
        }
        let db = b.build().unwrap();
        let idx = GroupIndex::new(&db);
        let scores = group_fprs(&Ranking::identity(12), idx.intersection());
        let defined: Vec<_> = scores.defined().collect();
        assert_eq!(defined.len(), 6);
        for (_, v) in defined {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    proptest! {
        #[test]
        fn prop_fast_fpr_matches_reference(
            n_a in 1usize..10,
            n_b in 1usize..10,
            n_c in 0usize..10,
            seed in any::<u64>(),
        ) {
            let mut b = CandidateDbBuilder::new();
            let attr = b.add_attribute("G", ["a", "b", "c"]).unwrap();
            let mut count = 0usize;
            for (value, reps) in [(0usize, n_a), (1, n_b), (2, n_c)] {
                for _ in 0..reps {
                    b.add_candidate(format!("c{count}"), [(attr, value)]).unwrap();
                    count += 1;
                }
            }
            let db = b.build().unwrap();
            let idx = GroupIndex::new(&db);
            let axis = idx.attribute(attr);
            let mut rng = StdRng::seed_from_u64(seed);
            let ranking = Ranking::random(count, &mut rng);
            let fast = group_fprs(&ranking, axis);
            for g in 0..axis.num_groups() {
                let reference = reference_fpr(&ranking, axis, g, count);
                match (fast.score(g), reference) {
                    (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-12),
                    (a, b) => prop_assert_eq!(a, b),
                }
            }
        }

        #[test]
        fn prop_fpr_bounds_and_extremes(n_a in 1usize..8, n_b in 1usize..8, seed in any::<u64>()) {
            let (_db, idx) = binary_db(n_a, n_b);
            let axis = idx.attribute(idx.attributes().next().unwrap().0);
            let mut rng = StdRng::seed_from_u64(seed);
            let ranking = Ranking::random(n_a + n_b, &mut rng);
            let scores = group_fprs(&ranking, axis);
            for (_, v) in scores.defined() {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
    }
}
