//! Mallows ranking model sampled with the Repeated Insertion Method (RIM).
//!
//! The Mallows model (Mallows 1957) is an exponential location–spread distribution over
//! permutations: `P(π) ∝ exp(−θ · d_KT(π, π₀))` where `π₀` is the modal ranking and `θ ≥ 0`
//! the dispersion. The paper uses it to generate base rankings whose *consensus strength*
//! is controlled by θ (θ = 0: uniform noise, larger θ: rankings concentrate around `π₀`).
//!
//! RIM (Doignon et al. 2004) samples exactly from the Mallows distribution: processing the
//! modal ranking top-down, item `i` (1-based) is inserted at position `j ∈ {1..i}` of the
//! partial ranking with probability proportional to `exp(−θ · (i − j))`.

use mani_ranking::{CandidateId, Ranking, RankingProfile};
use rand::Rng;

use crate::seed::{derive_seed, rng_from_seed};

/// A Mallows distribution over rankings.
#[derive(Debug, Clone)]
pub struct MallowsModel {
    modal: Ranking,
    theta: f64,
    /// Cumulative insertion weights per step, precomputed once.
    insertion_cdf: Vec<Vec<f64>>,
}

impl MallowsModel {
    /// Creates a Mallows model with modal ranking `modal` and dispersion `theta ≥ 0`.
    pub fn new(modal: Ranking, theta: f64) -> Self {
        assert!(theta >= 0.0, "dispersion must be non-negative");
        let n = modal.len();
        // At step i (0-based, inserting the (i+1)-th item) there are i+1 slots; slot j
        // (0 = top) displaces (i - j)… the paper's convention: inserting at position j of i+1
        // slots costs (i + 1 - 1 - j) = i - j inversions relative to the modal order.
        let mut insertion_cdf = Vec::with_capacity(n);
        for i in 0..n {
            let mut cdf = Vec::with_capacity(i + 1);
            let mut acc = 0.0f64;
            for j in 0..=i {
                let inversions = (i - j) as f64;
                acc += (-theta * inversions).exp();
                cdf.push(acc);
            }
            insertion_cdf.push(cdf);
        }
        Self {
            modal,
            theta,
            insertion_cdf,
        }
    }

    /// The modal (location) ranking.
    pub fn modal(&self) -> &Ranking {
        &self.modal
    }

    /// The dispersion parameter θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws one ranking.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Ranking {
        let n = self.modal.len();
        let mut order: Vec<CandidateId> = Vec::with_capacity(n);
        for i in 0..n {
            let item = self.modal.candidate_at(i);
            let cdf = &self.insertion_cdf[i];
            let total = *cdf.last().expect("cdf never empty");
            let draw = rng.gen::<f64>() * total;
            let slot = cdf.partition_point(|&c| c < draw).min(i);
            order.insert(slot, item);
        }
        Ranking::from_order(order).expect("insertion preserves the permutation property")
    }

    /// Draws a profile of `m` base rankings, deterministically derived from `seed`.
    pub fn sample_profile(&self, m: usize, seed: u64) -> RankingProfile {
        assert!(m > 0, "a profile needs at least one ranking");
        let rankings: Vec<Ranking> = (0..m)
            .map(|i| {
                let mut rng = rng_from_seed(derive_seed(seed, i as u64));
                self.sample(&mut rng)
            })
            .collect();
        RankingProfile::new(rankings).expect("m > 0 rankings of equal length")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mani_ranking::{kendall_tau, total_pairs};
    use proptest::prelude::*;

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_theta_is_rejected() {
        let _ = MallowsModel::new(Ranking::identity(4), -0.5);
    }

    #[test]
    fn samples_are_valid_permutations() {
        let model = MallowsModel::new(Ranking::identity(20), 0.4);
        let mut rng = rng_from_seed(1);
        for _ in 0..20 {
            let r = model.sample(&mut rng);
            r.check_invariants().unwrap();
            assert_eq!(r.len(), 20);
        }
    }

    #[test]
    fn high_theta_concentrates_on_the_modal_ranking() {
        let modal = Ranking::identity(12);
        let model = MallowsModel::new(modal.clone(), 8.0);
        let mut rng = rng_from_seed(2);
        for _ in 0..10 {
            let r = model.sample(&mut rng);
            assert!(kendall_tau(&r, &modal).unwrap() <= 2);
        }
    }

    #[test]
    fn theta_zero_is_close_to_uniform() {
        // With theta = 0 the expected normalised Kendall distance to the modal ranking is 0.5.
        let modal = Ranking::identity(15);
        let model = MallowsModel::new(modal.clone(), 0.0);
        let mut rng = rng_from_seed(3);
        let samples = 300;
        let mean: f64 = (0..samples)
            .map(|_| {
                kendall_tau(&model.sample(&mut rng), &modal).unwrap() as f64
                    / total_pairs(15) as f64
            })
            .sum::<f64>()
            / samples as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean normalised distance {mean}");
    }

    #[test]
    fn larger_theta_means_smaller_expected_distance() {
        let modal = Ranking::identity(20);
        let mut rng = rng_from_seed(4);
        let mean_distance = |theta: f64, rng: &mut rand::rngs::StdRng| -> f64 {
            let model = MallowsModel::new(modal.clone(), theta);
            (0..100)
                .map(|_| kendall_tau(&model.sample(rng), &modal).unwrap() as f64)
                .sum::<f64>()
                / 100.0
        };
        let d_low = mean_distance(0.2, &mut rng);
        let d_mid = mean_distance(0.6, &mut rng);
        let d_high = mean_distance(1.2, &mut rng);
        assert!(
            d_low > d_mid && d_mid > d_high,
            "{d_low} > {d_mid} > {d_high}"
        );
    }

    #[test]
    fn sample_profile_is_deterministic_in_the_seed() {
        let model = MallowsModel::new(Ranking::identity(10), 0.5);
        let a = model.sample_profile(5, 99);
        let b = model.sample_profile(5, 99);
        assert_eq!(a.rankings(), b.rankings());
        let c = model.sample_profile(5, 100);
        assert_ne!(a.rankings(), c.rankings());
        assert_eq!(a.len(), 5);
        assert_eq!(a.num_candidates(), 10);
    }

    #[test]
    fn accessors_expose_parameters() {
        let modal = Ranking::identity(6);
        let model = MallowsModel::new(modal.clone(), 0.7);
        assert_eq!(model.modal(), &modal);
        assert!((model.theta() - 0.7).abs() < 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn prop_samples_always_valid(n in 1usize..30, theta in 0.0f64..3.0, seed in any::<u64>()) {
            let model = MallowsModel::new(Ranking::identity(n), theta);
            let mut rng = rng_from_seed(seed);
            let r = model.sample(&mut rng);
            prop_assert!(r.check_invariants().is_ok());
        }
    }
}
