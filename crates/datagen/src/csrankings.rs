//! Synthetic CSRankings-style dataset for the Table V case study.
//!
//! The paper's appendix aggregates 21 yearly rankings (2000–2020) of 65 US computer-science
//! departments, with protected attributes Location (Northeast / Midwest / West / South) and
//! Type (Private / Public). The scrape is not available offline, so this module synthesises
//! an equivalent: each department gets a persistent latent "strength" with a positive bump
//! for Northeast and Private institutions and a penalty for Southern ones, plus independent
//! yearly noise. This reproduces the qualitative structure of Table V — every yearly ranking
//! and the Kemeny consensus favour Northeast/Private departments (high ARP for Location,
//! noticeable IRP) — which is what the Fair-* methods then remove.

use mani_ranking::{CandidateDb, CandidateDbBuilder, GroupIndex, Ranking, RankingProfile};
use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use crate::seed::rng_from_seed;

/// Configuration of the synthetic CSRankings dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsRankingsConfig {
    /// Number of departments (the paper uses 65).
    pub num_departments: usize,
    /// Number of yearly rankings (the paper uses 21: 2000–2020).
    pub num_years: usize,
    /// Strength bump for Northeast departments.
    pub northeast_advantage: f64,
    /// Strength bump for Private departments.
    pub private_advantage: f64,
    /// Penalty for Southern departments.
    pub south_penalty: f64,
    /// Std-dev of persistent departmental strength.
    pub strength_noise: f64,
    /// Std-dev of the yearly fluctuation.
    pub yearly_noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CsRankingsConfig {
    fn default() -> Self {
        Self {
            num_departments: 65,
            num_years: 21,
            northeast_advantage: 1.1,
            private_advantage: 0.8,
            south_penalty: 1.0,
            strength_noise: 1.0,
            yearly_noise: 0.6,
            seed: 0xC5A9,
        }
    }
}

/// Region labels, mirroring the paper.
const REGIONS: [&str; 4] = ["Northeast", "Midwest", "West", "South"];
/// Region shares (Northeast slightly over-represented, as among top CS departments).
const REGION_SHARES: [f64; 4] = [0.32, 0.23, 0.25, 0.20];

/// The generated dataset: departments plus the per-year rankings.
#[derive(Debug, Clone)]
pub struct CsRankingsDataset {
    /// Departments with Location and Type attributes.
    pub db: CandidateDb,
    /// One base ranking per year, oldest first.
    pub profile: RankingProfile,
    /// Year labels aligned with the profile (e.g. `2000..=2020`).
    pub years: Vec<u32>,
}

impl CsRankingsDataset {
    /// Generates the dataset.
    pub fn generate(config: &CsRankingsConfig) -> Self {
        assert!(
            config.num_departments >= 8,
            "need a meaningful department set"
        );
        assert!(config.num_years >= 1, "need at least one yearly ranking");
        let mut rng = rng_from_seed(config.seed);
        let mut builder = CandidateDbBuilder::new();
        let location = builder
            .add_attribute("Location", REGIONS)
            .expect("static attribute");
        let kind = builder
            .add_attribute("Type", ["Private", "Public"])
            .expect("static attribute");

        let strength_noise = Normal::new(0.0, config.strength_noise).expect("positive std dev");
        let yearly_noise = Normal::new(0.0, config.yearly_noise).expect("positive std dev");

        let mut strengths = Vec::with_capacity(config.num_departments);
        for i in 0..config.num_departments {
            let region = sample_region(&mut rng);
            let private = usize::from(rng.gen::<f64>() >= 0.45); // 0 = Private, 1 = Public
            builder
                .add_candidate(
                    format!("dept-{i:02}"),
                    [(location, region), (kind, private)],
                )
                .expect("assignments within domains");
            let mut strength = strength_noise.sample(&mut rng);
            if region == 0 {
                strength += config.northeast_advantage;
            }
            if region == 3 {
                strength -= config.south_penalty;
            }
            if private == 0 {
                strength += config.private_advantage;
            }
            strengths.push(strength);
        }
        let db = builder.build().expect("non-empty database");

        let mut rankings = Vec::with_capacity(config.num_years);
        for _ in 0..config.num_years {
            let scores: Vec<f64> = strengths
                .iter()
                .map(|&s| s + yearly_noise.sample(&mut rng))
                .collect();
            rankings.push(Ranking::from_scores(&scores).expect("one score per department"));
        }
        let profile = RankingProfile::for_database(&db, rankings).expect("sizes match");
        let years = (0..config.num_years as u32).map(|y| 2000 + y).collect();
        Self { db, profile, years }
    }

    /// Group index over the department database.
    pub fn group_index(&self) -> GroupIndex {
        GroupIndex::new(&self.db)
    }
}

fn sample_region<R: Rng>(rng: &mut R) -> usize {
    let mut draw = rng.gen::<f64>();
    for (i, &share) in REGION_SHARES.iter().enumerate() {
        if draw < share {
            return i;
        }
        draw -= share;
    }
    REGION_SHARES.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use mani_fairness::{group_fprs, ParityScores};

    #[test]
    fn dataset_has_expected_shape() {
        let ds = CsRankingsDataset::generate(&CsRankingsConfig::default());
        assert_eq!(ds.db.len(), 65);
        assert_eq!(ds.profile.len(), 21);
        assert_eq!(ds.years.len(), 21);
        assert_eq!(*ds.years.first().unwrap(), 2000);
        assert_eq!(*ds.years.last().unwrap(), 2020);
        assert_eq!(ds.db.schema().intersection_cardinality(), 8);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = CsRankingsDataset::generate(&CsRankingsConfig::default());
        let b = CsRankingsDataset::generate(&CsRankingsConfig::default());
        assert_eq!(a.db, b.db);
        assert_eq!(a.profile.rankings(), b.profile.rankings());
    }

    #[test]
    fn yearly_rankings_favor_northeast_and_private() {
        let ds = CsRankingsDataset::generate(&CsRankingsConfig::default());
        let idx = ds.group_index();
        let location = ds.db.schema().attribute_id("Location").unwrap();
        let kind = ds.db.schema().attribute_id("Type").unwrap();
        let mut northeast_ahead = 0usize;
        let mut private_ahead = 0usize;
        for ranking in ds.profile.rankings() {
            let loc_fpr = group_fprs(ranking, idx.attribute(location));
            let type_fpr = group_fprs(ranking, idx.attribute(kind));
            // Northeast (0) vs South (3)
            if loc_fpr.score(0).unwrap() > loc_fpr.score(3).unwrap() {
                northeast_ahead += 1;
            }
            if type_fpr.score(0).unwrap() > type_fpr.score(1).unwrap() {
                private_ahead += 1;
            }
        }
        assert_eq!(northeast_ahead, 21, "Northeast should lead every year");
        assert_eq!(private_ahead, 21, "Private should lead every year");
    }

    #[test]
    fn yearly_rankings_are_far_from_parity() {
        let ds = CsRankingsDataset::generate(&CsRankingsConfig::default());
        let idx = ds.group_index();
        let location = ds.db.schema().attribute_id("Location").unwrap();
        for ranking in ds.profile.rankings() {
            let parity = ParityScores::compute(ranking, &idx);
            assert!(
                parity.arp(location) > 0.2,
                "location ARP {}",
                parity.arp(location)
            );
            assert!(parity.irp() > 0.3, "IRP {}", parity.irp());
        }
    }

    #[test]
    fn rankings_are_correlated_across_years() {
        // Departmental strength persists, so year-to-year Kendall distance should be well
        // below the 0.5 expected for independent rankings.
        let ds = CsRankingsDataset::generate(&CsRankingsConfig::default());
        let rankings = ds.profile.rankings();
        let mut total = 0.0;
        let mut count = 0usize;
        for w in rankings.windows(2) {
            total += mani_ranking::normalized_kendall_tau(&w[0], &w[1]).unwrap();
            count += 1;
        }
        let mean = total / count as f64;
        assert!(mean < 0.3, "mean adjacent-year distance {mean}");
    }

    #[test]
    #[should_panic(expected = "meaningful department set")]
    fn tiny_datasets_are_rejected() {
        let _ = CsRankingsDataset::generate(&CsRankingsConfig {
            num_departments: 3,
            ..CsRankingsConfig::default()
        });
    }
}
