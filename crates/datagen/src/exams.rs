//! Synthetic student exam-score dataset for the Table IV case study.
//!
//! The paper uses a publicly generated "exam scores" dataset (200 students with Gender,
//! Race, and subsidised-Lunch attributes and Math/Reading/Writing scores). The file is not
//! available offline, so this module re-synthesises it statistically: scores are drawn from
//! normal distributions with group-level mean shifts chosen to reproduce the qualitative
//! pattern of the paper's Table IV base rankings —
//!
//! * students with subsidised lunch score noticeably lower in all subjects;
//! * the smallest racial group ("NatHawaii") scores lower, one group ("Asian") higher;
//! * women outscore men in math here while men outscore women in reading/writing (the
//!   paper's table shows the split pattern: Math favours one gender, Reading/Writing the
//!   other), producing conflicting base rankings whose consensus still carries bias.
//!
//! The exact FPR values differ from the paper's (different random data), but the structure
//! the case study demonstrates — ARP/IRP far above Δ in all base rankings and the Kemeny
//! consensus, removed by every Fair-* method — is preserved.

use mani_ranking::{CandidateDb, CandidateDbBuilder, GroupIndex, Ranking, RankingProfile};
use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use crate::seed::rng_from_seed;

/// Configuration of the synthetic exam dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExamConfig {
    /// Number of students (the paper uses 200).
    pub num_students: usize,
    /// Fraction of students receiving subsidised lunch.
    pub subsidised_share: f64,
    /// Standard deviation of individual ability around the group mean.
    pub score_noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ExamConfig {
    fn default() -> Self {
        Self {
            num_students: 200,
            subsidised_share: 0.35,
            score_noise: 10.0,
            seed: 0xE48A,
        }
    }
}

/// The generated dataset: candidate database plus the three subject base rankings.
#[derive(Debug, Clone)]
pub struct ExamDataset {
    /// Students with Gender, Race, and Lunch attributes.
    pub db: CandidateDb,
    /// Base rankings in subject order (Math, Reading, Writing).
    pub profile: RankingProfile,
    /// Subject names aligned with the profile's rankings.
    pub subjects: Vec<&'static str>,
    /// Raw scores per subject (subject-major, then student id) for inspection.
    pub scores: Vec<Vec<f64>>,
}

/// Race group labels used by the generator (mirroring the paper's five groups).
const RACES: [&str; 5] = ["Asian", "White", "Black", "AlaskaNat", "NatHawaii"];
/// Race shares: NatHawaii is intentionally the smallest group, as in the paper.
const RACE_SHARES: [f64; 5] = [0.22, 0.30, 0.22, 0.16, 0.10];

impl ExamDataset {
    /// Generates the dataset.
    pub fn generate(config: &ExamConfig) -> Self {
        assert!(config.num_students >= 10, "need a meaningful cohort");
        let mut rng = rng_from_seed(config.seed);
        let mut builder = CandidateDbBuilder::new();
        let gender = builder
            .add_attribute("Gender", ["Men", "Women"])
            .expect("static attribute");
        let race = builder
            .add_attribute("Race", RACES)
            .expect("static attribute");
        let lunch = builder
            .add_attribute("Lunch", ["NoSub", "SubLunch"])
            .expect("static attribute");

        let mut attributes = Vec::with_capacity(config.num_students);
        for i in 0..config.num_students {
            let g = usize::from(rng.gen::<f64>() < 0.5);
            let r = sample_race(&mut rng);
            let l = usize::from(rng.gen::<f64>() < config.subsidised_share);
            builder
                .add_candidate(
                    format!("student-{i:03}"),
                    [(gender, g), (race, r), (lunch, l)],
                )
                .expect("assignments within domains");
            attributes.push((g, r, l));
        }
        let db = builder.build().expect("non-empty database");

        // Group-level mean shifts per subject (Math, Reading, Writing).
        // Gender: women ahead in math, men ahead in reading/writing (as in Table IV).
        let gender_shift = [[-4.0, 4.0], [5.0, -5.0], [6.0, -6.0]];
        // Race shifts: Asian/Black slightly ahead, NatHawaii notably behind.
        let race_shift = [3.0, -1.0, 2.5, 0.5, -9.0];
        // Lunch: subsidised lunch substantially behind in every subject.
        let lunch_shift = [[6.0, -11.0], [5.0, -9.0], [5.5, -10.0]];

        let noise = Normal::new(0.0, config.score_noise).expect("positive std dev");
        let mut scores = vec![vec![0.0f64; config.num_students]; 3];
        // Shared per-student ability so the three rankings correlate, as real subjects do.
        let ability: Vec<f64> = (0..config.num_students)
            .map(|_| noise.sample(&mut rng))
            .collect();
        for (subject, subject_scores) in scores.iter_mut().enumerate() {
            for (i, &(g, r, l)) in attributes.iter().enumerate() {
                let mean =
                    66.0 + gender_shift[subject][g] + race_shift[r] + lunch_shift[subject][l];
                subject_scores[i] = mean + 0.7 * ability[i] + 0.5 * noise.sample(&mut rng);
            }
        }

        let rankings: Vec<Ranking> = scores
            .iter()
            .map(|s| Ranking::from_scores(s).expect("one score per student"))
            .collect();
        let profile = RankingProfile::for_database(&db, rankings).expect("sizes match");
        Self {
            db,
            profile,
            subjects: vec!["Math", "Reading", "Writing"],
            scores,
        }
    }

    /// Group index over the student database.
    pub fn group_index(&self) -> GroupIndex {
        GroupIndex::new(&self.db)
    }
}

fn sample_race<R: Rng>(rng: &mut R) -> usize {
    let mut draw = rng.gen::<f64>();
    for (i, &share) in RACE_SHARES.iter().enumerate() {
        if draw < share {
            return i;
        }
        draw -= share;
    }
    RACE_SHARES.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use mani_fairness::ParityScores;

    #[test]
    fn dataset_has_expected_shape() {
        let ds = ExamDataset::generate(&ExamConfig::default());
        assert_eq!(ds.db.len(), 200);
        assert_eq!(ds.profile.len(), 3);
        assert_eq!(ds.profile.num_candidates(), 200);
        assert_eq!(ds.subjects, vec!["Math", "Reading", "Writing"]);
        assert_eq!(ds.scores.len(), 3);
        assert_eq!(ds.scores[0].len(), 200);
        assert_eq!(ds.db.schema().num_attributes(), 3);
        assert_eq!(ds.db.schema().intersection_cardinality(), 2 * 5 * 2);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ExamDataset::generate(&ExamConfig::default());
        let b = ExamDataset::generate(&ExamConfig::default());
        assert_eq!(a.db, b.db);
        assert_eq!(a.profile.rankings(), b.profile.rankings());
        let c = ExamDataset::generate(&ExamConfig {
            seed: 1,
            ..ExamConfig::default()
        });
        assert_ne!(a.profile.rankings(), c.profile.rankings());
    }

    #[test]
    fn base_rankings_exhibit_substantial_bias() {
        // The whole point of the case study: every subject ranking is far from parity.
        let ds = ExamDataset::generate(&ExamConfig::default());
        let idx = ds.group_index();
        let lunch = ds.db.schema().attribute_id("Lunch").unwrap();
        for ranking in ds.profile.rankings() {
            let parity = ParityScores::compute(ranking, &idx);
            assert!(
                parity.arp(lunch) > 0.2,
                "lunch bias should be visible, got {}",
                parity.arp(lunch)
            );
            assert!(
                parity.irp() > 0.3,
                "IRP should be high, got {}",
                parity.irp()
            );
        }
    }

    #[test]
    fn gender_bias_direction_differs_between_math_and_writing() {
        let ds = ExamDataset::generate(&ExamConfig::default());
        let idx = ds.group_index();
        let gender = ds.db.schema().attribute_id("Gender").unwrap();
        let math = &ds.profile.rankings()[0];
        let writing = &ds.profile.rankings()[2];
        let math_fpr = mani_fairness::group_fprs(math, idx.attribute(gender));
        let writing_fpr = mani_fairness::group_fprs(writing, idx.attribute(gender));
        // In math women (group 1) are ahead; in writing men (group 0) are ahead.
        assert!(math_fpr.score(1).unwrap() > math_fpr.score(0).unwrap());
        assert!(writing_fpr.score(0).unwrap() > writing_fpr.score(1).unwrap());
    }

    #[test]
    #[should_panic(expected = "meaningful cohort")]
    fn tiny_cohorts_are_rejected() {
        let _ = ExamDataset::generate(&ExamConfig {
            num_students: 3,
            ..ExamConfig::default()
        });
    }
}
