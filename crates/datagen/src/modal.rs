//! Modal rankings with target fairness levels (the Table I datasets).
//!
//! The paper controls the fairness of its Mallows workloads by fixing the ARP/IRP of the
//! *modal* ranking: the Low-Fair dataset has `ARP_Gender = ARP_Race = 0.7, IRP = 1.0`, the
//! Medium-Fair dataset `0.5 / 0.5 / 0.75`, and the High-Fair dataset `0.3 / 0.3 / 0.54`.
//!
//! [`ModalRankingBuilder`] reproduces that construction: it starts from the fully
//! segregated ranking (every axis at its maximal parity violation) and then applies
//! parity-reducing swaps — always to the axis whose violation exceeds its target by the
//! most — until every protected attribute's ARP and the intersection's IRP are at or below
//! their targets. Because each swap changes FPR scores by small increments, the resulting
//! ARP/IRP land just below the targets, matching the paper's dataset definitions closely.

use mani_fairness::{group_fprs, ParityScores};
use mani_ranking::{CandidateDb, CandidateId, GroupIndex, GroupMembership, Ranking};
use serde::{Deserialize, Serialize};

/// Target parity levels for a modal ranking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FairnessTarget {
    /// Target ARP per protected attribute, in schema order.
    pub attribute_arp: Vec<f64>,
    /// Target IRP for the intersection.
    pub irp: f64,
}

impl FairnessTarget {
    /// Uniform attribute target plus an intersection target.
    pub fn uniform(num_attributes: usize, arp: f64, irp: f64) -> Self {
        Self {
            attribute_arp: vec![arp; num_attributes],
            irp,
        }
    }

    /// The paper's Low-Fair dataset target (Table I): ARP 0.7 / 0.7, IRP 1.0.
    pub fn low_fair(num_attributes: usize) -> Self {
        Self::uniform(num_attributes, 0.7, 1.0)
    }

    /// The paper's Medium-Fair dataset target (Table I): ARP 0.5 / 0.5, IRP 0.75.
    pub fn medium_fair(num_attributes: usize) -> Self {
        Self::uniform(num_attributes, 0.5, 0.75)
    }

    /// The paper's High-Fair dataset target (Table I): ARP 0.3 / 0.3, IRP 0.54.
    pub fn high_fair(num_attributes: usize) -> Self {
        Self::uniform(num_attributes, 0.3, 0.54)
    }
}

/// Builds modal rankings whose parity scores are at or just below a [`FairnessTarget`].
#[derive(Debug)]
pub struct ModalRankingBuilder<'a> {
    db: &'a CandidateDb,
    groups: GroupIndex,
}

impl<'a> ModalRankingBuilder<'a> {
    /// Creates a builder for a candidate database.
    pub fn new(db: &'a CandidateDb) -> Self {
        Self {
            db,
            groups: GroupIndex::new(db),
        }
    }

    /// The group index used by the builder.
    pub fn groups(&self) -> &GroupIndex {
        &self.groups
    }

    /// The fully segregated ranking: candidates sorted lexicographically by their attribute
    /// values (then id), so every axis starts at (or near) its maximal parity violation.
    pub fn segregated_ranking(&self) -> Ranking {
        let mut ids: Vec<u32> = self.db.candidate_ids().map(|c| c.0).collect();
        ids.sort_by_key(|&id| {
            let cand = self
                .db
                .candidate(CandidateId(id))
                .expect("id enumerated from the database");
            let mut key: Vec<usize> = cand.values().iter().map(|v| v.index()).collect();
            key.push(id as usize);
            key
        });
        Ranking::from_ids(ids).expect("sorted ids form a permutation")
    }

    /// Builds a modal ranking meeting `target`: every attribute ARP ≤ its target and
    /// IRP ≤ the intersection target, starting from the segregated ranking.
    pub fn build(&self, target: &FairnessTarget) -> Ranking {
        assert_eq!(
            target.attribute_arp.len(),
            self.groups.num_attributes(),
            "one ARP target per protected attribute"
        );
        let mut ranking = self.segregated_ranking();
        let max_swaps = mani_ranking::total_pairs(self.db.len()) * 2;
        let mut swaps = 0u64;
        loop {
            let parity = ParityScores::compute(&ranking, &self.groups);
            // Find the axis with the largest excess over its target.
            let mut worst: Option<(Axis, f64)> = None;
            for (i, (attr_id, _)) in self.groups.attributes().enumerate() {
                let excess = parity.arp(attr_id) - target.attribute_arp[i];
                if excess > 1e-9 && worst.as_ref().is_none_or(|(_, e)| excess > *e) {
                    worst = Some((Axis::Attribute(i), excess));
                }
            }
            let irp_excess = parity.irp() - target.irp;
            if irp_excess > 1e-9 && worst.as_ref().is_none_or(|(_, e)| irp_excess > *e) {
                worst = Some((Axis::Intersection, irp_excess));
            }
            let Some((axis, _)) = worst else {
                return ranking;
            };
            let membership = match axis {
                Axis::Attribute(i) => {
                    let attr_id = self
                        .groups
                        .attributes()
                        .nth(i)
                        .expect("axis index from enumeration")
                        .0;
                    self.groups.attribute(attr_id)
                }
                Axis::Intersection => self.groups.intersection(),
            };
            if !reduce_gap_with_one_swap(&mut ranking, membership) || swaps >= max_swaps {
                // No reducing swap available (degenerate axis); give up on this axis.
                return ranking;
            }
            swaps += 1;
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Axis {
    Attribute(usize),
    Intersection,
}

/// Performs one parity-reducing swap along an axis, following the Make-MR-Fair pairing
/// rule: take the lowest-ranked member of the highest-FPR group that still has a member of
/// the lowest-FPR group below it, and swap it with the highest-ranked such member. Returns
/// false when no such pair exists (the two groups are already fully separated in the
/// low-group-on-top direction, or the axis is degenerate).
fn reduce_gap_with_one_swap(ranking: &mut Ranking, membership: &GroupMembership) -> bool {
    let fprs = group_fprs(ranking, membership);
    let Some(high_group) = fprs.argmax() else {
        return false;
    };
    let Some(low_group) = fprs.argmin() else {
        return false;
    };
    if high_group == low_group {
        return false;
    }
    // Bottom-most member of the low group: any useful high-group member must sit above it.
    let mut bottom_low_pos = None;
    for pos in (0..ranking.len()).rev() {
        if membership.group_of(ranking.candidate_at(pos)) == low_group {
            bottom_low_pos = Some(pos);
            break;
        }
    }
    let Some(bottom_low) = bottom_low_pos else {
        return false;
    };
    // Lowest-ranked high-group member above that position (= x_Gh in the paper).
    let mut high_member_pos = None;
    for pos in (0..bottom_low).rev() {
        if membership.group_of(ranking.candidate_at(pos)) == high_group {
            high_member_pos = Some(pos);
            break;
        }
    }
    let Some(high_pos) = high_member_pos else {
        return false;
    };
    // Highest-ranked low-group member below x_Gh (= x_Gl in the paper).
    let mut low_member_pos = None;
    for pos in (high_pos + 1)..ranking.len() {
        if membership.group_of(ranking.candidate_at(pos)) == low_group {
            low_member_pos = Some(pos);
            break;
        }
    }
    let Some(low_pos) = low_member_pos else {
        return false;
    };
    ranking.swap_positions(high_pos, low_pos);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{binary_population, paper_population_90};
    use mani_fairness::ParityScores;

    #[test]
    fn segregated_ranking_is_maximally_unfair() {
        let db = paper_population_90();
        let builder = ModalRankingBuilder::new(&db);
        let ranking = builder.segregated_ranking();
        let parity = ParityScores::compute(&ranking, builder.groups());
        let gender = db.schema().attribute_id("Gender").unwrap();
        assert!((parity.arp(gender) - 1.0).abs() < 1e-9);
        assert!((parity.irp() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn low_fair_target_is_met_from_above() {
        let db = paper_population_90();
        let builder = ModalRankingBuilder::new(&db);
        let target = FairnessTarget::low_fair(2);
        let modal = builder.build(&target);
        let parity = ParityScores::compute(&modal, builder.groups());
        let gender = db.schema().attribute_id("Gender").unwrap();
        let race = db.schema().attribute_id("Race").unwrap();
        assert!(parity.arp(gender) <= 0.7 + 1e-9);
        assert!(parity.arp(race) <= 0.7 + 1e-9);
        assert!(parity.irp() <= 1.0 + 1e-9);
        // targets should be approached, not wildly overshot
        assert!(
            parity.arp(gender) > 0.5,
            "ARP(Gender) = {}",
            parity.arp(gender)
        );
    }

    #[test]
    fn medium_and_high_fair_targets_are_ordered() {
        let db = paper_population_90();
        let builder = ModalRankingBuilder::new(&db);
        let medium = builder.build(&FairnessTarget::medium_fair(2));
        let high = builder.build(&FairnessTarget::high_fair(2));
        let pm = ParityScores::compute(&medium, builder.groups());
        let ph = ParityScores::compute(&high, builder.groups());
        let gender = db.schema().attribute_id("Gender").unwrap();
        assert!(pm.arp(gender) <= 0.5 + 1e-9);
        assert!(ph.arp(gender) <= 0.3 + 1e-9);
        assert!(pm.irp() <= 0.75 + 1e-9);
        assert!(ph.irp() <= 0.54 + 1e-9);
        // the high-fair modal ranking is at least as fair as the medium-fair one
        assert!(ph.max_violation() <= pm.max_violation() + 1e-9);
    }

    #[test]
    fn per_attribute_targets_are_respected() {
        // The Fig. 6 modal ranking: ARP(Race) = .15, ARP(Gender) = .7, IRP = .55 on a binary
        // population.
        let db = binary_population(100, 0.5, 0.5, 5);
        let builder = ModalRankingBuilder::new(&db);
        let target = FairnessTarget {
            attribute_arp: vec![0.7, 0.15],
            irp: 0.55,
        };
        let modal = builder.build(&target);
        let parity = ParityScores::compute(&modal, builder.groups());
        let gender = db.schema().attribute_id("Gender").unwrap();
        let race = db.schema().attribute_id("Race").unwrap();
        assert!(parity.arp(gender) <= 0.7 + 1e-9);
        assert!(parity.arp(race) <= 0.15 + 1e-9);
        assert!(parity.irp() <= 0.55 + 1e-9);
    }

    #[test]
    fn builder_output_is_deterministic() {
        let db = paper_population_90();
        let builder = ModalRankingBuilder::new(&db);
        let a = builder.build(&FairnessTarget::medium_fair(2));
        let b = builder.build(&FairnessTarget::medium_fair(2));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "one ARP target per protected attribute")]
    fn target_arity_is_checked() {
        let db = paper_population_90();
        let builder = ModalRankingBuilder::new(&db);
        let _ = builder.build(&FairnessTarget::uniform(1, 0.5, 0.5));
    }
}
