//! Deterministic RNG derivation.
//!
//! Every generator in this crate takes an explicit `u64` seed so that experiments and
//! benchmarks are bit-for-bit reproducible. Sub-streams are derived with SplitMix64 so
//! that independent components (e.g. each base ranking) get decorrelated seeds.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a deterministic RNG from a seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a sub-seed for stream `index` from a master seed (SplitMix64 finalizer).
pub fn derive_seed(master: u64, index: u64) -> u64 {
    let mut z = master.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(42);
        let mut b = rng_from_seed(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(2);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 16);
    }

    #[test]
    fn derived_seeds_are_distinct() {
        let derived: Vec<u64> = (0..100).map(|i| derive_seed(7, i)).collect();
        let mut unique = derived.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), derived.len());
        // deriving the same index twice gives the same value
        assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
        // a different master seed changes the stream
        assert_ne!(derive_seed(7, 3), derive_seed(8, 3));
    }
}
