//! # mani-datagen
//!
//! Workload generation for the MANI-Rank reproduction:
//!
//! * [`population`] — candidate database builders (the paper's 90-candidate Gender×Race
//!   population, the binary populations of the scalability studies, and generic uniform
//!   populations).
//! * [`mallows`] — the Mallows ranking model sampled with the Repeated Insertion Method;
//!   base rankings are drawn around a modal ranking with dispersion θ exactly as in the
//!   paper's Section IV.
//! * [`modal`] — construction of modal rankings with *target* fairness levels (the
//!   Low-/Medium-/High-Fair datasets of Table I): start from the fully segregated ranking
//!   and apply parity-reducing swaps until every axis is at or below its target.
//! * [`exams`] — synthetic stand-in for the student exam-score dataset of the Table IV
//!   case study (200 students, Gender × Race × Lunch, three subject rankings).
//! * [`csrankings`] — synthetic stand-in for the CSRankings dataset of the Table V case
//!   study (65 departments, Location × Type, 21 yearly rankings).
//! * [`seed`] — deterministic RNG derivation so every experiment is reproducible from a
//!   single `u64` seed.
//!
//! The two case-study generators are *substitutions* for data files that are not available
//! offline; see `DESIGN.md` for the substitution rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csrankings;
pub mod exams;
pub mod mallows;
pub mod modal;
pub mod population;
pub mod seed;

pub use csrankings::{CsRankingsConfig, CsRankingsDataset};
pub use exams::{ExamConfig, ExamDataset};
pub use mallows::MallowsModel;
pub use modal::{FairnessTarget, ModalRankingBuilder};
pub use population::{
    binary_population, compact_population, gender_race_population, paper_population_90,
    uniform_population, AttributeSpec,
};
pub use seed::rng_from_seed;
