//! Candidate population builders for the paper's experimental settings.

use mani_ranking::{CandidateDb, CandidateDbBuilder, Result};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::seed::rng_from_seed;

/// Specification of one protected attribute: a name, its values, and the relative share of
/// candidates per value.
#[derive(Debug, Clone)]
pub struct AttributeSpec {
    /// Attribute name (e.g. `"Gender"`).
    pub name: String,
    /// Value names.
    pub values: Vec<String>,
    /// Relative shares per value; normalised internally. Must match `values` in length.
    pub shares: Vec<f64>,
}

impl AttributeSpec {
    /// Uniform shares over the given values.
    pub fn uniform(name: impl Into<String>, values: &[&str]) -> Self {
        let values: Vec<String> = values.iter().map(|v| v.to_string()).collect();
        let shares = vec![1.0; values.len()];
        Self {
            name: name.into(),
            values,
            shares,
        }
    }

    /// Explicit shares per value.
    pub fn with_shares(name: impl Into<String>, values: &[&str], shares: &[f64]) -> Self {
        Self {
            name: name.into(),
            values: values.iter().map(|v| v.to_string()).collect(),
            shares: shares.to_vec(),
        }
    }
}

/// The paper's main experimental population (Table I): 90 candidates with Gender
/// (Man/Woman/NonBinary) and Race (5 values), 6 candidates in each of the 15
/// intersectional groups.
pub fn paper_population_90() -> CandidateDb {
    gender_race_population(6)
}

/// A balanced Gender (3 values) × Race (5 values) population with `per_cell` candidates in
/// each of the 15 intersectional cells — the paper's population shape at any size.
pub fn gender_race_population(per_cell: usize) -> CandidateDb {
    assert!(per_cell >= 1, "need at least one candidate per cell");
    let mut builder = CandidateDbBuilder::new();
    let gender = builder
        .add_attribute("Gender", ["Man", "Woman", "NonBinary"])
        .expect("static attribute is valid");
    let race = builder
        .add_attribute(
            "Race",
            ["AlaskaNat", "Asian", "Black", "NatHawaii", "White"],
        )
        .expect("static attribute is valid");
    let mut i = 0usize;
    for g in 0..3usize {
        for r in 0..5usize {
            for _ in 0..per_cell {
                builder
                    .add_candidate(format!("cand-{i:03}"), [(gender, g), (race, r)])
                    .expect("assignments are within the declared domains");
                i += 1;
            }
        }
    }
    builder.build().expect("non-empty database")
}

/// A compact balanced population used for exact-solver experiments: Gender (2 values) ×
/// Race (3 values) with `per_cell` candidates in each of the 6 intersectional cells.
///
/// The paper runs its constraint-formulation study (Figure 3) on the full 90-candidate
/// population via CPLEX; our branch-and-bound substitute needs a smaller instance, and this
/// keeps every intersectional cell populated so tight Δ values remain feasible.
pub fn compact_population(per_cell: usize) -> CandidateDb {
    assert!(per_cell >= 1, "need at least one candidate per cell");
    let mut builder = CandidateDbBuilder::new();
    let gender = builder
        .add_attribute("Gender", ["Man", "Woman"])
        .expect("static attribute is valid");
    let race = builder
        .add_attribute("Race", ["GroupA", "GroupB", "GroupC"])
        .expect("static attribute is valid");
    let mut i = 0usize;
    for g in 0..2usize {
        for r in 0..3usize {
            for _ in 0..per_cell {
                builder
                    .add_candidate(format!("cand-{i:03}"), [(gender, g), (race, r)])
                    .expect("assignments are within the declared domains");
                i += 1;
            }
        }
    }
    builder.build().expect("non-empty database")
}

/// Binary Gender × binary Race population of `n` candidates with the given group shares,
/// as used by the paper's scalability studies (Figures 6 and 7).
///
/// `gender_share` and `race_share` give the fraction of candidates carrying the first
/// value of each attribute; assignments are interleaved deterministically then shuffled
/// with `seed` so intersection cells stay close to the product distribution.
pub fn binary_population(n: usize, gender_share: f64, race_share: f64, seed: u64) -> CandidateDb {
    assert!(n >= 2, "population needs at least two candidates");
    let mut rng = rng_from_seed(seed);
    let mut builder = CandidateDbBuilder::new();
    let gender = builder
        .add_attribute("Gender", ["Man", "Woman"])
        .expect("static attribute is valid");
    let race = builder
        .add_attribute("Race", ["GroupA", "GroupB"])
        .expect("static attribute is valid");

    let n_gender0 = ((n as f64) * gender_share).round() as usize;
    let n_race0 = ((n as f64) * race_share).round() as usize;
    let mut gender_values: Vec<usize> = (0..n).map(|i| usize::from(i >= n_gender0)).collect();
    let mut race_values: Vec<usize> = (0..n).map(|i| usize::from(i >= n_race0)).collect();
    gender_values.shuffle(&mut rng);
    race_values.shuffle(&mut rng);

    for i in 0..n {
        builder
            .add_candidate(
                format!("cand-{i:05}"),
                [(gender, gender_values[i]), (race, race_values[i])],
            )
            .expect("assignments are within the declared domains");
    }
    builder.build().expect("non-empty database")
}

/// Generic population: `n` candidates with attribute values drawn independently according
/// to each [`AttributeSpec`]'s shares.
pub fn uniform_population(n: usize, specs: &[AttributeSpec], seed: u64) -> Result<CandidateDb> {
    let mut rng = rng_from_seed(seed);
    let mut builder = CandidateDbBuilder::new();
    let mut attr_ids = Vec::with_capacity(specs.len());
    for spec in specs {
        let id = builder.add_attribute(
            spec.name.clone(),
            spec.values.iter().map(String::as_str).collect::<Vec<_>>(),
        )?;
        attr_ids.push(id);
    }
    for i in 0..n {
        let mut assignment = Vec::with_capacity(specs.len());
        for (spec, &attr_id) in specs.iter().zip(&attr_ids) {
            let value = sample_share(&spec.shares, &mut rng);
            assignment.push((attr_id, value));
        }
        builder.add_candidate(format!("cand-{i:06}"), assignment)?;
    }
    builder.build()
}

fn sample_share<R: Rng>(shares: &[f64], rng: &mut R) -> usize {
    let total: f64 = shares.iter().sum();
    let mut draw = rng.gen::<f64>() * total;
    for (i, &s) in shares.iter().enumerate() {
        if draw < s {
            return i;
        }
        draw -= s;
    }
    shares.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use mani_ranking::GroupIndex;

    #[test]
    fn paper_population_has_15_cells_of_6() {
        let db = paper_population_90();
        assert_eq!(db.len(), 90);
        assert_eq!(db.schema().num_attributes(), 2);
        assert_eq!(db.schema().intersection_cardinality(), 15);
        let idx = GroupIndex::new(&db);
        for code in 0..15 {
            assert_eq!(idx.intersection().group_size(code), 6);
        }
    }

    #[test]
    fn binary_population_respects_shares() {
        let db = binary_population(200, 0.3, 0.5, 7);
        assert_eq!(db.len(), 200);
        let idx = GroupIndex::new(&db);
        let gender = db.schema().attribute_id("Gender").unwrap();
        let race = db.schema().attribute_id("Race").unwrap();
        assert_eq!(idx.attribute(gender).group_size(0), 60);
        assert_eq!(idx.attribute(race).group_size(0), 100);
    }

    #[test]
    fn binary_population_is_deterministic_per_seed() {
        let a = binary_population(50, 0.4, 0.6, 11);
        let b = binary_population(50, 0.4, 0.6, 11);
        assert_eq!(a, b);
        let c = binary_population(50, 0.4, 0.6, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_population_draws_all_attributes() {
        let specs = vec![
            AttributeSpec::uniform("Gender", &["M", "W", "NB"]),
            AttributeSpec::with_shares("Lunch", &["NoSub", "Sub"], &[0.7, 0.3]),
        ];
        let db = uniform_population(300, &specs, 3).unwrap();
        assert_eq!(db.len(), 300);
        let idx = GroupIndex::new(&db);
        let lunch = db.schema().attribute_id("Lunch").unwrap();
        let sub = idx.attribute(lunch).group_size(1);
        // roughly 30% +- generous slack
        assert!(sub > 50 && sub < 130, "subsidised lunch group size {sub}");
    }

    #[test]
    fn attribute_spec_constructors() {
        let u = AttributeSpec::uniform("A", &["x", "y"]);
        assert_eq!(u.shares, vec![1.0, 1.0]);
        let w = AttributeSpec::with_shares("B", &["x", "y"], &[0.2, 0.8]);
        assert_eq!(w.values.len(), 2);
        assert_eq!(w.shares[1], 0.8);
    }
}
