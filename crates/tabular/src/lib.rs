//! # mani-tabular
//!
//! The one aligned-text table type shared across the MANI-Rank workspace.
//!
//! [`TextTable`] renders a title, a header row, and string cells as aligned
//! monospace text or RFC-4180 CSV. It used to exist twice — as
//! `mani_engine::ReportTable` and `mani_experiments::TextTable` — with the two
//! copies drifting independently; both crates now re-export this type, so the
//! engine's consensus reports, the HTTP server's text output, and the
//! experiment harness's paper tables all run through a single renderer.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple rectangular table with a title, column headers and string cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; the row is padded or truncated to the header width.
    pub fn push_row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Appends a row of displayable values.
    pub fn push_display_row<T: std::fmt::Display>(&mut self, cells: &[T]) {
        self.push_row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Table rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Looks up a cell by row index and column header.
    pub fn cell(&self, row: usize, header: &str) -> Option<&str> {
        let col = self.headers.iter().position(|h| h == header)?;
        self.rows.get(row)?.get(col).map(String::as_str)
    }

    /// Renders the table as aligned monospace text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_line = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let _ = writeln!(out, "{}", fmt_line(&self.headers));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_line(row));
        }
        out
    }

    /// Renders the table as CSV (headers + rows, RFC-4180-style quoting of commas/quotes).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV rendering to `dir/<file_name>` creating the directory if needed.
    pub fn write_csv(&self, dir: &Path, file_name: &str) -> io::Result<std::path::PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(file_name);
        fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TextTable {
        let mut t = TextTable::new("Demo", &["method", "pd_loss"]);
        t.push_row(vec!["Fair-Borda".into(), "0.123".into()]);
        t.push_row(vec!["Kemeny".into(), "0.045".into()]);
        t
    }

    #[test]
    fn render_contains_title_headers_and_rows() {
        let text = sample().render();
        assert!(text.contains("== Demo =="));
        assert!(text.contains("method"));
        assert!(text.contains("Fair-Borda"));
        assert!(text.contains("0.045"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = TextTable::new("x", &["a", "b"]);
        t.push_row(vec!["hello, world".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"hello, world\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn rows_are_padded_to_header_width() {
        let mut t = TextTable::new("x", &["a", "b", "c"]);
        t.push_row(vec!["only-one".into()]);
        assert_eq!(t.rows()[0].len(), 3);
        assert_eq!(t.cell(0, "a"), Some("only-one"));
        assert_eq!(t.cell(0, "c"), Some(""));
        assert_eq!(t.cell(0, "missing"), None);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert_eq!(t.title(), "x");
        assert_eq!(t.headers().len(), 3);
    }

    #[test]
    fn display_rows_and_trailing_whitespace_trim() {
        let mut t = TextTable::new("Nums", &["i", "sq"]);
        t.push_display_row(&[2, 4]);
        let text = t.render();
        // No line carries trailing padding spaces.
        assert!(text.lines().all(|l| l.trim_end() == l));
        assert_eq!(t.cell(0, "sq"), Some("4"));
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("mani-tabular-test");
        let path = sample().write_csv(&dir, "demo.csv").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("method,pd_loss"));
        std::fs::remove_file(path).ok();
    }
}
