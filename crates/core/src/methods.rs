//! The [`MfcrMethod`] trait and the [`MethodKind`] registry used by experiments.

use mani_ranking::Result;
use serde::{Deserialize, Serialize};

use crate::baselines::{CorrectFairestPerm, ExactKemeny, KemenyWeighted, PickFairestPerm};
use crate::context::MfcrContext;
use crate::fair_borda::FairBorda;
use crate::fair_copeland::FairCopeland;
use crate::fair_kemeny::FairKemeny;
use crate::fair_schulze::FairSchulze;
use crate::report::MfcrOutcome;

/// A solution method for the MFCR problem (or one of the paper's baselines).
pub trait MfcrMethod {
    /// Method name used in experiment output.
    fn name(&self) -> &'static str;

    /// Produces a consensus ranking for the given context and evaluates it.
    fn solve(&self, ctx: &MfcrContext<'_>) -> Result<MfcrOutcome>;
}

/// Identifier of every method evaluated in the paper, in the order used by its legends
/// (A1–A4 are the proposed MFCR methods, B1–B4 the baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MethodKind {
    /// (A1) Fair-Kemeny.
    FairKemeny,
    /// (A2) Fair-Schulze.
    FairSchulze,
    /// (A3) Fair-Borda.
    FairBorda,
    /// (A4) Fair-Copeland.
    FairCopeland,
    /// (B1) Traditional Kemeny.
    Kemeny,
    /// (B2) Kemeny-Weighted.
    KemenyWeighted,
    /// (B3) Pick-Fairest-Perm.
    PickFairestPerm,
    /// (B4) Correct-Fairest-Perm.
    CorrectFairestPerm,
}

impl MethodKind {
    /// All eight methods in the paper's legend order.
    pub fn all() -> [MethodKind; 8] {
        [
            MethodKind::FairKemeny,
            MethodKind::FairSchulze,
            MethodKind::FairBorda,
            MethodKind::FairCopeland,
            MethodKind::Kemeny,
            MethodKind::KemenyWeighted,
            MethodKind::PickFairestPerm,
            MethodKind::CorrectFairestPerm,
        ]
    }

    /// The four proposed MFCR methods.
    pub fn proposed() -> [MethodKind; 4] {
        [
            MethodKind::FairKemeny,
            MethodKind::FairSchulze,
            MethodKind::FairBorda,
            MethodKind::FairCopeland,
        ]
    }

    /// The four polynomial-time methods suitable for large-scale sweeps (everything except
    /// the two exact optimisation baselines and Fair-Kemeny).
    pub fn polynomial() -> [MethodKind; 5] {
        [
            MethodKind::FairSchulze,
            MethodKind::FairBorda,
            MethodKind::FairCopeland,
            MethodKind::PickFairestPerm,
            MethodKind::CorrectFairestPerm,
        ]
    }

    /// True for the paper's proposed methods (A1–A4).
    pub fn is_proposed(&self) -> bool {
        matches!(
            self,
            MethodKind::FairKemeny
                | MethodKind::FairSchulze
                | MethodKind::FairBorda
                | MethodKind::FairCopeland
        )
    }

    /// The label used in the paper's figures, e.g. `"(A1) Fair-Kemeny"`.
    pub fn paper_label(&self) -> &'static str {
        match self {
            MethodKind::FairKemeny => "(A1) Fair-Kemeny",
            MethodKind::FairSchulze => "(A2) Fair-Schulze",
            MethodKind::FairBorda => "(A3) Fair-Borda",
            MethodKind::FairCopeland => "(A4) Fair-Copeland",
            MethodKind::Kemeny => "(B1) Kemeny",
            MethodKind::KemenyWeighted => "(B2) Kemeny-Weighted",
            MethodKind::PickFairestPerm => "(B3) Pick-Fairest-Perm",
            MethodKind::CorrectFairestPerm => "(B4) Correct-Fairest-Perm",
        }
    }

    /// The plain method name.
    pub fn name(&self) -> &'static str {
        match self {
            MethodKind::FairKemeny => "Fair-Kemeny",
            MethodKind::FairSchulze => "Fair-Schulze",
            MethodKind::FairBorda => "Fair-Borda",
            MethodKind::FairCopeland => "Fair-Copeland",
            MethodKind::Kemeny => "Kemeny",
            MethodKind::KemenyWeighted => "Kemeny-Weighted",
            MethodKind::PickFairestPerm => "Pick-Fairest-Perm",
            MethodKind::CorrectFairestPerm => "Correct-Fairest-Perm",
        }
    }

    /// Instantiates the method with default configuration.
    pub fn instantiate(&self) -> Box<dyn MfcrMethod> {
        match self {
            MethodKind::FairKemeny => Box::new(FairKemeny::new()),
            MethodKind::FairSchulze => Box::new(FairSchulze::new()),
            MethodKind::FairBorda => Box::new(FairBorda::new()),
            MethodKind::FairCopeland => Box::new(FairCopeland::new()),
            MethodKind::Kemeny => Box::new(ExactKemeny::new()),
            MethodKind::KemenyWeighted => Box::new(KemenyWeighted::new()),
            MethodKind::PickFairestPerm => Box::new(PickFairestPerm::new()),
            MethodKind::CorrectFairestPerm => Box::new(CorrectFairestPerm::new()),
        }
    }

    /// Instantiates the method with an explicit branch-and-bound node budget for the
    /// exact-optimisation methods (Fair-Kemeny, Kemeny, Kemeny-Weighted); the polynomial
    /// methods ignore the budget.
    pub fn instantiate_with_nodes(&self, max_nodes: u64) -> Box<dyn MfcrMethod> {
        let config = mani_solver::SolverConfig::with_max_nodes(max_nodes);
        match self {
            MethodKind::FairKemeny => Box::new(FairKemeny::with_config(config)),
            MethodKind::Kemeny => Box::new(ExactKemeny::with_config(config)),
            MethodKind::KemenyWeighted => Box::new(KemenyWeighted::with_config(config)),
            _ => self.instantiate(),
        }
    }

    /// Parses a method name (either plain or paper-label form).
    pub fn parse(name: &str) -> Option<MethodKind> {
        MethodKind::all()
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(name) || k.paper_label() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{low_fair_context, TestFixture};

    #[test]
    fn registry_is_consistent() {
        assert_eq!(MethodKind::all().len(), 8);
        assert_eq!(MethodKind::proposed().len(), 4);
        for kind in MethodKind::all() {
            assert_eq!(kind.instantiate().name(), kind.name());
            assert_eq!(MethodKind::parse(kind.name()), Some(kind));
            assert_eq!(MethodKind::parse(kind.paper_label()), Some(kind));
            assert_eq!(kind.is_proposed(), MethodKind::proposed().contains(&kind));
        }
        assert_eq!(MethodKind::parse("nonsense"), None);
    }

    #[test]
    fn every_method_produces_a_valid_ranking() {
        let fixture = TestFixture::low_fair(12, 8, 0.6, 83);
        let ctx = low_fair_context(&fixture, 0.25);
        for kind in MethodKind::all() {
            let outcome = kind.instantiate().solve(&ctx).unwrap();
            outcome.ranking.check_invariants().unwrap();
            assert_eq!(outcome.ranking.len(), 12, "{}", kind.name());
        }
    }

    #[test]
    fn proposed_methods_satisfy_criteria_where_baselines_do_not() {
        // Strongly biased, strongly agreeing profile: the proposed methods must satisfy the
        // criteria; plain Kemeny and Pick-Fairest-Perm must not.
        let fixture = TestFixture::low_fair(16, 12, 1.5, 89);
        let ctx = low_fair_context(&fixture, 0.1);
        for kind in MethodKind::proposed() {
            let outcome = kind.instantiate().solve(&ctx).unwrap();
            assert!(
                outcome.criteria.is_satisfied(),
                "{} should satisfy MANI-Rank",
                kind.name()
            );
        }
        let kemeny = MethodKind::Kemeny.instantiate().solve(&ctx).unwrap();
        assert!(!kemeny.criteria.is_satisfied());
        let pick = MethodKind::PickFairestPerm
            .instantiate()
            .solve(&ctx)
            .unwrap();
        assert!(!pick.criteria.is_satisfied());
    }
}
