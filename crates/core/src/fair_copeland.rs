//! Fair-Copeland (Section III-B): Copeland aggregation followed by Make-MR-Fair correction.

use mani_aggregation::CopelandAggregator;
use mani_ranking::Result;

use crate::context::MfcrContext;
use crate::make_mr_fair::make_mr_fair;
use crate::methods::MfcrMethod;
use crate::report::MfcrOutcome;

/// The Fair-Copeland MFCR method.
#[derive(Debug, Clone, Copy, Default)]
pub struct FairCopeland;

impl FairCopeland {
    /// Creates a Fair-Copeland solver.
    pub fn new() -> Self {
        Self
    }
}

impl MfcrMethod for FairCopeland {
    fn name(&self) -> &'static str {
        "Fair-Copeland"
    }

    fn solve(&self, ctx: &MfcrContext<'_>) -> Result<MfcrOutcome> {
        let matrix = ctx.precedence_matrix();
        let consensus =
            CopelandAggregator::new().consensus_from_matrix_with(&matrix, &ctx.parallelism());
        let correction = make_mr_fair(&consensus, ctx.groups, &ctx.thresholds);
        MfcrOutcome::evaluate(self.name(), ctx, correction.ranking, correction.swaps, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{low_fair_context, TestFixture};

    #[test]
    fn fair_copeland_satisfies_mani_rank() {
        let fixture = TestFixture::low_fair(60, 25, 0.6, 19);
        let ctx = low_fair_context(&fixture, 0.1);
        let outcome = FairCopeland::new().solve(&ctx).unwrap();
        assert!(outcome.criteria.is_satisfied());
        outcome.ranking.check_invariants().unwrap();
    }

    #[test]
    fn copeland_condorcet_structure_keeps_pd_loss_competitive() {
        // Fair-Copeland should represent preferences at least as well as Correct-Fairest-Perm
        // style corrections of arbitrary rankings; a loose sanity bound on PD loss.
        let fixture = TestFixture::low_fair(60, 25, 0.6, 23);
        let ctx = low_fair_context(&fixture, 0.1);
        let outcome = FairCopeland::new().solve(&ctx).unwrap();
        assert!(outcome.pd_loss < 0.6, "pd loss {}", outcome.pd_loss);
    }
}
