//! Shared input bundle for MFCR methods.

use mani_fairness::FairnessThresholds;
use mani_ranking::{CandidateDb, GroupIndex, RankingProfile};

/// Everything an MFCR method needs: the candidate database, its group index, the base
/// rankings, and the fairness thresholds Δ.
#[derive(Debug, Clone)]
pub struct MfcrContext<'a> {
    /// Candidate database `X`.
    pub db: &'a CandidateDb,
    /// Precomputed group index over `X`.
    pub groups: &'a GroupIndex,
    /// Base rankings `R`.
    pub profile: &'a RankingProfile,
    /// Fairness thresholds (uniform Δ or per-axis overrides).
    pub thresholds: FairnessThresholds,
}

impl<'a> MfcrContext<'a> {
    /// Bundles the MFCR inputs.
    ///
    /// # Panics
    /// Panics if the profile's candidate count does not match the database — mixing inputs
    /// from different populations is a programming error.
    pub fn new(
        db: &'a CandidateDb,
        groups: &'a GroupIndex,
        profile: &'a RankingProfile,
        thresholds: FairnessThresholds,
    ) -> Self {
        assert_eq!(
            db.len(),
            profile.num_candidates(),
            "profile and database must cover the same candidates"
        );
        assert_eq!(
            db.len(),
            groups.num_candidates(),
            "group index and database must cover the same candidates"
        );
        Self {
            db,
            groups,
            profile,
            thresholds,
        }
    }

    /// Attribute names in schema order (used to label solver constraints).
    pub fn attribute_labels(&self) -> Vec<String> {
        self.db
            .schema()
            .attributes()
            .map(|(_, a)| a.name().to_string())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mani_ranking::{CandidateDbBuilder, Ranking};

    fn db() -> CandidateDb {
        let mut b = CandidateDbBuilder::new();
        let g = b.add_attribute("Gender", ["M", "W"]).unwrap();
        for i in 0..4usize {
            b.add_candidate(format!("c{i}"), [(g, i % 2)]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn context_bundles_inputs() {
        let db = db();
        let groups = GroupIndex::new(&db);
        let profile = RankingProfile::new(vec![Ranking::identity(4)]).unwrap();
        let ctx = MfcrContext::new(&db, &groups, &profile, FairnessThresholds::uniform(0.2));
        assert_eq!(ctx.attribute_labels(), vec!["Gender".to_string()]);
        assert_eq!(ctx.thresholds.default_delta(), 0.2);
    }

    #[test]
    #[should_panic(expected = "same candidates")]
    fn mismatched_profile_is_rejected() {
        let db = db();
        let groups = GroupIndex::new(&db);
        let profile = RankingProfile::new(vec![Ranking::identity(5)]).unwrap();
        let _ = MfcrContext::new(&db, &groups, &profile, FairnessThresholds::default());
    }
}
