//! Shared input bundle for MFCR methods.

use std::borrow::Cow;

use mani_fairness::FairnessThresholds;
use mani_ranking::{CandidateDb, GroupIndex, Parallelism, PrecedenceMatrix, RankingProfile};

/// Everything an MFCR method needs: the candidate database, its group index, the base
/// rankings, and the fairness thresholds Δ.
///
/// Optionally the context can carry a *precomputed* precedence matrix for the profile
/// (see [`MfcrContext::with_precedence`]); every pairwise method then reuses it instead
/// of paying the `O(n² · |R|)` construction cost again. The batch engine in `mani-engine`
/// uses this to compute each dataset's matrix exactly once per batch.
#[derive(Debug, Clone)]
pub struct MfcrContext<'a> {
    /// Candidate database `X`.
    pub db: &'a CandidateDb,
    /// Precomputed group index over `X`.
    pub groups: &'a GroupIndex,
    /// Base rankings `R`.
    pub profile: &'a RankingProfile,
    /// Fairness thresholds (uniform Δ or per-axis overrides).
    pub thresholds: FairnessThresholds,
    /// Precomputed precedence matrix for `profile`, if the caller already has one.
    precedence: Option<&'a PrecedenceMatrix>,
    /// Kernel-parallelism budget for this solve (serial by default).
    parallelism: Parallelism,
}

impl<'a> MfcrContext<'a> {
    /// Bundles the MFCR inputs.
    ///
    /// # Panics
    /// Panics if the profile's candidate count does not match the database — mixing inputs
    /// from different populations is a programming error.
    pub fn new(
        db: &'a CandidateDb,
        groups: &'a GroupIndex,
        profile: &'a RankingProfile,
        thresholds: FairnessThresholds,
    ) -> Self {
        assert_eq!(
            db.len(),
            profile.num_candidates(),
            "profile and database must cover the same candidates"
        );
        assert_eq!(
            db.len(),
            groups.num_candidates(),
            "group index and database must cover the same candidates"
        );
        Self {
            db,
            groups,
            profile,
            thresholds,
            precedence: None,
            parallelism: Parallelism::serial(),
        }
    }

    /// Sets the kernel-parallelism budget for every method run against this
    /// context. Parallel kernels are bit-identical to their serial
    /// counterparts, so this only changes how fast methods run — never what
    /// they return (except solver-anytime results when the node budget is
    /// exhausted mid-search).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The kernel-parallelism budget for this context.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Attaches a precomputed precedence matrix for this context's profile.
    ///
    /// # Panics
    /// Panics if the matrix's candidate or ranking count does not match the profile — a
    /// matrix from a different profile would silently corrupt every pairwise method.
    pub fn with_precedence(mut self, precedence: &'a PrecedenceMatrix) -> Self {
        assert_eq!(
            precedence.num_candidates(),
            self.profile.num_candidates(),
            "precedence matrix and profile must cover the same candidates"
        );
        assert_eq!(
            precedence.num_rankings(),
            self.profile.len(),
            "precedence matrix must be built from the same number of rankings"
        );
        self.precedence = Some(precedence);
        self
    }

    /// The profile's precedence matrix: borrowed when one was attached via
    /// [`MfcrContext::with_precedence`], freshly computed otherwise.
    pub fn precedence_matrix(&self) -> Cow<'a, PrecedenceMatrix> {
        match self.precedence {
            Some(matrix) => Cow::Borrowed(matrix),
            // The sharded build is bit-identical to the serial one, so the
            // context's parallelism budget can be applied transparently here.
            None => Cow::Owned(self.profile.precedence_matrix_with(&self.parallelism)),
        }
    }

    /// The attached precedence matrix, if any (used by tests and diagnostics).
    pub fn shared_precedence(&self) -> Option<&'a PrecedenceMatrix> {
        self.precedence
    }

    /// Attribute names in schema order (used to label solver constraints).
    pub fn attribute_labels(&self) -> Vec<String> {
        self.db
            .schema()
            .attributes()
            .map(|(_, a)| a.name().to_string())
            .collect()
    }
}

/// Resolves the solver config for a context: a config whose parallelism was
/// left serial inherits the context's budget (set by the engine layer); a
/// config with explicit parallelism wins.
pub(crate) fn solver_config_for_ctx(
    config: &mani_solver::SolverConfig,
    ctx: &MfcrContext<'_>,
) -> mani_solver::SolverConfig {
    let mut resolved = config.clone();
    if resolved.parallelism.is_serial() {
        resolved.parallelism = ctx.parallelism();
    }
    resolved
}

#[cfg(test)]
mod tests {
    use super::*;
    use mani_ranking::{CandidateDbBuilder, Ranking};

    fn db() -> CandidateDb {
        let mut b = CandidateDbBuilder::new();
        let g = b.add_attribute("Gender", ["M", "W"]).unwrap();
        for i in 0..4usize {
            b.add_candidate(format!("c{i}"), [(g, i % 2)]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn context_bundles_inputs() {
        let db = db();
        let groups = GroupIndex::new(&db);
        let profile = RankingProfile::new(vec![Ranking::identity(4)]).unwrap();
        let ctx = MfcrContext::new(&db, &groups, &profile, FairnessThresholds::uniform(0.2));
        assert_eq!(ctx.attribute_labels(), vec!["Gender".to_string()]);
        assert_eq!(ctx.thresholds.default_delta(), 0.2);
    }

    #[test]
    fn attached_precedence_matrix_is_borrowed_not_recomputed() {
        let db = db();
        let groups = GroupIndex::new(&db);
        let profile = RankingProfile::new(vec![Ranking::identity(4)]).unwrap();
        let matrix = profile.precedence_matrix();
        let ctx = MfcrContext::new(&db, &groups, &profile, FairnessThresholds::uniform(0.2))
            .with_precedence(&matrix);
        assert!(ctx.shared_precedence().is_some());
        assert!(matches!(ctx.precedence_matrix(), Cow::Borrowed(_)));
        // Without an attachment the matrix is computed on demand.
        let plain = MfcrContext::new(&db, &groups, &profile, FairnessThresholds::uniform(0.2));
        assert!(plain.shared_precedence().is_none());
        assert!(matches!(plain.precedence_matrix(), Cow::Owned(_)));
        assert_eq!(plain.precedence_matrix().as_ref(), &matrix);
    }

    #[test]
    #[should_panic(expected = "same candidates")]
    fn mismatched_precedence_is_rejected() {
        let db = db();
        let groups = GroupIndex::new(&db);
        let profile = RankingProfile::new(vec![Ranking::identity(4)]).unwrap();
        let other_profile = RankingProfile::new(vec![Ranking::identity(5)]).unwrap();
        let matrix = other_profile.precedence_matrix();
        let _ = MfcrContext::new(&db, &groups, &profile, FairnessThresholds::uniform(0.2))
            .with_precedence(&matrix);
    }

    #[test]
    #[should_panic(expected = "same candidates")]
    fn mismatched_profile_is_rejected() {
        let db = db();
        let groups = GroupIndex::new(&db);
        let profile = RankingProfile::new(vec![Ranking::identity(5)]).unwrap();
        let _ = MfcrContext::new(&db, &groups, &profile, FairnessThresholds::default());
    }
}
