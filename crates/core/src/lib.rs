//! # mani-core
//!
//! The MANI-Rank paper's primary contribution: algorithms for the Multi-attribute Fair
//! Consensus Ranking (MFCR) problem.
//!
//! Given a candidate database with multiple, multi-valued protected attributes, a profile
//! of base rankings, and a desired proximity-to-parity Δ, an MFCR method produces a
//! consensus ranking that (1) satisfies the MANI-Rank group fairness criteria and (2)
//! represents the base rankings' preferences with as little pairwise-disagreement loss as
//! possible.
//!
//! ## The method family
//!
//! | Method | Strategy | Paper section |
//! |---|---|---|
//! | [`FairKemeny`] | exact constrained Kemeny optimisation (via `mani-solver`) | III-A |
//! | [`FairCopeland`] | Copeland consensus + [`make_mr_fair()`] correction | III-B |
//! | [`FairSchulze`] | Schulze consensus + [`make_mr_fair()`] correction | III-B |
//! | [`FairBorda`] | Borda consensus + [`make_mr_fair()`] correction | III-B |
//!
//! plus the comparison baselines of Section IV-B in [`baselines`]: exact (unfair) Kemeny,
//! Kemeny-Weighted, Pick-Fairest-Perm, and Correct-Fairest-Perm.
//!
//! ## Quick example
//!
//! ```
//! use mani_core::{FairBorda, MfcrContext, MfcrMethod};
//! use mani_datagen::{paper_population_90, FairnessTarget, MallowsModel, ModalRankingBuilder};
//! use mani_fairness::FairnessThresholds;
//! use mani_ranking::GroupIndex;
//!
//! let db = paper_population_90();
//! let groups = GroupIndex::new(&db);
//! let builder = ModalRankingBuilder::new(&db);
//! let modal = builder.build(&FairnessTarget::low_fair(2));
//! let profile = MallowsModel::new(modal, 0.6).sample_profile(20, 7);
//!
//! let ctx = MfcrContext::new(&db, &groups, &profile, FairnessThresholds::uniform(0.1));
//! let outcome = FairBorda::default().solve(&ctx).unwrap();
//! assert!(outcome.criteria.is_satisfied());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod context;
pub mod fair_borda;
pub mod fair_copeland;
pub mod fair_kemeny;
pub mod fair_schulze;
pub mod make_mr_fair;
pub mod methods;
pub mod report;
#[cfg(test)]
mod test_support;

pub use baselines::{CorrectFairestPerm, ExactKemeny, KemenyWeighted, PickFairestPerm};
pub use context::MfcrContext;
pub use fair_borda::FairBorda;
pub use fair_copeland::FairCopeland;
pub use fair_kemeny::FairKemeny;
pub use fair_schulze::FairSchulze;
pub use make_mr_fair::{make_mr_fair, CorrectionReport};
pub use methods::{MethodKind, MfcrMethod};
pub use report::MfcrOutcome;
