//! Fair-Kemeny (Algorithm 1): exact Kemeny optimisation subject to MANI-Rank constraints.
//!
//! The paper formulates Fair-Kemeny as an integer program solved by CPLEX. Here the same
//! optimisation problem — minimise pairwise disagreement subject to `ARP_pk ≤ Δ` and
//! `IRP ≤ Δ` — is solved exactly by the branch-and-bound search in `mani-solver`, seeded
//! with the Fair-Borda solution as a feasible incumbent. For candidate sets beyond the
//! configured node budget the solver degrades gracefully to an anytime result (reported
//! through [`MfcrOutcome::optimal`]).

use mani_ranking::Result;
use mani_solver::{constraints::constraints_from_thresholds, KemenyProblem, SolverConfig};

use crate::context::{solver_config_for_ctx, MfcrContext};
use crate::fair_borda::FairBorda;
use crate::methods::MfcrMethod;
use crate::report::MfcrOutcome;

/// The Fair-Kemeny MFCR method.
#[derive(Debug, Clone, Default)]
pub struct FairKemeny {
    solver_config: SolverConfig,
}

impl FairKemeny {
    /// Creates a Fair-Kemeny solver with the default node budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a Fair-Kemeny solver with an explicit node budget (anytime behaviour when
    /// the budget is too small to prove optimality).
    pub fn with_config(solver_config: SolverConfig) -> Self {
        Self { solver_config }
    }
}

impl MfcrMethod for FairKemeny {
    fn name(&self) -> &'static str {
        "Fair-Kemeny"
    }

    fn solve(&self, ctx: &MfcrContext<'_>) -> Result<MfcrOutcome> {
        let matrix = ctx.precedence_matrix().into_owned();
        let constraints =
            constraints_from_thresholds(ctx.groups, &ctx.thresholds, &ctx.attribute_labels());
        let problem = KemenyProblem::constrained(matrix, constraints);

        // Seed the search with the Fair-Borda consensus: feasible whenever Make-MR-Fair
        // reached the threshold, which gives the branch and bound an immediate upper bound.
        let incumbent = FairBorda::new().solve(ctx)?;
        let config = solver_config_for_ctx(&self.solver_config, ctx);
        let outcome = mani_solver::solve(&problem, Some(&incumbent.ranking), &config);
        Ok(
            MfcrOutcome::evaluate(self.name(), ctx, outcome.ranking, 0, outcome.optimal)?
                .with_nodes(outcome.nodes_explored),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::ExactKemeny;
    use crate::test_support::{low_fair_context, TestFixture};

    #[test]
    fn fair_kemeny_satisfies_mani_rank() {
        let fixture = TestFixture::low_fair(12, 12, 0.6, 41);
        let ctx = low_fair_context(&fixture, 0.25);
        let outcome = FairKemeny::new().solve(&ctx).unwrap();
        assert!(outcome.criteria.is_satisfied());
    }

    #[test]
    fn fair_kemeny_pd_loss_never_beats_unfair_kemeny() {
        // PoF >= 0: the constrained result cannot represent preferences better than the
        // unconstrained optimum.
        let fixture = TestFixture::low_fair(12, 10, 0.8, 43);
        let ctx = low_fair_context(&fixture, 0.25);
        let fair = FairKemeny::new().solve(&ctx).unwrap();
        let unfair = ExactKemeny::new().solve(&ctx).unwrap();
        assert!(
            unfair.optimal,
            "unconstrained exact Kemeny at n = 12 must close"
        );
        assert!(fair.pd_loss >= unfair.pd_loss - 1e-12);
    }

    #[test]
    fn fair_kemeny_beats_or_matches_fair_borda_on_pd_loss() {
        // Fair-Kemeny optimises PD loss subject to the same constraints Fair-Borda merely
        // satisfies heuristically, so its loss is never higher when the search closes; when
        // the node budget is exhausted the Fair-Borda incumbent itself bounds the result.
        let fixture = TestFixture::low_fair(12, 10, 0.6, 47);
        let ctx = low_fair_context(&fixture, 0.25);
        let kemeny = FairKemeny::new().solve(&ctx).unwrap();
        let borda = crate::FairBorda::new().solve(&ctx).unwrap();
        if borda.criteria.is_satisfied() {
            assert!(kemeny.pd_loss <= borda.pd_loss + 1e-12);
        }
    }

    #[test]
    fn tiny_node_budget_degrades_to_anytime() {
        let fixture = TestFixture::low_fair(20, 10, 0.6, 51);
        let ctx = low_fair_context(&fixture, 0.25);
        let outcome = FairKemeny::with_config(SolverConfig::with_max_nodes(3))
            .solve(&ctx)
            .unwrap();
        assert!(!outcome.optimal);
        // Anytime result still satisfies the constraints because the incumbent did.
        assert!(outcome.criteria.is_satisfied());
    }
}
