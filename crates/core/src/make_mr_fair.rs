//! Make-MR-Fair (Algorithm 2): pairwise bias mitigation for a consensus ranking.
//!
//! Given a consensus ranking that may violate the MANI-Rank criteria, Make-MR-Fair
//! repeatedly:
//!
//! 1. finds the axis (protected attribute or intersection) with the largest parity
//!    violation relative to its threshold,
//! 2. within that axis identifies the group with the highest FPR (`G_highest`) and the
//!    group with the lowest FPR (`G_lowest`),
//! 3. takes the lowest-ranked member of `G_highest` that still has a `G_lowest` member
//!    ranked below it (`x_Gh`), and the highest-ranked such `G_lowest` member (`x_Gl`),
//! 4. swaps the two candidates.
//!
//! Each swap strictly decreases `G_highest`'s FPR and increases `G_lowest`'s, moving the
//! axis towards statistical parity while disturbing as few pairwise preferences as
//! possible. The loop terminates when every constrained axis is at or below its threshold
//! (or, as a safety net, when the swap budget of `ω(X) · (|P| + 1)` is exhausted — the
//! paper's worst-case bound).

use mani_fairness::{group_fprs, FairnessThresholds};
use mani_ranking::{total_pairs, GroupIndex, GroupMembership, Ranking};
use serde::Serialize;

/// Result of a Make-MR-Fair correction.
#[derive(Debug, Clone, Serialize)]
pub struct CorrectionReport {
    /// The corrected consensus ranking.
    #[serde(skip)]
    pub ranking: Ranking,
    /// Number of pairwise swaps applied.
    pub swaps: u64,
    /// True when every constrained axis ended at or below its threshold.
    pub satisfied: bool,
}

/// Numerical slack when comparing parity scores against Δ.
const EPS: f64 = 1e-9;

/// Applies Make-MR-Fair to `consensus` and returns the corrected ranking.
///
/// The pairwise-swap loop is the paper's Algorithm 2. When the greedy extreme-pair swaps
/// stall before reaching Δ (which happens when many small intersectional groups have to be
/// balanced simultaneously), the correction falls back to a *fair interleave*: candidates
/// are re-spread so that every group of the finest constrained partition occupies evenly
/// distributed positions while the within-group order of the input consensus is preserved,
/// and the greedy loop then polishes the result. The fallback trades a little extra PD loss
/// for guaranteed convergence; see `DESIGN.md`.
pub fn make_mr_fair(
    consensus: &Ranking,
    groups: &GroupIndex,
    thresholds: &FairnessThresholds,
) -> CorrectionReport {
    let first_pass = greedy_correction(consensus, groups, thresholds);
    if first_pass.satisfied {
        return first_pass;
    }
    // Fallback: evenly interleave the groups of the finest constrained partition, then let
    // the greedy pass polish any residual violation.
    let interleaved = fair_interleave(consensus, groups, thresholds);
    let mut second_pass = greedy_correction(&interleaved, groups, thresholds);
    second_pass.swaps += first_pass.swaps;
    second_pass
}

/// The paper's greedy extreme-pair swap loop (Algorithm 2).
fn greedy_correction(
    consensus: &Ranking,
    groups: &GroupIndex,
    thresholds: &FairnessThresholds,
) -> CorrectionReport {
    let mut ranking = consensus.clone();
    let n = ranking.len();
    // The paper's worst-case bound is ω(X) swaps per constrained axis, but a convergent run
    // needs far fewer (each early swap moves candidates over long distances). Cap the greedy
    // pass at a small multiple of n so a stalled pass hands over to the interleave fallback
    // quickly instead of burning the quadratic budget.
    let max_swaps =
        (total_pairs(n) * (groups.num_attributes() as u64 + 1)).min(32 * n as u64 + 512);
    let mut swaps = 0u64;

    loop {
        let Some(axis) = most_violating_axis(&ranking, groups, thresholds) else {
            return CorrectionReport {
                ranking,
                swaps,
                satisfied: true,
            };
        };
        // Correct the chosen axis all the way down to its threshold before re-examining the
        // others. Correcting one swap at a time and re-picking the most violating axis can
        // oscillate when two axes are correlated (each axis' swap partially undoes the
        // other's); fully correcting an axis per round behaves like coordinate descent and
        // converges on every workload in the evaluation.
        let membership = axis_membership(groups, axis);
        let delta = axis_delta(groups, thresholds, axis);
        let guard = CrossAxisGuard::new(&ranking, groups, thresholds, axis);
        let mut progressed = false;
        while group_fprs(&ranking, membership).max_pairwise_gap() > delta + EPS {
            if swaps >= max_swaps {
                return CorrectionReport {
                    ranking,
                    swaps,
                    satisfied: false,
                };
            }
            if !swap_towards_parity(&mut ranking, membership, &guard) {
                // No parity-reducing swap exists along this axis; the correction cannot make
                // further progress.
                return CorrectionReport {
                    ranking,
                    swaps,
                    satisfied: false,
                };
            }
            swaps += 1;
            progressed = true;
        }
        if !progressed {
            // The axis was already within threshold (numerical edge); avoid spinning.
            let satisfied = most_violating_axis(&ranking, groups, thresholds).is_none();
            return CorrectionReport {
                ranking,
                swaps,
                satisfied,
            };
        }
    }
}

/// Evenly re-spreads the groups of the finest constrained partition across the ranking
/// while preserving the within-group order of `consensus`.
///
/// Each candidate is assigned the quota position `(rank within its group + 0.5) / |group|`
/// and candidates are stably sorted by that quota; every group (and therefore every union
/// of groups, i.e. every protected-attribute group) ends up spread uniformly, which puts
/// all FPR scores near 0.5.
fn fair_interleave(
    consensus: &Ranking,
    groups: &GroupIndex,
    thresholds: &FairnessThresholds,
) -> Ranking {
    let n = consensus.len();
    let partition = finest_constrained_partition(groups, thresholds);
    // rank of each candidate within its partition cell, in consensus order
    let num_cells = partition.iter().copied().max().map_or(1, |m| m + 1);
    let mut cell_sizes = vec![0usize; num_cells];
    for &cell in &partition {
        cell_sizes[cell] += 1;
    }
    let mut seen = vec![0usize; num_cells];
    let mut keyed: Vec<(f64, usize, u32)> = Vec::with_capacity(n);
    for pos in 0..n {
        let cand = consensus.candidate_at(pos);
        let cell = partition[cand.index()];
        let quota = (seen[cell] as f64 + 0.5) / cell_sizes[cell] as f64;
        seen[cell] += 1;
        keyed.push((quota, pos, cand.0));
    }
    // Stable order: by quota, then by original position (preserves within-group order and
    // breaks cross-group ties deterministically by who was ranked higher).
    keyed.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });
    Ranking::from_ids(keyed.into_iter().map(|(_, _, id)| id))
        .expect("re-ordering a permutation yields a permutation")
}

/// Membership in the finest partition induced by the constrained axes: the intersection
/// when it is constrained, otherwise the product of the constrained attributes (or the
/// intersection again if nothing narrower is available).
fn finest_constrained_partition(
    groups: &GroupIndex,
    thresholds: &FairnessThresholds,
) -> Vec<usize> {
    if thresholds.intersection_delta().is_some() {
        return groups.intersection().membership().to_vec();
    }
    // Product of the constrained attributes' memberships, encoded in mixed radix.
    let n = groups.num_candidates();
    let mut codes = vec![0usize; n];
    let mut any = false;
    for (attr_id, membership) in groups.attributes() {
        if thresholds.attribute_delta(attr_id).is_none() {
            continue;
        }
        any = true;
        let radix = membership.num_groups();
        for (cand, code) in codes.iter_mut().enumerate() {
            *code = *code * radix + membership.membership()[cand];
        }
    }
    if any {
        codes
    } else {
        groups.intersection().membership().to_vec()
    }
}

/// Effective threshold of an axis under the given threshold configuration.
fn axis_delta(groups: &GroupIndex, thresholds: &FairnessThresholds, axis: AxisRef) -> f64 {
    match axis {
        AxisRef::Attribute(i) => {
            let attr_id = groups
                .attributes()
                .nth(i)
                .expect("axis index comes from enumeration")
                .0;
            thresholds.attribute_delta(attr_id).unwrap_or(1.0)
        }
        AxisRef::Intersection => thresholds.intersection_delta().unwrap_or(1.0),
    }
}

/// Which grouping axis a violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AxisRef {
    Attribute(usize),
    Intersection,
}

fn axis_membership(groups: &GroupIndex, axis: AxisRef) -> &GroupMembership {
    match axis {
        AxisRef::Attribute(i) => {
            let attr_id = groups
                .attributes()
                .nth(i)
                .expect("axis index comes from enumeration")
                .0;
            groups.attribute(attr_id)
        }
        AxisRef::Intersection => groups.intersection(),
    }
}

/// The constrained axis with the largest ARP/IRP among those exceeding their thresholds,
/// or `None` when the ranking already satisfies MANI-Rank.
fn most_violating_axis(
    ranking: &Ranking,
    groups: &GroupIndex,
    thresholds: &FairnessThresholds,
) -> Option<AxisRef> {
    let mut worst: Option<(AxisRef, f64)> = None;
    for (i, (attr_id, membership)) in groups.attributes().enumerate() {
        if let Some(delta) = thresholds.attribute_delta(attr_id) {
            let score = group_fprs(ranking, membership).max_pairwise_gap();
            if score > delta + EPS && worst.as_ref().is_none_or(|(_, s)| score > *s) {
                worst = Some((AxisRef::Attribute(i), score));
            }
        }
    }
    if let Some(delta) = thresholds.intersection_delta() {
        let score = group_fprs(ranking, groups.intersection()).max_pairwise_gap();
        if score > delta + EPS && worst.as_ref().is_none_or(|(_, s)| score > *s) {
            worst = Some((AxisRef::Intersection, score));
        }
    }
    worst.map(|(axis, _)| axis)
}

/// Cross-axis lookahead used to break deterministic swap cycles between correlated axes.
///
/// When correcting one axis, a swap moves one candidate down (`x_Gh`) and one up (`x_Gl`).
/// Another axis is harmed when the candidate moving down belongs to that axis's lowest-FPR
/// group, or the candidate moving up belongs to its highest-FPR group. The guard records,
/// for every *other* constrained axis, those "sensitive" groups (computed once per
/// correction round), so the pair selection can prefer swap partners that do not undo the
/// progress of previously corrected axes. Preference only — if no harmless partner exists,
/// the default Make-MR-Fair pair is used.
struct CrossAxisGuard {
    /// `(membership snapshot reference is not stored; we store per-candidate flags)`.
    avoid_moving_down: Vec<bool>,
    avoid_moving_up: Vec<bool>,
}

impl CrossAxisGuard {
    fn new(
        ranking: &Ranking,
        groups: &GroupIndex,
        thresholds: &FairnessThresholds,
        correcting: AxisRef,
    ) -> Self {
        let n = ranking.len();
        let mut avoid_moving_down = vec![false; n];
        let mut avoid_moving_up = vec![false; n];
        let mut mark = |membership: &GroupMembership| {
            let fprs = group_fprs(ranking, membership);
            let (Some(high), Some(low)) = (fprs.argmax(), fprs.argmin()) else {
                return;
            };
            for cand in 0..n {
                let g = membership.membership()[cand];
                if g == low {
                    avoid_moving_down[cand] = true;
                }
                if g == high {
                    avoid_moving_up[cand] = true;
                }
            }
        };
        for (i, (attr_id, membership)) in groups.attributes().enumerate() {
            if correcting == AxisRef::Attribute(i) {
                continue;
            }
            if thresholds.attribute_delta(attr_id).is_some() {
                mark(membership);
            }
        }
        if correcting != AxisRef::Intersection && thresholds.intersection_delta().is_some() {
            mark(groups.intersection());
        }
        Self {
            avoid_moving_down,
            avoid_moving_up,
        }
    }

    fn harmless_down(&self, candidate: mani_ranking::CandidateId) -> bool {
        !self.avoid_moving_down[candidate.index()]
    }

    fn harmless_up(&self, candidate: mani_ranking::CandidateId) -> bool {
        !self.avoid_moving_up[candidate.index()]
    }
}

/// One Make-MR-Fair swap along an axis; returns false when no valid pair exists.
fn swap_towards_parity(
    ranking: &mut Ranking,
    membership: &GroupMembership,
    guard: &CrossAxisGuard,
) -> bool {
    let fprs = group_fprs(ranking, membership);
    let (Some(high_group), Some(low_group)) = (fprs.argmax(), fprs.argmin()) else {
        return false;
    };
    if high_group == low_group {
        return false;
    }
    // Bottom-most member of the low group; x_Gh must be above it to have a partner.
    let mut bottom_low = None;
    for pos in (0..ranking.len()).rev() {
        if membership.group_of(ranking.candidate_at(pos)) == low_group {
            bottom_low = Some(pos);
            break;
        }
    }
    let Some(bottom_low) = bottom_low else {
        return false;
    };
    // x_Gh: lowest-ranked member of the high group above that position, preferring one whose
    // demotion does not hurt another constrained axis.
    let mut default_high = None;
    let mut preferred_high = None;
    for pos in (0..bottom_low).rev() {
        let cand = ranking.candidate_at(pos);
        if membership.group_of(cand) != high_group {
            continue;
        }
        if default_high.is_none() {
            default_high = Some(pos);
        }
        if guard.harmless_down(cand) {
            preferred_high = Some(pos);
            break;
        }
    }
    let Some(high_pos) = preferred_high.or(default_high) else {
        return false;
    };
    // x_Gl: highest-ranked member of the low group below x_Gh, preferring one whose
    // promotion does not hurt another constrained axis.
    let mut default_low = None;
    let mut preferred_low = None;
    for pos in (high_pos + 1)..ranking.len() {
        let cand = ranking.candidate_at(pos);
        if membership.group_of(cand) != low_group {
            continue;
        }
        if default_low.is_none() {
            default_low = Some(pos);
        }
        if guard.harmless_up(cand) {
            preferred_low = Some(pos);
            break;
        }
    }
    let Some(low_pos) = preferred_low.or(default_low) else {
        return false;
    };
    ranking.swap_positions(high_pos, low_pos);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use mani_fairness::{ManiRankCriteria, ParityScores};
    use mani_ranking::{kendall_tau, CandidateDb, CandidateDbBuilder};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn db_two_attrs(n: usize) -> (CandidateDb, GroupIndex) {
        let mut b = CandidateDbBuilder::new();
        let g = b.add_attribute("Gender", ["M", "W"]).unwrap();
        let r = b.add_attribute("Race", ["A", "B", "C"]).unwrap();
        for i in 0..n {
            b.add_candidate(format!("c{i}"), [(g, i % 2), (r, i % 3)])
                .unwrap();
        }
        let db = b.build().unwrap();
        let idx = GroupIndex::new(&db);
        (db, idx)
    }

    fn segregated(db: &CandidateDb) -> Ranking {
        let mut ids: Vec<u32> = db.candidate_ids().map(|c| c.0).collect();
        ids.sort_by_key(|&id| {
            let cand = db.candidate(mani_ranking::CandidateId(id)).unwrap();
            (cand.values()[0].index(), cand.values()[1].index(), id)
        });
        Ranking::from_ids(ids).unwrap()
    }

    #[test]
    fn already_fair_ranking_is_untouched() {
        let (_db, idx) = db_two_attrs(12);
        let ranking = Ranking::identity(12);
        let thresholds = FairnessThresholds::uniform(1.0);
        let report = make_mr_fair(&ranking, &idx, &thresholds);
        assert!(report.satisfied);
        assert_eq!(report.swaps, 0);
        assert_eq!(report.ranking, ranking);
    }

    #[test]
    fn segregated_ranking_is_corrected_to_delta() {
        let (db, idx) = db_two_attrs(24);
        let ranking = segregated(&db);
        let thresholds = FairnessThresholds::uniform(0.1);
        // sanity: the input violates the criteria badly
        assert!(!ManiRankCriteria::evaluate(&ranking, &idx, &thresholds).is_satisfied());

        let report = make_mr_fair(&ranking, &idx, &thresholds);
        assert!(report.satisfied, "correction should reach Δ = 0.1");
        assert!(report.swaps > 0);
        let criteria = ManiRankCriteria::evaluate(&report.ranking, &idx, &thresholds);
        assert!(criteria.is_satisfied());
        // the corrected ranking is still a valid permutation
        report.ranking.check_invariants().unwrap();
    }

    #[test]
    fn tighter_delta_requires_more_swaps() {
        let (db, idx) = db_two_attrs(30);
        let ranking = segregated(&db);
        let loose = make_mr_fair(&ranking, &idx, &FairnessThresholds::uniform(0.4));
        let tight = make_mr_fair(&ranking, &idx, &FairnessThresholds::uniform(0.05));
        assert!(loose.satisfied && tight.satisfied);
        assert!(tight.swaps >= loose.swaps);
    }

    #[test]
    fn correction_moves_ranking_as_little_as_needed() {
        // The number of flipped pairs is bounded by the number of swaps times the max span,
        // but more importantly a mild violation should cost far fewer flips than reversal.
        let (db, idx) = db_two_attrs(20);
        let ranking = segregated(&db);
        let report = make_mr_fair(&ranking, &idx, &FairnessThresholds::uniform(0.2));
        assert!(report.satisfied);
        let moved = kendall_tau(&ranking, &report.ranking).unwrap();
        assert!(moved < total_pairs(20) / 2, "moved {moved} pairs");
    }

    #[test]
    fn attributes_only_thresholds_ignore_intersection() {
        let (db, idx) = db_two_attrs(24);
        let ranking = segregated(&db);
        let thresholds = FairnessThresholds::attributes_only(0.1);
        let report = make_mr_fair(&ranking, &idx, &thresholds);
        assert!(report.satisfied);
        let parity = ParityScores::compute(&report.ranking, &idx);
        for &arp in parity.arps() {
            assert!(arp <= 0.1 + 1e-9);
        }
        // The intersection is typically still unfair — that is the point of Figure 3.
        // (We only check it was not explicitly constrained, not a specific value.)
    }

    #[test]
    fn per_attribute_overrides_are_honoured() {
        let (db, idx) = db_two_attrs(24);
        let gender = db.schema().attribute_id("Gender").unwrap();
        let race = db.schema().attribute_id("Race").unwrap();
        let thresholds = FairnessThresholds::uniform(0.3)
            .with_attribute_delta(gender, 0.05)
            .with_intersection_delta(0.5);
        let report = make_mr_fair(&segregated(&db), &idx, &thresholds);
        assert!(report.satisfied);
        let parity = ParityScores::compute(&report.ranking, &idx);
        assert!(parity.arp(gender) <= 0.05 + 1e-9);
        assert!(parity.arp(race) <= 0.3 + 1e-9);
        assert!(parity.irp() <= 0.5 + 1e-9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_correction_always_satisfies_reachable_delta(
            n_cells in 2usize..6,
            seed in any::<u64>(),
            delta in 0.15f64..0.6,
        ) {
            // 6 candidates per cell multiple ensures parity is reachable at moderate deltas.
            let (db, idx) = db_two_attrs(6 * n_cells);
            let mut rng = StdRng::seed_from_u64(seed);
            let ranking = Ranking::random(db.len(), &mut rng);
            let thresholds = FairnessThresholds::uniform(delta);
            let report = make_mr_fair(&ranking, &idx, &thresholds);
            prop_assert!(report.ranking.check_invariants().is_ok());
            if report.satisfied {
                let criteria = ManiRankCriteria::evaluate(&report.ranking, &idx, &thresholds);
                prop_assert!(criteria.is_satisfied());
            }
            // Two greedy passes (before and after the interleave fallback), each bounded by
            // ω(X)·(|P|+1)·4 with |P| = 2 attributes.
            prop_assert!(report.swaps <= total_pairs(db.len()) * 24);
        }
    }
}
