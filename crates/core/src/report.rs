//! MFCR method outcomes: the consensus ranking plus all its evaluation metrics.

use mani_fairness::{pairwise_disagreement_loss, FairnessAudit, ManiRankCriteria};
use mani_ranking::{Ranking, Result};
use serde::Serialize;

use crate::context::MfcrContext;

/// The result of running an MFCR method: the consensus ranking together with its fairness
/// and preference-representation metrics.
#[derive(Debug, Clone)]
pub struct MfcrOutcome {
    /// Name of the method that produced the ranking.
    pub method: &'static str,
    /// The consensus ranking.
    pub ranking: Ranking,
    /// Evaluation of the MANI-Rank criteria under the context's thresholds.
    pub criteria: ManiRankCriteria,
    /// Pairwise disagreement loss against the base rankings (Definition 9).
    pub pd_loss: f64,
    /// Number of pairwise swaps applied by Make-MR-Fair (zero for methods that do not use
    /// the correction subroutine).
    pub correction_swaps: u64,
    /// Whether the producing algorithm proved optimality (only meaningful for Fair-Kemeny
    /// and the exact Kemeny baseline; heuristic methods report `true`).
    pub optimal: bool,
    /// Branch-and-bound nodes expanded by the producing algorithm (zero for
    /// the polynomial methods, which do not search).
    pub nodes_explored: u64,
}

impl MfcrOutcome {
    /// Evaluates a consensus ranking produced by `method` in the given context.
    ///
    /// When the context carries a shared precedence matrix the PD loss is read
    /// off the matrix in `O(n²)` instead of re-walking all `|R|` base rankings;
    /// both paths compute the identical integer total, so the value is
    /// bit-for-bit the same.
    pub fn evaluate(
        method: &'static str,
        ctx: &MfcrContext<'_>,
        ranking: Ranking,
        correction_swaps: u64,
        optimal: bool,
    ) -> Result<Self> {
        let criteria = ManiRankCriteria::evaluate(&ranking, ctx.groups, &ctx.thresholds);
        let pd_loss = match ctx.shared_precedence() {
            Some(matrix) => {
                let total = matrix.total_disagreements_parallel(&ranking, &ctx.parallelism())?;
                let denom = mani_ranking::total_pairs(ctx.profile.num_candidates())
                    * ctx.profile.len() as u64;
                if denom == 0 {
                    0.0
                } else {
                    total as f64 / denom as f64
                }
            }
            None => pairwise_disagreement_loss(ctx.profile, &ranking)?,
        };
        Ok(Self {
            method,
            ranking,
            criteria,
            pd_loss,
            correction_swaps,
            optimal,
            nodes_explored: 0,
        })
    }

    /// Records how many search nodes the producing algorithm expanded (used by
    /// the exact solver methods; polynomial methods keep the zero default).
    pub fn with_nodes(mut self, nodes_explored: u64) -> Self {
        self.nodes_explored = nodes_explored;
        self
    }

    /// Full fairness audit of the consensus ranking (per-group FPR scores).
    pub fn audit(&self, ctx: &MfcrContext<'_>) -> FairnessAudit {
        FairnessAudit::new(self.method, &self.ranking, ctx.db, ctx.groups)
    }

    /// A serialisable summary row, used by the experiment harness.
    pub fn summary(&self) -> OutcomeSummary {
        OutcomeSummary {
            method: self.method.to_string(),
            pd_loss: self.pd_loss,
            arps: self.criteria.parity().arps().to_vec(),
            irp: self.criteria.parity().irp(),
            satisfied: self.criteria.is_satisfied(),
            correction_swaps: self.correction_swaps,
            optimal: self.optimal,
        }
    }
}

/// Flat summary of an [`MfcrOutcome`] for CSV/JSON output.
#[derive(Debug, Clone, Serialize)]
pub struct OutcomeSummary {
    /// Method name.
    pub method: String,
    /// Pairwise disagreement loss.
    pub pd_loss: f64,
    /// ARP per protected attribute, in schema order.
    pub arps: Vec<f64>,
    /// IRP of the intersection.
    pub irp: f64,
    /// Whether the MANI-Rank criteria were satisfied.
    pub satisfied: bool,
    /// Swaps performed by Make-MR-Fair.
    pub correction_swaps: u64,
    /// Whether the method proved optimality.
    pub optimal: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mani_fairness::FairnessThresholds;
    use mani_ranking::{CandidateDbBuilder, GroupIndex, RankingProfile};

    #[test]
    fn evaluate_computes_all_metrics() {
        let mut b = CandidateDbBuilder::new();
        let g = b.add_attribute("G", ["x", "y"]).unwrap();
        for i in 0..6usize {
            b.add_candidate(format!("c{i}"), [(g, i % 2)]).unwrap();
        }
        let db = b.build().unwrap();
        let groups = GroupIndex::new(&db);
        let base = Ranking::identity(6);
        let profile = RankingProfile::new(vec![base.clone(), base.clone()]).unwrap();
        let ctx = MfcrContext::new(&db, &groups, &profile, FairnessThresholds::uniform(0.5));

        let outcome = MfcrOutcome::evaluate("Test", &ctx, base.clone(), 3, true).unwrap();
        assert_eq!(outcome.method, "Test");
        assert_eq!(outcome.pd_loss, 0.0);
        assert!(outcome.criteria.is_satisfied());
        assert_eq!(outcome.correction_swaps, 3);
        assert!(outcome.optimal);

        let audit = outcome.audit(&ctx);
        assert_eq!(audit.label, "Test");

        let summary = outcome.summary();
        assert_eq!(summary.method, "Test");
        assert!(summary.satisfied);
        assert_eq!(summary.arps.len(), 1);
        let json = serde_json::to_string(&summary).unwrap();
        assert!(json.contains("pd_loss"));
    }
}
