//! Fair-Borda (Section III-B): Borda aggregation followed by Make-MR-Fair correction.
//!
//! Borda is the fastest Kemeny approximation, so Fair-Borda is the paper's recommended
//! method for very large consensus problems (Tables II and III).

use mani_aggregation::BordaAggregator;
use mani_ranking::Result;

use crate::context::MfcrContext;
use crate::make_mr_fair::make_mr_fair;
use crate::methods::MfcrMethod;
use crate::report::MfcrOutcome;

/// The Fair-Borda MFCR method.
#[derive(Debug, Clone, Copy, Default)]
pub struct FairBorda;

impl FairBorda {
    /// Creates a Fair-Borda solver.
    pub fn new() -> Self {
        Self
    }
}

impl MfcrMethod for FairBorda {
    fn name(&self) -> &'static str {
        "Fair-Borda"
    }

    fn solve(&self, ctx: &MfcrContext<'_>) -> Result<MfcrOutcome> {
        let consensus = BordaAggregator::new().consensus(ctx.profile);
        let correction = make_mr_fair(&consensus, ctx.groups, &ctx.thresholds);
        MfcrOutcome::evaluate(self.name(), ctx, correction.ranking, correction.swaps, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{low_fair_context, TestFixture};

    #[test]
    fn fair_borda_satisfies_mani_rank() {
        let fixture = TestFixture::low_fair(60, 25, 0.6, 11);
        let ctx = low_fair_context(&fixture, 0.1);
        let outcome = FairBorda::new().solve(&ctx).unwrap();
        assert!(outcome.criteria.is_satisfied());
        assert!(
            outcome.correction_swaps > 0,
            "unfair profile needs correction"
        );
        outcome.ranking.check_invariants().unwrap();
    }

    #[test]
    fn fair_borda_pd_loss_is_bounded_by_correction() {
        // The fair ranking can lose preferences relative to plain Borda, but never more
        // than the theoretical maximum of 1.
        let fixture = TestFixture::low_fair(60, 25, 0.6, 13);
        let ctx = low_fair_context(&fixture, 0.1);
        let outcome = FairBorda::new().solve(&ctx).unwrap();
        assert!((0.0..=1.0).contains(&outcome.pd_loss));
    }

    #[test]
    fn unconstrained_thresholds_reduce_to_plain_borda() {
        let fixture = TestFixture::low_fair(30, 10, 0.8, 17);
        let ctx = crate::test_support::context_with(
            &fixture,
            mani_fairness::FairnessThresholds::unconstrained(),
        );
        let outcome = FairBorda::new().solve(&ctx).unwrap();
        let plain = mani_aggregation::BordaAggregator::new().consensus(ctx.profile);
        assert_eq!(outcome.ranking, plain);
        assert_eq!(outcome.correction_swaps, 0);
    }
}
