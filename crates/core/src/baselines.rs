//! The comparison baselines of the paper's experimental study (Section IV-B):
//!
//! * [`ExactKemeny`] — traditional fairness-unaware Kemeny aggregation (exact, via the
//!   branch-and-bound solver).
//! * [`KemenyWeighted`] — orders the base rankings from least to most fair and weights the
//!   fairest by `|R|` down to 1 for the least fair, then solves weighted Kemeny.
//! * [`PickFairestPerm`] — returns the fairest base ranking (a fairness-aware variant of
//!   Pick-A-Perm).
//! * [`CorrectFairestPerm`] — applies Make-MR-Fair to the fairest base ranking.
//!
//! The first three do not satisfy MFCR's group-fairness criteria in general; the fourth
//! satisfies them but represents the base rankings poorly. They exist to reproduce
//! Figures 4–7.

use mani_aggregation::{
    kemeny_local_search, weighted_precedence_matrix, BordaAggregator, LocalSearchConfig,
};
use mani_fairness::ParityScores;
use mani_ranking::{Ranking, Result};
use mani_solver::{KemenyProblem, SolverConfig};

use crate::context::{solver_config_for_ctx, MfcrContext};
use crate::make_mr_fair::make_mr_fair;
use crate::methods::MfcrMethod;
use crate::report::MfcrOutcome;

/// Fairness score of a base ranking used to order rankings by fairness: the maximum parity
/// violation across all protected attributes and the intersection (lower is fairer).
fn unfairness(ranking: &Ranking, ctx: &MfcrContext<'_>) -> f64 {
    ParityScores::compute(ranking, ctx.groups).max_violation()
}

/// Index of the fairest base ranking (ties broken by profile order).
fn fairest_index(ctx: &MfcrContext<'_>) -> usize {
    let mut best = 0usize;
    let mut best_score = f64::INFINITY;
    for (i, ranking) in ctx.profile.rankings().iter().enumerate() {
        let score = unfairness(ranking, ctx);
        if score < best_score {
            best_score = score;
            best = i;
        }
    }
    best
}

/// Traditional (fairness-unaware) exact Kemeny aggregation.
#[derive(Debug, Clone, Default)]
pub struct ExactKemeny {
    solver_config: SolverConfig,
}

impl ExactKemeny {
    /// Creates an exact Kemeny baseline with the default node budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an exact Kemeny baseline with an explicit node budget.
    pub fn with_config(solver_config: SolverConfig) -> Self {
        Self { solver_config }
    }
}

impl MfcrMethod for ExactKemeny {
    fn name(&self) -> &'static str {
        "Kemeny"
    }

    fn solve(&self, ctx: &MfcrContext<'_>) -> Result<MfcrOutcome> {
        let matrix = ctx.precedence_matrix().into_owned();
        // Seed with a locally-optimal refinement of the Borda consensus.
        let borda = BordaAggregator::new().consensus(ctx.profile);
        let (incumbent, _) = kemeny_local_search(&matrix, &borda, LocalSearchConfig::default())?;
        let problem = KemenyProblem::unconstrained(matrix);
        let config = solver_config_for_ctx(&self.solver_config, ctx);
        let outcome = mani_solver::solve(&problem, Some(&incumbent), &config);
        Ok(
            MfcrOutcome::evaluate(self.name(), ctx, outcome.ranking, 0, outcome.optimal)?
                .with_nodes(outcome.nodes_explored),
        )
    }
}

/// Kemeny-Weighted: the fairest base ranking gets weight `|R|`, the least fair weight 1.
#[derive(Debug, Clone, Default)]
pub struct KemenyWeighted {
    solver_config: SolverConfig,
}

impl KemenyWeighted {
    /// Creates a Kemeny-Weighted baseline with the default node budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a Kemeny-Weighted baseline with an explicit node budget.
    pub fn with_config(solver_config: SolverConfig) -> Self {
        Self { solver_config }
    }

    /// Computes the per-ranking weights: rankings sorted from least to most fair receive
    /// weights `1..=|R|`.
    pub fn weights(ctx: &MfcrContext<'_>) -> Vec<u64> {
        let m = ctx.profile.len();
        let mut order: Vec<usize> = (0..m).collect();
        let scores: Vec<f64> = ctx
            .profile
            .rankings()
            .iter()
            .map(|r| unfairness(r, ctx))
            .collect();
        // Sort by descending unfairness: position 0 = least fair -> weight 1.
        order.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut weights = vec![0u64; m];
        for (rank, &idx) in order.iter().enumerate() {
            weights[idx] = rank as u64 + 1;
        }
        weights
    }
}

impl MfcrMethod for KemenyWeighted {
    fn name(&self) -> &'static str {
        "Kemeny-Weighted"
    }

    fn solve(&self, ctx: &MfcrContext<'_>) -> Result<MfcrOutcome> {
        let weights = Self::weights(ctx);
        let matrix = weighted_precedence_matrix(ctx.profile, &weights)?;
        let borda = BordaAggregator::new().consensus(ctx.profile);
        let (incumbent, _) = kemeny_local_search(&matrix, &borda, LocalSearchConfig::default())?;
        let problem = KemenyProblem::unconstrained(matrix);
        let config = solver_config_for_ctx(&self.solver_config, ctx);
        let outcome = mani_solver::solve(&problem, Some(&incumbent), &config);
        Ok(
            MfcrOutcome::evaluate(self.name(), ctx, outcome.ranking, 0, outcome.optimal)?
                .with_nodes(outcome.nodes_explored),
        )
    }
}

/// Pick-Fairest-Perm: return the fairest base ranking unchanged.
#[derive(Debug, Clone, Copy, Default)]
pub struct PickFairestPerm;

impl PickFairestPerm {
    /// Creates a Pick-Fairest-Perm baseline.
    pub fn new() -> Self {
        Self
    }
}

impl MfcrMethod for PickFairestPerm {
    fn name(&self) -> &'static str {
        "Pick-Fairest-Perm"
    }

    fn solve(&self, ctx: &MfcrContext<'_>) -> Result<MfcrOutcome> {
        let idx = fairest_index(ctx);
        let ranking = ctx.profile.rankings()[idx].clone();
        MfcrOutcome::evaluate(self.name(), ctx, ranking, 0, true)
    }
}

/// Correct-Fairest-Perm: apply Make-MR-Fair to the fairest base ranking.
#[derive(Debug, Clone, Copy, Default)]
pub struct CorrectFairestPerm;

impl CorrectFairestPerm {
    /// Creates a Correct-Fairest-Perm baseline.
    pub fn new() -> Self {
        Self
    }
}

impl MfcrMethod for CorrectFairestPerm {
    fn name(&self) -> &'static str {
        "Correct-Fairest-Perm"
    }

    fn solve(&self, ctx: &MfcrContext<'_>) -> Result<MfcrOutcome> {
        let idx = fairest_index(ctx);
        let fairest = ctx.profile.rankings()[idx].clone();
        let correction = make_mr_fair(&fairest, ctx.groups, &ctx.thresholds);
        MfcrOutcome::evaluate(self.name(), ctx, correction.ranking, correction.swaps, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{low_fair_context, TestFixture};

    #[test]
    fn exact_kemeny_minimises_pd_loss_among_all_methods() {
        let fixture = TestFixture::low_fair(12, 12, 0.6, 61);
        let ctx = low_fair_context(&fixture, 0.1);
        let kemeny = ExactKemeny::new().solve(&ctx).unwrap();
        assert!(kemeny.optimal);
        for method in [
            Box::new(crate::FairBorda::new()) as Box<dyn MfcrMethod>,
            Box::new(crate::FairCopeland::new()),
            Box::new(PickFairestPerm::new()),
            Box::new(CorrectFairestPerm::new()),
        ] {
            let other = method.solve(&ctx).unwrap();
            assert!(
                kemeny.pd_loss <= other.pd_loss + 1e-12,
                "{} has lower PD loss than exact Kemeny",
                other.method
            );
        }
    }

    #[test]
    fn kemeny_weighted_weights_span_one_to_m() {
        let fixture = TestFixture::low_fair(20, 7, 0.4, 67);
        let ctx = low_fair_context(&fixture, 0.1);
        let weights = KemenyWeighted::weights(&ctx);
        assert_eq!(weights.len(), 7);
        let mut sorted = weights.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3, 4, 5, 6, 7]);
        // the fairest ranking carries the largest weight
        let fairest = fairest_index(&ctx);
        assert_eq!(weights[fairest], 7);
    }

    #[test]
    fn pick_fairest_perm_returns_a_base_ranking() {
        let fixture = TestFixture::low_fair(24, 9, 0.5, 71);
        let ctx = low_fair_context(&fixture, 0.1);
        let outcome = PickFairestPerm::new().solve(&ctx).unwrap();
        assert!(ctx.profile.rankings().contains(&outcome.ranking));
        // it is the fairest of the base rankings
        let picked_violation = unfairness(&outcome.ranking, &ctx);
        for r in ctx.profile.rankings() {
            assert!(picked_violation <= unfairness(r, &ctx) + 1e-12);
        }
    }

    #[test]
    fn correct_fairest_perm_satisfies_criteria_with_higher_loss() {
        let fixture = TestFixture::low_fair(40, 15, 0.6, 73);
        let ctx = low_fair_context(&fixture, 0.1);
        let corrected = CorrectFairestPerm::new().solve(&ctx).unwrap();
        assert!(corrected.criteria.is_satisfied());
        let picked = PickFairestPerm::new().solve(&ctx).unwrap();
        // correcting can only move away from the base rankings
        assert!(corrected.pd_loss >= picked.pd_loss - 1e-12);
    }

    #[test]
    fn unfair_baselines_violate_tight_delta_on_unfair_profiles() {
        let fixture = TestFixture::low_fair(40, 15, 1.2, 79);
        let ctx = low_fair_context(&fixture, 0.05);
        let kemeny = ExactKemeny::with_config(SolverConfig::with_max_nodes(200_000))
            .solve(&ctx)
            .unwrap();
        // A strongly-biased, strongly-agreeing profile forces the unconstrained consensus
        // to reproduce the bias.
        assert!(!kemeny.criteria.is_satisfied());
    }
}
