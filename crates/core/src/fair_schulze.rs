//! Fair-Schulze (Section III-B): Schulze aggregation followed by Make-MR-Fair correction.

use mani_aggregation::SchulzeAggregator;
use mani_ranking::Result;

use crate::context::MfcrContext;
use crate::make_mr_fair::make_mr_fair;
use crate::methods::MfcrMethod;
use crate::report::MfcrOutcome;

/// The Fair-Schulze MFCR method.
#[derive(Debug, Clone, Copy, Default)]
pub struct FairSchulze;

impl FairSchulze {
    /// Creates a Fair-Schulze solver.
    pub fn new() -> Self {
        Self
    }
}

impl MfcrMethod for FairSchulze {
    fn name(&self) -> &'static str {
        "Fair-Schulze"
    }

    fn solve(&self, ctx: &MfcrContext<'_>) -> Result<MfcrOutcome> {
        let matrix = ctx.precedence_matrix();
        let consensus =
            SchulzeAggregator::new().consensus_from_matrix_with(&matrix, &ctx.parallelism());
        let correction = make_mr_fair(&consensus, ctx.groups, &ctx.thresholds);
        MfcrOutcome::evaluate(self.name(), ctx, correction.ranking, correction.swaps, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{low_fair_context, TestFixture};

    #[test]
    fn fair_schulze_satisfies_mani_rank() {
        let fixture = TestFixture::low_fair(60, 25, 0.6, 29);
        let ctx = low_fair_context(&fixture, 0.1);
        let outcome = FairSchulze::new().solve(&ctx).unwrap();
        assert!(outcome.criteria.is_satisfied());
        outcome.ranking.check_invariants().unwrap();
    }

    #[test]
    fn schulze_and_copeland_agree_on_strong_consensus() {
        // With a strongly concentrated profile both Condorcet methods should produce very
        // similar fair consensus rankings (identical parity status).
        let fixture = TestFixture::low_fair(40, 30, 1.5, 31);
        let ctx = low_fair_context(&fixture, 0.1);
        let schulze = FairSchulze::new().solve(&ctx).unwrap();
        let copeland = crate::FairCopeland::new().solve(&ctx).unwrap();
        assert_eq!(
            schulze.criteria.is_satisfied(),
            copeland.criteria.is_satisfied()
        );
        assert!((schulze.pd_loss - copeland.pd_loss).abs() < 0.15);
    }
}
