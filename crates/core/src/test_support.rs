//! Shared fixtures for the crate's unit tests (compiled only under `cfg(test)`).

use mani_datagen::{binary_population, FairnessTarget, MallowsModel, ModalRankingBuilder};
use mani_fairness::FairnessThresholds;
use mani_ranking::{CandidateDb, GroupIndex, RankingProfile};

use crate::context::MfcrContext;

/// Owns a generated database + profile so tests can borrow an [`MfcrContext`] from it.
pub struct TestFixture {
    pub db: CandidateDb,
    pub groups: GroupIndex,
    pub profile: RankingProfile,
}

impl TestFixture {
    /// A Low-Fair Mallows workload over a binary Gender × binary Race population.
    pub fn low_fair(n: usize, m: usize, theta: f64, seed: u64) -> Self {
        Self::with_target(n, m, theta, seed, FairnessTarget::low_fair(2))
    }

    /// A Mallows workload with an explicit modal fairness target.
    pub fn with_target(n: usize, m: usize, theta: f64, seed: u64, target: FairnessTarget) -> Self {
        let db = binary_population(n, 0.5, 0.5, seed);
        let groups = GroupIndex::new(&db);
        let modal = ModalRankingBuilder::new(&db).build(&target);
        let profile = MallowsModel::new(modal, theta).sample_profile(m, seed ^ 0xABCD);
        Self {
            db,
            groups,
            profile,
        }
    }
}

/// Context with a uniform Δ over a fixture.
pub fn low_fair_context(fixture: &TestFixture, delta: f64) -> MfcrContext<'_> {
    context_with(fixture, FairnessThresholds::uniform(delta))
}

/// Context with explicit thresholds over a fixture.
pub fn context_with(fixture: &TestFixture, thresholds: FairnessThresholds) -> MfcrContext<'_> {
    MfcrContext::new(&fixture.db, &fixture.groups, &fixture.profile, thresholds)
}
