//! Stamps the git describe string into the build as `MANI_GIT_DESCRIBE`,
//! surfaced by `GET /v1/version`. Builds from a tarball (no git) simply omit
//! the variable; the endpoint reports `null`.

fn main() {
    // Re-stamp when the checked-out commit moves.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
    let describe = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|output| output.status.success())
        .and_then(|output| String::from_utf8(output.stdout).ok())
        .map(|raw| raw.trim().to_string())
        .filter(|described| !described.is_empty());
    if let Some(described) = describe {
        println!("cargo:rustc-env=MANI_GIT_DESCRIBE={described}");
    }
}
