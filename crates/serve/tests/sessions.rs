//! Integration tests for dataset versioning over HTTP: `PATCH
//! /v1/datasets/{id}` edits, version pinning and eviction conflicts, stale
//! cached-payload protection, and `POST /v1/sessions` what-if streaming over
//! one keep-alive connection.

mod common;

use std::net::TcpStream;
use std::time::Duration;

use common::*;
use mani_serve::ServerConfig;
use serde::Value;

/// A PATCH body appending `ranking` (candidate names) `weight` times.
fn append_body(ranking: &str, weight: u32) -> String {
    format!(r#"{{"ops": [{{"op": "append", "ranking": [{ranking}], "weight": {weight}}}]}}"#)
}

#[test]
fn patch_bumps_versions_and_evicted_pins_conflict() {
    let handle = spawn_server(ServerConfig {
        engine: small_engine(2),
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    let (status, uploaded) = exchange(addr, "POST", "/v1/datasets", &demo_dataset("ver"));
    assert_eq!(status, 200, "{uploaded:?}");
    let id = uploaded
        .get("id")
        .and_then(Value::as_str)
        .unwrap()
        .to_string();
    assert_eq!(get_u64(&uploaded, &["version"]), 1);
    assert!(
        matches!(uploaded.get("fingerprint"), Some(Value::String(_))),
        "{uploaded:?}"
    );

    // Warm the version-1 matrix so the patch can delta-derive.
    let warm = format!(
        r#"{{"dataset": {{"id": "{id}"}}, "methods": ["Fair-Borda"], "delta": 0.2, "wait": true}}"#
    );
    let (status, _) = exchange(addr, "POST", "/v1/consensus", &warm);
    assert_eq!(status, 200);

    let (status, patched) = exchange(
        addr,
        "PATCH",
        &format!("/v1/datasets/{id}"),
        &append_body(r#""f","a","b","c","d","e""#, 2),
    );
    assert_eq!(status, 200, "{patched:?}");
    assert_eq!(get_u64(&patched, &["version"]), 2);
    assert_eq!(patched.get("derived"), Some(&Value::Bool(true)));
    assert_eq!(get_u64(&patched, &["appends"]), 2);
    assert_eq!(get_u64(&patched, &["rankings"]), 5);

    // The current version resolves to the edited rankings; pinning version 1
    // still reaches the original.
    let (status, meta) = exchange(addr, "GET", &format!("/v1/datasets/{id}"), "");
    assert_eq!(status, 200);
    assert_eq!(get_u64(&meta, &["version"]), 2);
    let pinned = format!(
        r#"{{"dataset": {{"id": "{id}", "version": 1}}, "methods": ["Fair-Borda"], "delta": 0.2, "wait": true}}"#
    );
    let (status, _) = exchange(addr, "POST", "/v1/consensus", &pinned);
    assert_eq!(status, 200);

    // Edit past the retention window: the version-1 pin becomes a 409
    // Conflict (evicted), distinct from 404 (never existed).
    for _ in 0..mani_serve::MAX_RETAINED_VERSIONS {
        let (status, body) = exchange(
            addr,
            "PATCH",
            &format!("/v1/datasets/{id}"),
            &append_body(r#""b","c","a","f","e","d""#, 1),
        );
        assert_eq!(status, 200, "{body:?}");
    }
    let (status, conflict) = exchange(addr, "POST", "/v1/consensus", &pinned);
    assert_eq!(status, 409, "{conflict:?}");
    let message = conflict.get("error").and_then(Value::as_str).unwrap_or("");
    assert!(message.contains("evicted"), "{conflict:?}");
    let (status, _) = exchange(addr, "POST", "/v1/consensus", &warm);
    assert_eq!(
        status, 200,
        "unpinned solves keep following the current version"
    );

    // An id that never existed stays 404.
    let (status, _) = exchange(
        addr,
        "PATCH",
        "/v1/datasets/ds-0000000000000000",
        &append_body(r#""a","b","c","d","e","f""#, 1),
    );
    assert_eq!(status, 404);
    handle.stop();
}

#[test]
fn patch_never_replays_pre_edit_cached_payloads() {
    let handle = spawn_server(ServerConfig {
        engine: small_engine(2),
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    let (_, uploaded) = exchange(addr, "POST", "/v1/datasets", &demo_dataset("stale"));
    let id = uploaded
        .get("id")
        .and_then(Value::as_str)
        .unwrap()
        .to_string();
    let solve = format!(
        r#"{{"dataset": {{"id": "{id}"}}, "methods": ["Fair-Borda"], "delta": 0.2, "wait": true}}"#
    );

    let (status, first) = exchange(addr, "POST", "/v1/consensus", &solve);
    assert_eq!(status, 200, "{first:?}");
    assert_eq!(first.get("cached"), Some(&Value::Bool(false)));
    let (_, replay) = exchange(addr, "POST", "/v1/consensus", &solve);
    assert_eq!(replay.get("cached"), Some(&Value::Bool(true)));

    // Editing the dataset changes its content fingerprint, so the same
    // by-reference request can never replay the pre-edit payload.
    let (status, _) = exchange(
        addr,
        "PATCH",
        &format!("/v1/datasets/{id}"),
        &append_body(r#""f","e","d","c","b","a""#, 5),
    );
    assert_eq!(status, 200);
    let (status, after) = exchange(addr, "POST", "/v1/consensus", &solve);
    assert_eq!(status, 200, "{after:?}");
    assert_eq!(
        after.get("cached"),
        Some(&Value::Bool(false)),
        "post-edit solve must not replay the pre-edit cache: {after:?}"
    );

    // DELETE leaves nothing addressable.
    let (status, _) = exchange(addr, "DELETE", &format!("/v1/datasets/{id}"), "");
    assert_eq!(status, 200);
    let (status, _) = exchange(addr, "POST", "/v1/consensus", &solve);
    assert_eq!(status, 404);
    handle.stop();
}

#[test]
fn sessions_stream_chunked_ndjson_on_a_keep_alive_connection() {
    let handle = spawn_server(ServerConfig {
        engine: small_engine(2),
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    // Warm the base fingerprint so the first edit derives from a warm parent.
    let (status, _) = exchange(
        addr,
        "POST",
        "/v1/consensus",
        &consensus_body("live", r#""Fair-Borda""#, 0.2, true),
    );
    assert_eq!(status, 200);

    let session = format!(
        r#"{{
            "dataset": {},
            "methods": ["Fair-Borda"],
            "delta": 0.2,
            "edits": [
                {{"op": "append", "ranking": ["f","a","b","c","d","e"]}},
                {{"op": "append", "ranking": ["a","f","b","c","e","d"], "weight": 2}},
                [{{"op": "retract", "ranking": ["f","a","b","c","d","e"]}}]
            ]
        }}"#,
        demo_dataset("live")
    );
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    send_request(&mut stream, "POST", "/v1/sessions", &session, false);
    let (status, headers) = read_head(&mut stream);
    assert_eq!(status, 200);
    let content_type = headers
        .iter()
        .find(|(n, _)| n == "content-type")
        .map(|(_, v)| v.as_str())
        .unwrap_or("");
    assert!(
        content_type.starts_with("application/x-ndjson"),
        "{headers:?}"
    );
    assert!(
        headers.iter().any(|(n, _)| n == "x-request-id"),
        "{headers:?}"
    );

    let mut lines = Vec::new();
    while let Some(chunk) = read_chunk(&mut stream) {
        lines.push(chunk);
    }
    assert_eq!(lines.len(), 4, "three edit lines + summary: {lines:?}");
    let mut fingerprints = Vec::new();
    for (index, line) in lines[..3].iter().enumerate() {
        let parsed: Value = serde_json::from_str(line).expect("JSON line");
        assert_eq!(get_u64(&parsed, &["edit"]), index as u64, "{line}");
        assert_eq!(
            parsed.get("derived"),
            Some(&Value::Bool(true)),
            "every step delta-derives: {line}"
        );
        assert!(
            parsed
                .get("results")
                .and_then(Value::as_array)
                .and_then(|a| a.first())
                .and_then(|r| r.get("arps"))
                .is_some(),
            "edit lines carry parity metrics: {line}"
        );
        fingerprints.push(
            parsed
                .get("fingerprint")
                .and_then(Value::as_str)
                .expect("fingerprint")
                .to_string(),
        );
    }
    assert_ne!(fingerprints[0], fingerprints[1], "edits change the content");
    let summary: Value = serde_json::from_str(&lines[3]).expect("summary JSON");
    assert_eq!(summary.get("summary"), Some(&Value::Bool(true)));
    assert_eq!(get_u64(&summary, &["edits"]), 3);
    assert_eq!(get_u64(&summary, &["derived"]), 3);
    assert_eq!(get_u64(&summary, &["rebuilds"]), 0);
    assert_eq!(get_u64(&summary, &["errors"]), 0);

    // The chunked stream left the connection reusable: the same socket
    // serves another exchange, and the session recorded under its label.
    send_request(&mut stream, "GET", "/v1/stats", "", true);
    let (status, _, stats) = read_response(&mut stream);
    assert_eq!(status, 200);
    let parsed: Value = serde_json::from_str(&stats).expect("stats JSON");
    assert_eq!(get_u64(&parsed, &["latency", "session", "count"]), 1);
    assert_eq!(
        get_u64(&parsed, &["precedence_cache", "delta_appends"]),
        2,
        "one bump per append op: {stats}"
    );
    assert_eq!(get_u64(&parsed, &["precedence_cache", "delta_retracts"]), 1);
    assert_eq!(
        get_u64(&parsed, &["precedence_cache", "builds"]),
        1,
        "the whole session rode the warm base matrix: {stats}"
    );
    handle.stop();
}

#[test]
fn invalid_sessions_fail_before_the_stream_head() {
    let handle = spawn_server(ServerConfig {
        engine: small_engine(1),
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    // No edits: a plain buffered JSON 400, never a stream head.
    let empty = format!(
        r#"{{"dataset": {}, "methods": ["Fair-Borda"], "delta": 0.2, "edits": []}}"#,
        demo_dataset("bad")
    );
    let (status, body) = exchange(addr, "POST", "/v1/sessions", &empty);
    assert_eq!(status, 400, "{body:?}");
    assert!(body.get("error").is_some(), "{body:?}");

    // A retract of a ranking the profile never held fails at validation,
    // identifying the offending edit.
    let impossible = format!(
        r#"{{"dataset": {}, "methods": ["Fair-Borda"], "delta": 0.2,
            "edits": [{{"op": "retract", "ranking": ["f","e","d","c","a","b"], "weight": 9}}]}}"#,
        demo_dataset("bad")
    );
    let (status, body) = exchange(addr, "POST", "/v1/sessions", &impossible);
    assert_eq!(status, 400, "{body:?}");
    let message = body.get("error").and_then(Value::as_str).unwrap_or("");
    assert!(message.contains("edit 0"), "{body:?}");
    handle.stop();
}
