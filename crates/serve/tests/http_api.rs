//! End-to-end tests of the HTTP API over real TCP sockets: submit → poll →
//! cached replay, queue overflow as 429, and LRU bounding of the response
//! cache — asserted through `GET /v1/stats` like an external operator would.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use mani_engine::EngineConfig;
use mani_serve::{Server, ServerConfig, ServerHandle};
use serde::Value;

fn spawn_server(threads: usize, queue_depth: usize, cache_capacity: usize) -> ServerHandle {
    Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            engine: EngineConfig {
                threads,
                queue_depth,
                ..EngineConfig::default()
            },
            cache_capacity,
            ..ServerConfig::default()
        },
    )
    .expect("bind an ephemeral port")
    .spawn()
    .expect("spawn the accept loop")
}

/// One HTTP exchange; returns `(status, parsed JSON body)`.
fn exchange(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Value) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
    let value = serde_json::from_str(body).unwrap_or(Value::Null);
    (status, value)
}

fn get_u64(value: &Value, path: &[&str]) -> u64 {
    let mut current = value;
    for key in path {
        current = current.get(key).unwrap_or(&Value::Null);
    }
    match current {
        Value::UInt(u) => *u,
        Value::Int(i) => *i as u64,
        other => panic!("expected integer at {path:?}, found {other:?}"),
    }
}

fn consensus_body(name: &str, methods: &str, delta: f64, wait: bool) -> String {
    format!(
        r#"{{
            "dataset": {{
                "name": "{name}",
                "candidates": [
                    {{"name": "a", "attributes": {{"G": "x"}}}},
                    {{"name": "b", "attributes": {{"G": "y"}}}},
                    {{"name": "c", "attributes": {{"G": "x"}}}},
                    {{"name": "d", "attributes": {{"G": "y"}}}},
                    {{"name": "e", "attributes": {{"G": "x"}}}},
                    {{"name": "f", "attributes": {{"G": "y"}}}}
                ],
                "rankings": [
                    ["a","b","c","d","e","f"],
                    ["f","e","d","c","b","a"],
                    ["b","a","c","e","d","f"]
                ]
            }},
            "methods": [{methods}],
            "delta": {delta},
            "wait": {wait}
        }}"#
    )
}

#[test]
fn consensus_and_jobs_end_to_end_with_cached_replay() {
    let handle = spawn_server(2, 0, 16);
    let addr = handle.addr();

    // --- Blocking submission ------------------------------------------------
    let body = consensus_body("e2e", r#""Fair-Borda", "Fair-Copeland""#, 0.2, true);
    let (status, first) = exchange(addr, "POST", "/v1/consensus", &body);
    assert_eq!(status, 200, "{first:?}");
    assert_eq!(first.get("status").and_then(Value::as_str), Some("done"));
    assert_eq!(first.get("cached"), Some(&Value::Bool(false)));
    let results = first.get("results").and_then(Value::as_array).unwrap();
    assert_eq!(results.len(), 2);
    assert!(results[0].get("ranking").is_some());

    let (_, stats) = exchange(addr, "GET", "/v1/stats", "");
    let builds = get_u64(&stats, &["precedence_cache", "builds"]);
    let submitted = get_u64(&stats, &["engine", "submitted"]);
    assert_eq!(builds, 1);
    assert_eq!(submitted, 1);

    // --- Identical replay: served from the response cache, zero new solves --
    let (status, replay) = exchange(addr, "POST", "/v1/consensus", &body);
    assert_eq!(status, 200);
    assert_eq!(replay.get("cached"), Some(&Value::Bool(true)), "{replay:?}");
    let (_, stats) = exchange(addr, "GET", "/v1/stats", "");
    assert_eq!(
        get_u64(&stats, &["precedence_cache", "builds"]),
        builds,
        "replay must not build a precedence matrix"
    );
    assert_eq!(
        get_u64(&stats, &["engine", "submitted"]),
        submitted,
        "replay must not submit an engine job"
    );
    assert!(get_u64(&stats, &["response_cache", "hits"]) >= 2);

    // --- Async submission + poll -------------------------------------------
    let body = consensus_body("e2e-async", r#""Fair-Schulze""#, 0.25, false);
    let (status, accepted) = exchange(addr, "POST", "/v1/consensus", &body);
    assert_eq!(status, 202, "{accepted:?}");
    let poll = accepted
        .get("poll")
        .and_then(Value::as_str)
        .expect("poll URL")
        .to_string();
    let deadline = Instant::now() + Duration::from_secs(60);
    let done = loop {
        let (status, polled) = exchange(addr, "GET", &poll, "");
        assert_eq!(status, 200, "{polled:?}");
        match polled.get("status").and_then(Value::as_str) {
            Some("done") => break polled,
            Some("queued" | "running") => {
                assert!(Instant::now() < deadline, "job never completed");
                std::thread::sleep(Duration::from_millis(5));
            }
            other => panic!("unexpected job status {other:?}"),
        }
    };
    let results = done.get("results").and_then(Value::as_array).unwrap();
    assert_eq!(
        results[0].get("method").and_then(Value::as_str),
        Some("Fair-Schulze")
    );

    // Completion through the poll populated the cache: a waiting replay of the
    // same spec is served without another solve.
    let body = consensus_body("e2e-async", r#""Fair-Schulze""#, 0.25, true);
    let (_, stats_before) = exchange(addr, "GET", "/v1/stats", "");
    let (status, replay) = exchange(addr, "POST", "/v1/consensus", &body);
    assert_eq!(status, 200);
    assert_eq!(replay.get("cached"), Some(&Value::Bool(true)), "{replay:?}");
    let (_, stats_after) = exchange(addr, "GET", "/v1/stats", "");
    assert_eq!(
        get_u64(&stats_after, &["engine", "submitted"]),
        get_u64(&stats_before, &["engine", "submitted"]),
    );

    // Unknown jobs are 404.
    let (status, _) = exchange(addr, "GET", "/v1/jobs/job-4040", "");
    assert_eq!(status, 404);

    handle.stop();
}

#[test]
fn queue_overflow_surfaces_as_http_429() {
    // Queue depth 1: a two-request batch cannot be absorbed atomically, so the
    // server must answer 429 immediately — deterministically, no timing.
    let handle = spawn_server(1, 1, 16);
    let addr = handle.addr();
    let spec_a = consensus_body("load-a", r#""Fair-Borda""#, 0.2, false);
    let spec_b = consensus_body("load-b", r#""Fair-Borda""#, 0.3, false);
    let batch = format!(r#"{{"requests": [{spec_a}, {spec_b}], "wait": false}}"#);
    // `wait`/dataset wrappers inside requests are ignored fields; the batch
    // carries two fresh specs that both need queue slots.
    let (status, body) = exchange(addr, "POST", "/v1/consensus", &batch);
    assert_eq!(status, 429, "{body:?}");
    let message = body.get("error").and_then(Value::as_str).unwrap();
    assert!(message.contains("overloaded"), "{message}");

    let (_, stats) = exchange(addr, "GET", "/v1/stats", "");
    assert_eq!(get_u64(&stats, &["engine", "rejected"]), 2);
    assert_eq!(get_u64(&stats, &["engine", "submitted"]), 0);

    // A single request still fits and completes.
    let single = consensus_body("load-a", r#""Fair-Borda""#, 0.2, true);
    let (status, _) = exchange(addr, "POST", "/v1/consensus", &single);
    assert_eq!(status, 200);
    handle.stop();
}

#[test]
fn lru_eviction_bounds_the_response_cache() {
    let handle = spawn_server(2, 0, 2);
    let addr = handle.addr();
    // Three distinct cache keys (distinct deltas) through a capacity-2 cache.
    for delta in ["0.11", "0.22", "0.33"] {
        let body = consensus_body("lru", r#""Fair-Borda""#, delta.parse().unwrap(), true);
        let (status, _) = exchange(addr, "POST", "/v1/consensus", &body);
        assert_eq!(status, 200);
    }
    let (_, stats) = exchange(addr, "GET", "/v1/stats", "");
    assert_eq!(
        get_u64(&stats, &["response_cache", "capacity"]),
        2,
        "{stats:?}"
    );
    assert!(get_u64(&stats, &["response_cache", "entries"]) <= 2);
    assert_eq!(get_u64(&stats, &["response_cache", "evictions"]), 1);

    // The newest entry is still cached; the evicted oldest resolves again.
    let newest = consensus_body("lru", r#""Fair-Borda""#, 0.33, true);
    let (_, replay) = exchange(addr, "POST", "/v1/consensus", &newest);
    assert_eq!(replay.get("cached"), Some(&Value::Bool(true)));
    let submitted_before = {
        let (_, stats) = exchange(addr, "GET", "/v1/stats", "");
        get_u64(&stats, &["engine", "submitted"])
    };
    let oldest = consensus_body("lru", r#""Fair-Borda""#, 0.11, true);
    let (_, resolved) = exchange(addr, "POST", "/v1/consensus", &oldest);
    assert_eq!(
        resolved.get("cached"),
        Some(&Value::Bool(false)),
        "evicted entries must be recomputed"
    );
    let (_, stats) = exchange(addr, "GET", "/v1/stats", "");
    assert_eq!(
        get_u64(&stats, &["engine", "submitted"]),
        submitted_before + 1
    );
    handle.stop();
}

#[test]
fn audit_methods_and_errors_over_the_wire() {
    let handle = spawn_server(1, 0, 4);
    let addr = handle.addr();

    let (status, methods) = exchange(addr, "GET", "/v1/methods", "");
    assert_eq!(status, 200);
    assert_eq!(
        methods
            .get("methods")
            .and_then(Value::as_array)
            .map(<[Value]>::len),
        Some(8)
    );

    let audit_body = r#"{
        "dataset": {
            "candidates": [
                {"name": "a", "attributes": {"G": "x"}},
                {"name": "b", "attributes": {"G": "y"}},
                {"name": "c", "attributes": {"G": "x"}},
                {"name": "d", "attributes": {"G": "y"}}
            ],
            "rankings": [["a","b","c","d"], ["b","a","d","c"]]
        }
    }"#;
    let (status, audit) = exchange(addr, "POST", "/v1/audit", audit_body);
    assert_eq!(status, 200, "{audit:?}");
    assert!(audit.get("consensus").is_some());
    assert!(audit.get("unconstrained").is_some());

    let (status, error) = exchange(addr, "POST", "/v1/consensus", r#"{"methods": []}"#);
    assert_eq!(status, 400);
    assert!(error.get("error").is_some());
    let (status, _) = exchange(addr, "GET", "/v1/nope", "");
    assert_eq!(status, 404);
    let (status, _) = exchange(addr, "DELETE", "/v1/consensus", "");
    assert_eq!(status, 405);
    handle.stop();
}
