//! End-to-end tests for `POST /v1/consensus` with `"stream": true`: chunked
//! NDJSON delivery in completion order, bit-identical payloads versus the
//! buffered path, keep-alive survival around a streamed response, connection
//! slot release on client disconnect, and the structured `GET /v1/jobs/{id}`
//! 404 envelope.

mod common;

use std::net::TcpStream;
use std::time::{Duration, Instant};

use common::*;
use mani_serve::ServerConfig;
use serde::Value;

/// A 20-candidate profile whose Fair-Kemeny search deterministically runs
/// past any budget in the hundreds of thousands of nodes (it closes at
/// ~200k), so a budgeted request is reliably *slow* — hundreds of
/// milliseconds in debug builds — while staying strictly bounded.
fn slow_dataset(name: &str) -> String {
    let candidates: Vec<String> = (0..20)
        .map(|i| {
            format!(
                r#"{{"name": "c{i}", "attributes": {{"G": "{}"}}}}"#,
                if i % 2 == 0 { "x" } else { "y" }
            )
        })
        .collect();
    let rankings = r#"
        ["c7","c2","c15","c1","c18","c10","c16","c12","c4","c0","c14","c19","c13","c5","c3","c6","c9","c11","c8","c17"],
        ["c13","c8","c19","c1","c10","c7","c11","c15","c4","c16","c12","c0","c5","c17","c14","c3","c6","c2","c9","c18"],
        ["c15","c11","c14","c3","c12","c6","c9","c2","c7","c1","c5","c17","c8","c19","c0","c4","c10","c18","c16","c13"],
        ["c11","c19","c13","c14","c7","c4","c15","c8","c0","c3","c12","c17","c1","c5","c10","c9","c6","c16","c18","c2"],
        ["c1","c0","c4","c7","c17","c15","c2","c18","c3","c19","c5","c6","c12","c8","c10","c13","c11","c9","c16","c14"],
        ["c10","c19","c8","c3","c9","c11","c1","c0","c12","c16","c17","c18","c6","c13","c7","c15","c2","c14","c5","c4"],
        ["c4","c18","c7","c1","c10","c13","c11","c17","c3","c16","c8","c12","c0","c19","c2","c6","c14","c9","c15","c5"],
        ["c18","c19","c6","c0","c9","c8","c11","c16","c5","c7","c15","c4","c17","c10","c13","c2","c12","c14","c3","c1"],
        ["c1","c2","c10","c18","c0","c17","c11","c5","c8","c14","c12","c4","c19","c6","c16","c3","c7","c13","c9","c15"]
    "#;
    format!(
        r#"{{"name": "{name}", "candidates": [{}], "rankings": [{rankings}]}}"#,
        candidates.join(",")
    )
}

/// A budgeted Fair-Kemeny spec over [`slow_dataset`].
fn slow_spec(name: &str, budget: u64) -> String {
    format!(
        r#"{{"dataset": {}, "methods": ["Fair-Kemeny"], "delta": 0.15, "budget": {budget}}}"#,
        slow_dataset(name)
    )
}

/// A cheap Fair-Borda spec over the six-candidate demo dataset.
fn cheap_spec(name: &str) -> String {
    format!(
        r#"{{"dataset": {}, "methods": ["Fair-Borda"], "delta": 0.2}}"#,
        demo_dataset(name)
    )
}

fn parse_line(line: &str) -> Value {
    serde_json::from_str(line).unwrap_or_else(|e| panic!("bad NDJSON line `{line}`: {e}"))
}

/// One tolerant one-shot `GET` exchange: any client-visible outcome of racing
/// the server's reject-and-close path (broken pipe, reset) maps to `None`.
/// The server-side counters stay authoritative for what actually happened.
fn try_get(addr: std::net::SocketAddr, path: &str) -> Option<u16> {
    use std::io::{Read as _, Write as _};
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .ok()?;
    let request = format!(
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: 0\r\n\r\n"
    );
    let _ = stream.write_all(request.as_bytes());
    let mut raw = String::new();
    stream.read_to_string(&mut raw).ok()?;
    raw.split_whitespace().nth(1)?.parse().ok()
}

#[test]
fn first_line_arrives_before_the_batch_finishes_and_keep_alive_survives() {
    // Two engine workers: the cheap Borda (index 0) and the budgeted
    // Fair-Kemeny (index 1) start together; Borda's line must hit the wire
    // while Kemeny is still searching.
    let handle = spawn_server(ServerConfig {
        engine: small_engine(2),
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let body = format!(
        r#"{{"requests": [{}, {}], "stream": true}}"#,
        cheap_spec("fast"),
        slow_spec("slow", 150_000),
    );
    send_request(&mut stream, "POST", "/v1/consensus", &body, false);

    let (status, headers) = read_head(&mut stream);
    assert_eq!(status, 200);
    let header = |name: &str| {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.to_ascii_lowercase())
    };
    assert_eq!(header("transfer-encoding").as_deref(), Some("chunked"));
    assert_eq!(
        header("content-type").as_deref(),
        Some("application/x-ndjson")
    );
    assert_eq!(header("connection").as_deref(), Some("keep-alive"));
    assert!(
        header("content-length").is_none(),
        "chunked responses carry no Content-Length"
    );

    let first = parse_line(&read_chunk(&mut stream).expect("first NDJSON line"));
    assert_eq!(
        get_u64(&first, &["index"]),
        0,
        "the cheap request must stream first: {first:?}"
    );
    assert!(
        matches!(first.get("job_id"), Some(Value::String(_))),
        "{first:?}"
    );
    assert!(first.get("results").is_some(), "{first:?}");
    // The proof of streaming: when the first line was readable, the slow job
    // had not completed — the whole batch is still in flight engine-side.
    let stats = handle.state().engine().stats();
    assert!(
        stats.in_flight >= 1,
        "first line must arrive while the Fair-Kemeny job is still running \
         (in_flight = {}, completed = {})",
        stats.in_flight,
        stats.completed,
    );

    let second = parse_line(&read_chunk(&mut stream).expect("second NDJSON line"));
    assert_eq!(get_u64(&second, &["index"]), 1);
    let summary = parse_line(&read_chunk(&mut stream).expect("summary line"));
    assert_eq!(summary.get("summary"), Some(&Value::Bool(true)));
    assert_eq!(get_u64(&summary, &["requests"]), 2);
    assert_eq!(get_u64(&summary, &["completed"]), 2);
    assert_eq!(get_u64(&summary, &["errors"]), 0);
    assert!(
        read_chunk(&mut stream).is_none(),
        "the body ends with the zero-length chunk"
    );

    // Keep-alive survives the streamed response: the same connection serves
    // a regular Content-Length exchange next.
    send_request(&mut stream, "GET", "/v1/stats", "", true);
    let (status, _, body) = read_response(&mut stream);
    assert_eq!(status, 200);
    let stats = serde_json::from_str::<Value>(&body).expect("stats JSON");
    assert_eq!(get_u64(&stats, &["streaming", "batches_opened"]), 1);
    assert_eq!(get_u64(&stats, &["streaming", "batches_drained"]), 1);
    assert_eq!(get_u64(&stats, &["streaming", "results_yielded"]), 2);

    handle.stop();
}

#[test]
fn streamed_results_are_bit_identical_to_the_buffered_path() {
    // Single-threaded engines on both servers make every cache interaction
    // (and therefore every non-timing response byte) deterministic.
    let two_method_spec = format!(
        r#"{{"dataset": {}, "methods": ["Fair-Borda", "Fair-Copeland"], "delta": 0.3}}"#,
        demo_dataset("two")
    );
    let batch_body = |stream_mode: bool| {
        format!(
            r#"{{"requests": [{}, {}], "{}": true}}"#,
            cheap_spec("one"),
            two_method_spec,
            if stream_mode { "stream" } else { "wait" },
        )
    };

    // Server A: streamed.
    let streaming_server = spawn_server(ServerConfig {
        engine: small_engine(1),
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(streaming_server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    send_request(
        &mut stream,
        "POST",
        "/v1/consensus",
        &batch_body(true),
        false,
    );
    let (status, _) = read_head(&mut stream);
    assert_eq!(status, 200);
    let mut streamed: Vec<Option<Value>> = vec![None, None];
    let mut lines = 0;
    while let Some(line) = read_chunk(&mut stream) {
        let parsed = parse_line(&line);
        lines += 1;
        if parsed.get("summary").is_some() {
            continue;
        }
        let index = get_u64(&parsed, &["index"]) as usize;
        streamed[index] = Some(parsed);
    }
    assert_eq!(lines, 3, "two results + summary");

    // Server B: the same batch, buffered (`"wait": true`).
    let buffered_server = spawn_server(ServerConfig {
        engine: small_engine(1),
        ..ServerConfig::default()
    });
    let (status, buffered) = exchange(
        buffered_server.addr(),
        "POST",
        "/v1/consensus",
        &batch_body(false),
    );
    assert_eq!(status, 200);
    let responses = buffered
        .get("responses")
        .and_then(Value::as_array)
        .expect("responses array");

    for (index, buffered_response) in responses.iter().enumerate() {
        let mut streamed_payload = streamed[index].clone().expect("line per request");
        // Drop the stream-only prefix fields; everything else must be
        // bit-identical once wall-clock timing fields are stripped.
        if let Value::Object(ref mut entries) = streamed_payload {
            entries.retain(|(key, _)| key != "index" && key != "job_id");
        }
        assert_eq!(
            serde_json::to_string(&strip_volatile(&streamed_payload, false)).unwrap(),
            serde_json::to_string(&strip_volatile(buffered_response, false)).unwrap(),
            "request {index} diverged between streamed and buffered paths"
        );
    }

    // Replay through the response cache on the streaming server: the cached
    // payloads are the very objects that were streamed (identical down to
    // the recorded solve durations), only the `cached` markers flip.
    let (status, replay) = exchange(
        streaming_server.addr(),
        "POST",
        "/v1/consensus",
        &batch_body(false),
    );
    assert_eq!(status, 200);
    let replayed = replay
        .get("responses")
        .and_then(Value::as_array)
        .expect("responses array");
    for (index, replayed_response) in replayed.iter().enumerate() {
        assert_eq!(
            replayed_response.get("cached"),
            Some(&Value::Bool(true)),
            "request {index} must replay from the response cache"
        );
        let mut streamed_payload = streamed[index].clone().expect("line per request");
        if let Value::Object(ref mut entries) = streamed_payload {
            entries.retain(|(key, _)| key != "index" && key != "job_id");
        }
        assert_eq!(
            serde_json::to_string(&strip_volatile(&streamed_payload, true)).unwrap(),
            serde_json::to_string(&strip_volatile(replayed_response, true)).unwrap(),
            "request {index}: cache replay must hand back the streamed payload"
        );
    }
    assert_eq!(
        streaming_server.state().engine().stats().submitted,
        2,
        "the replay must not reach the engine"
    );

    streaming_server.stop();
    buffered_server.stop();
}

#[test]
fn client_disconnect_mid_stream_releases_the_connection_slot() {
    // One connection worker, one admission slot: while the stream is being
    // produced the pool is saturated, and dropping the client must hand the
    // slot back once the in-flight solve lands on the dead socket.
    let handle = spawn_server(ServerConfig {
        engine: small_engine(1),
        max_connections: 1,
        conn_threads: 1,
        ..ServerConfig::default()
    });

    let mut doomed = TcpStream::connect(handle.addr()).expect("connect");
    doomed
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let body = format!(
        r#"{{"requests": [{}], "stream": true}}"#,
        slow_spec("s", 150_000)
    );
    send_request(&mut doomed, "POST", "/v1/consensus", &body, false);
    let (status, _) = read_head(&mut doomed);
    assert_eq!(status, 200, "the stream head is written before any solve");

    // The only slot is held: a second connection bounces at the accept path.
    // The client-visible 503 can race the server's close, so the server-side
    // rejection counter is the authoritative assertion.
    let status = try_get(handle.addr(), "/v1/methods");
    assert_ne!(status, Some(200), "the pool must be saturated mid-stream");
    let snapshot = handle.state().connections().snapshot();
    assert!(
        snapshot.rejected_busy >= 1,
        "the accept path must have rejected the probe: {snapshot:?}"
    );

    // Disconnect mid-stream (the Fair-Kemeny solve is still running).
    drop(doomed);

    // Once the solve completes and its chunk hits the dead socket, the worker
    // must close the connection and release the slot: a fresh client gets in.
    let deadline = Instant::now() + Duration::from_secs(60);
    while try_get(handle.addr(), "/v1/methods") != Some(200) {
        assert!(
            Instant::now() < deadline,
            "slot never released after client disconnect"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    handle.stop();
}

#[test]
fn overloaded_streaming_batch_answers_a_clean_429() {
    // Queue depth 1 cannot absorb a two-request batch: the rejection happens
    // before the response head, as a regular JSON error — never a truncated
    // chunked body.
    let handle = spawn_server(ServerConfig {
        engine: mani_engine::EngineConfig {
            threads: 1,
            queue_depth: 1,
            ..mani_engine::EngineConfig::default()
        },
        ..ServerConfig::default()
    });
    let body = format!(
        r#"{{"requests": [{}, {}], "stream": true}}"#,
        cheap_spec("a"),
        cheap_spec("b"),
    );
    let (status, parsed) = exchange(handle.addr(), "POST", "/v1/consensus", &body);
    assert_eq!(status, 429, "{parsed:?}");
    assert!(parsed.get("error").is_some(), "{parsed:?}");
    handle.stop();
}

#[test]
fn unknown_job_returns_the_structured_json_404_envelope() {
    let handle = spawn_server(ServerConfig {
        engine: small_engine(1),
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    send_request(&mut stream, "GET", "/v1/jobs/job-424242", "", false);
    let (status, headers, body) = read_response(&mut stream);
    assert_eq!(status, 404);
    assert_eq!(
        headers
            .iter()
            .find(|(n, _)| n == "content-type")
            .map(|(_, v)| v.as_str()),
        Some("application/json"),
        "an evicted/unknown job must answer with the JSON error envelope"
    );
    let parsed: Value = serde_json::from_str(&body).expect("404 body must be JSON");
    assert!(
        matches!(parsed.get("error"), Some(Value::String(message)) if message.contains("job-424242")),
        "{body}"
    );

    // Malformed ids use the same envelope with 400.
    send_request(&mut stream, "GET", "/v1/jobs/banana", "", true);
    let (status, _, body) = read_response(&mut stream);
    assert_eq!(status, 400);
    assert!(body.starts_with('{') && body.contains("error"), "{body}");
    handle.stop();
}
