//! Integration tests for the serve hardening work: keep-alive connection
//! reuse, poisoned-framing close, slow-loris read timeouts, `503` at pool
//! saturation (never a silent drop), the dataset registry round trip, and
//! latency histograms advancing in `GET /v1/stats` — all over real sockets.

mod common;

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use common::{
    connection_header, consensus_body, demo_dataset, exchange, get_u64, read_response,
    send_request, small_engine, spawn_server,
};
use mani_serve::ServerConfig;
use serde::Value;

#[test]
fn keep_alive_connection_serves_multiple_exchanges() {
    let handle = spawn_server(ServerConfig {
        engine: small_engine(2),
        cache_capacity: 16,
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    // Three sequential exchanges on ONE connection: a solve, a stats read,
    // and a cached replay — each response must announce keep-alive.
    let solve = consensus_body("ka", r#""Fair-Borda""#, 0.2, true);
    for (round, (method, path, body)) in [
        ("POST", "/v1/consensus", solve.clone()),
        ("GET", "/v1/stats", String::new()),
        ("POST", "/v1/consensus", solve.clone()),
    ]
    .into_iter()
    .enumerate()
    {
        send_request(&mut stream, method, path, &body, false);
        let (status, headers, body) = read_response(&mut stream);
        assert_eq!(status, 200, "round {round}: {body}");
        assert_eq!(
            connection_header(&headers).as_deref(),
            Some("keep-alive"),
            "round {round}"
        );
    }

    // The replay was served from the response cache, on the same socket.
    send_request(&mut stream, "GET", "/v1/stats", "", false);
    let (_, _, stats) = read_response(&mut stream);
    let stats: Value = serde_json::from_str(&stats).unwrap();
    assert!(get_u64(&stats, &["response_cache", "hits"]) >= 1);
    assert_eq!(get_u64(&stats, &["engine", "submitted"]), 1);
    assert!(
        get_u64(&stats, &["server", "keepalive_reuses"]) >= 3,
        "{stats:?}"
    );
    assert_eq!(get_u64(&stats, &["server", "connections_accepted"]), 1);

    // An explicit `Connection: close` ends the session after the response.
    send_request(&mut stream, "GET", "/v1/methods", "", true);
    let (status, headers, _) = read_response(&mut stream);
    assert_eq!(status, 200);
    assert_eq!(connection_header(&headers).as_deref(), Some("close"));
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("read EOF");
    assert!(rest.is_empty(), "nothing may follow a closing response");
    handle.stop();
}

#[test]
fn request_cap_closes_the_connection() {
    let handle = spawn_server(ServerConfig {
        engine: small_engine(1),
        max_requests_per_conn: 2,
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    send_request(&mut stream, "GET", "/v1/methods", "", false);
    let (_, headers, _) = read_response(&mut stream);
    assert_eq!(connection_header(&headers).as_deref(), Some("keep-alive"));
    send_request(&mut stream, "GET", "/v1/methods", "", false);
    let (_, headers, _) = read_response(&mut stream);
    assert_eq!(
        connection_header(&headers).as_deref(),
        Some("close"),
        "the second exchange hits the cap"
    );
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("read EOF");
    assert!(rest.is_empty());
    handle.stop();
}

#[test]
fn poisoned_second_request_answers_400_and_closes() {
    let handle = spawn_server(ServerConfig {
        engine: small_engine(1),
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    send_request(&mut stream, "GET", "/v1/methods", "", false);
    let (status, _, _) = read_response(&mut stream);
    assert_eq!(status, 200);

    // A garbage second request poisons the framing: the server answers 400
    // with `Connection: close` and drops the connection.
    stream
        .write_all(b"NOT-AN-HTTP-REQUEST\r\n\r\n")
        .expect("send garbage");
    let (status, headers, body) = read_response(&mut stream);
    assert_eq!(status, 400, "{body}");
    assert_eq!(connection_header(&headers).as_deref(), Some("close"));
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("read EOF");
    assert!(rest.is_empty());

    // A partial second request (body stalls short of Content-Length) is a
    // clean timeout + close, not a hang: the body read gives up server-side.
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    send_request(&mut stream, "GET", "/v1/methods", "", false);
    let (status, _, _) = read_response(&mut stream);
    assert_eq!(status, 200);
    stream
        .write_all(b"POST /v1/consensus HTTP/1.1\r\nContent-Length: 100\r\n\r\n{\"tru")
        .expect("send partial request");
    let (status, headers, _) = read_response(&mut stream);
    assert_eq!(status, 408, "stalled body must time out");
    assert_eq!(connection_header(&headers).as_deref(), Some("close"));
    handle.stop();
}

#[test]
fn conflicting_content_lengths_are_rejected_over_the_wire() {
    let handle = spawn_server(ServerConfig {
        engine: small_engine(1),
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(
            b"POST /v1/consensus HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\nokxxx",
        )
        .expect("send smuggling-shaped request");
    let (status, _, body) = read_response(&mut stream);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("conflicting"), "{body}");
    handle.stop();
}

#[test]
fn slow_loris_stall_times_out_with_408() {
    let handle = spawn_server(ServerConfig {
        engine: small_engine(1),
        read_timeout: Duration::from_millis(250),
        idle_timeout: Duration::from_millis(250),
        ..ServerConfig::default()
    });
    // Trickle a partial request line and stall: the server must answer 408
    // within its read timeout, not hold the worker forever.
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(b"GET /v1/meth").expect("partial bytes");
    let started = Instant::now();
    let (status, headers, _) = read_response(&mut stream);
    assert_eq!(status, 408);
    assert_eq!(connection_header(&headers).as_deref(), Some("close"));
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "timeout must fire promptly"
    );

    // A trickling slow-loris — one byte per interval, each gap well inside
    // the per-read socket timeout — still hits the whole-request receive
    // deadline: the worker is reclaimed with a 408, not pinned indefinitely.
    let mut dripper = TcpStream::connect(handle.addr()).expect("connect");
    dripper
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let started = Instant::now();
    // Endless drip material: gaps (60 ms) stay far inside the per-read socket
    // timeout (250 ms), so only the whole-request deadline can cut this off.
    let drip = b"GET /v1/methods HTTP/1.1\r\nHost: drip-drip-drip-drip-drip-drip\r\n";
    let mut answered = None;
    'drip: for byte in drip.iter().cycle() {
        // Probe for the 408 BEFORE writing again, so the drip never races the
        // server-side close into a reset that discards the response.
        dripper
            .set_read_timeout(Some(Duration::from_millis(1)))
            .unwrap();
        let mut probe = [0u8; 256];
        if let Ok(n) = dripper.read(&mut probe) {
            if n > 0 {
                answered = Some(String::from_utf8_lossy(&probe[..n]).to_string());
                break 'drip;
            }
        }
        if dripper.write_all(std::slice::from_ref(byte)).is_err() {
            break 'drip; // already cut off; pick the response up below
        }
        assert!(
            started.elapsed() < Duration::from_secs(8),
            "deadline never fired"
        );
        std::thread::sleep(Duration::from_millis(60));
    }
    let answered = answered.unwrap_or_else(|| {
        dripper
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut rest = Vec::new();
        let _ = dripper.read_to_end(&mut rest);
        String::from_utf8_lossy(&rest).to_string()
    });
    assert!(answered.starts_with("HTTP/1.1 408"), "{answered}");
    assert!(answered.contains("deadline"), "{answered}");
    assert!(
        started.elapsed() < Duration::from_secs(8),
        "deadline must reclaim the worker promptly"
    );

    // An idle keep-alive connection that never sends its next request is
    // closed silently (EOF), not answered with a bogus 408.
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    send_request(&mut stream, "GET", "/v1/methods", "", false);
    let (status, _, _) = read_response(&mut stream);
    assert_eq!(status, 200);
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("read EOF");
    assert!(rest.is_empty(), "idle close must be silent, got {rest:?}");
    handle.stop();
}

#[test]
fn saturated_pool_answers_503_with_retry_after() {
    let handle = spawn_server(ServerConfig {
        engine: small_engine(1),
        conn_threads: 1,
        max_connections: 1,
        idle_timeout: Duration::from_secs(30),
        ..ServerConfig::default()
    });
    // Occupy the single pool slot with a live keep-alive connection.
    let mut occupant = TcpStream::connect(handle.addr()).expect("connect occupant");
    occupant
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    send_request(&mut occupant, "GET", "/v1/methods", "", false);
    let (status, headers, _) = read_response(&mut occupant);
    assert_eq!(status, 200);
    assert_eq!(connection_header(&headers).as_deref(), Some("keep-alive"));

    // Saturated: the next connection is answered 503 on the accept path —
    // an explicit response with Retry-After, never a silent drop. The reject
    // path answers without reading a request, so the probe only reads (a
    // write could race the server-side close into a reset).
    let mut rejected = TcpStream::connect(handle.addr()).expect("connect surplus");
    rejected
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let (status, headers, body) = read_response(&mut rejected);
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("saturated"), "{body}");
    let retry_after = headers
        .iter()
        .find(|(n, _)| n == "retry-after")
        .map(|(_, v)| v.clone());
    assert_eq!(retry_after.as_deref(), Some("1"), "{headers:?}");

    // The occupant still works (its worker was never stolen) and observes the
    // rejection in the stats counters.
    send_request(&mut occupant, "GET", "/v1/stats", "", false);
    let (status, _, stats) = read_response(&mut occupant);
    assert_eq!(status, 200);
    let stats: Value = serde_json::from_str(&stats).unwrap();
    assert!(get_u64(&stats, &["server", "connections_rejected"]) >= 1);
    assert_eq!(get_u64(&stats, &["server", "max_connections"]), 1);
    assert_eq!(get_u64(&stats, &["server", "conn_threads"]), 1);

    // Releasing the occupant frees the slot: a fresh connection is served.
    // Until the worker observes the close, attempts may still be rejected
    // (503, or a reset racing the rejection) — retry until admitted.
    drop(occupant);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let attempt = (|| -> std::io::Result<String> {
            let mut retry = TcpStream::connect(handle.addr())?;
            retry.set_read_timeout(Some(Duration::from_secs(10)))?;
            retry.write_all(b"GET /v1/methods HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")?;
            let mut raw = String::new();
            retry.read_to_string(&mut raw)?;
            Ok(raw)
        })();
        if let Ok(raw) = attempt {
            if raw.starts_with("HTTP/1.1 200") {
                break;
            }
            assert!(raw.is_empty() || raw.starts_with("HTTP/1.1 503"), "{raw}");
        }
        assert!(Instant::now() < deadline, "slot never freed");
        std::thread::sleep(Duration::from_millis(10));
    }
    handle.stop();
}

#[test]
fn idle_keep_alive_sessions_shed_when_connections_queue_behind_the_pool() {
    let handle = spawn_server(ServerConfig {
        engine: small_engine(1),
        conn_threads: 1,
        max_connections: 4,
        // Long idle timeout: only shedding can free the worker promptly.
        idle_timeout: Duration::from_secs(30),
        ..ServerConfig::default()
    });
    // Session A completes one exchange, then sits idle on its keep-alive
    // connection — pinning the pool's only worker.
    let mut idle_session = TcpStream::connect(handle.addr()).expect("connect");
    idle_session
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    send_request(&mut idle_session, "GET", "/v1/methods", "", false);
    let (status, headers, _) = read_response(&mut idle_session);
    assert_eq!(status, 200);
    assert_eq!(connection_header(&headers).as_deref(), Some("keep-alive"));

    // A second connection queues behind the busy pool. The idle worker must
    // notice the contention, silently shed session A, and serve this one —
    // long before A's 30 s idle timeout would have freed it.
    let mut queued = TcpStream::connect(handle.addr()).expect("connect queued");
    queued
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    send_request(&mut queued, "GET", "/v1/methods", "", true);
    let started = Instant::now();
    let (status, _, body) = read_response(&mut queued);
    assert_eq!(status, 200, "queued connection must be served: {body}");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "shedding must free the worker promptly, not after the idle timeout"
    );

    // Session A was closed silently (EOF, no stray bytes).
    let mut rest = Vec::new();
    idle_session.read_to_end(&mut rest).expect("read EOF");
    assert!(rest.is_empty(), "shed must be silent, got {rest:?}");
    handle.stop();
}

/// Strips volatile fields (timings, cache flags) so solve payloads can be
/// compared bit-for-bit.
fn normalized(results: &Value) -> String {
    fn strip(value: &Value) -> Value {
        match value {
            Value::Object(entries) => Value::Object(
                entries
                    .iter()
                    .filter(|(k, _)| {
                        k != "duration_ms" && k != "cached" && k != "precedence_cache_hit"
                    })
                    .map(|(k, v)| (k.clone(), strip(v)))
                    .collect(),
            ),
            Value::Array(items) => Value::Array(items.iter().map(strip).collect()),
            other => other.clone(),
        }
    }
    serde_json::to_string(&strip(results)).unwrap()
}

#[test]
fn dataset_registry_round_trip_matches_inline_solves() {
    let handle = spawn_server(ServerConfig {
        engine: small_engine(2),
        cache_capacity: 16,
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    // Upload once...
    let (status, uploaded) = exchange(addr, "POST", "/v1/datasets", &demo_dataset("reg"));
    assert_eq!(status, 200, "{uploaded:?}");
    let id = uploaded
        .get("id")
        .and_then(Value::as_str)
        .expect("dataset id")
        .to_string();
    assert!(id.starts_with("ds-"), "{id}");
    assert_eq!(uploaded.get("created"), Some(&Value::Bool(true)));

    let (status, meta) = exchange(addr, "GET", &format!("/v1/datasets/{id}"), "");
    assert_eq!(status, 200, "{meta:?}");
    assert_eq!(get_u64(&meta, &["candidates"]), 6);
    assert_eq!(get_u64(&meta, &["rankings"]), 3);

    // ...solve many times by reference. The first by-id solve computes...
    let by_id = format!(
        r#"{{"dataset_id": "{id}", "methods": ["Fair-Borda", "Fair-Copeland"], "delta": 0.2, "wait": true}}"#
    );
    let (status, from_registry) = exchange(addr, "POST", "/v1/consensus", &by_id);
    assert_eq!(status, 200, "{from_registry:?}");
    assert_eq!(from_registry.get("cached"), Some(&Value::Bool(false)));

    // ...and the same request with inline rows is bit-identical (and is a
    // response-cache hit: the registry id IS the content fingerprint).
    let inline = consensus_body("reg", r#""Fair-Borda", "Fair-Copeland""#, 0.2, true);
    let (status, from_inline) = exchange(addr, "POST", "/v1/consensus", &inline);
    assert_eq!(status, 200, "{from_inline:?}");
    assert_eq!(from_inline.get("cached"), Some(&Value::Bool(true)));
    assert_eq!(
        normalized(from_registry.get("results").unwrap()),
        normalized(from_inline.get("results").unwrap()),
        "dataset_id and inline solves must return identical results"
    );

    // A different delta by id reuses the warm precedence matrix: still just
    // one build after a second full solve.
    let with_other_delta = format!(
        r#"{{"dataset_id": "{id}", "methods": ["Fair-Borda"], "delta": 0.35, "wait": true}}"#
    );
    let (status, _) = exchange(addr, "POST", "/v1/consensus", &with_other_delta);
    assert_eq!(status, 200);
    let (_, stats) = exchange(addr, "GET", "/v1/stats", "");
    assert_eq!(
        get_u64(&stats, &["precedence_cache", "builds"]),
        1,
        "registered datasets share the engine's warm matrix: {stats:?}"
    );
    assert_eq!(get_u64(&stats, &["datasets_registered"]), 1);

    // Audits accept dataset_id too.
    let audit = format!(r#"{{"dataset_id": "{id}", "delta": 0.1}}"#);
    let (status, audited) = exchange(addr, "POST", "/v1/audit", &audit);
    assert_eq!(status, 200, "{audited:?}");
    assert!(audited.get("consensus").is_some());

    // Delete: metadata and by-id solves both 404 afterwards.
    let (status, deleted) = exchange(addr, "DELETE", &format!("/v1/datasets/{id}"), "");
    assert_eq!(status, 200, "{deleted:?}");
    assert_eq!(deleted.get("deleted"), Some(&Value::Bool(true)));
    let (status, _) = exchange(addr, "GET", &format!("/v1/datasets/{id}"), "");
    assert_eq!(status, 404);
    let (status, missing) = exchange(addr, "POST", "/v1/consensus", &by_id);
    assert_eq!(status, 404, "{missing:?}");
    handle.stop();
}

#[test]
fn stats_expose_per_endpoint_latency_histograms() {
    let handle = spawn_server(ServerConfig {
        engine: small_engine(2),
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    let (_, _) = exchange(addr, "GET", "/v1/methods", "");
    let solve = consensus_body("hist", r#""Fair-Borda""#, 0.2, true);
    let (_, _) = exchange(addr, "POST", "/v1/consensus", &solve);
    let (_, _) = exchange(addr, "POST", "/v1/consensus", &solve);
    let (_, before) = exchange(addr, "GET", "/v1/stats", "");

    assert_eq!(get_u64(&before, &["latency", "consensus", "count"]), 2);
    assert_eq!(get_u64(&before, &["latency", "methods", "count"]), 1);
    let buckets = before
        .get("latency")
        .and_then(|l| l.get("consensus"))
        .and_then(|h| h.get("buckets"))
        .and_then(Value::as_array)
        .expect("bucket counts");
    let sum: u64 = buckets
        .iter()
        .map(|b| match b {
            Value::UInt(u) => *u,
            other => panic!("non-integer bucket {other:?}"),
        })
        .sum();
    assert_eq!(sum, 2, "bucket counts sum to the sample count");
    let bounds = before
        .get("latency")
        .and_then(|l| l.get("consensus"))
        .and_then(|h| h.get("le_us"))
        .and_then(Value::as_array)
        .expect("bucket bounds");
    assert_eq!(buckets.len(), bounds.len() + 1, "one overflow bucket");

    // Counters advance monotonically with traffic.
    let (_, _) = exchange(addr, "POST", "/v1/consensus", &solve);
    let (_, after) = exchange(addr, "GET", "/v1/stats", "");
    assert_eq!(get_u64(&after, &["latency", "consensus", "count"]), 3);
    assert!(
        get_u64(&after, &["latency", "stats", "count"])
            > get_u64(&before, &["latency", "stats", "count"]),
        "stats endpoint records itself"
    );
    handle.stop();
}
