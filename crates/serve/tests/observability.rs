//! Wire-level checks for the observability surfaces: the Prometheus text
//! exposition on `/metrics` (parsed by a small hand-rolled exposition parser
//! that enforces the format's invariants), the `x-request-id` contract on
//! every response shape (buffered, streamed, cached replay, errors), the
//! build-identity endpoint, and the per-job trace timeline.

mod common;

use std::collections::BTreeMap;
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use common::{
    consensus_body, exchange, fetch_text, read_chunk, read_head, read_response, send_request,
    small_engine, spawn_server,
};
use mani_serve::ServerConfig;
use serde::Value;

/// The value of a (lower-cased) response header.
fn header<'h>(headers: &'h [(String, String)], name: &str) -> Option<&'h str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

/// One exchange with an `x-request-id` request header, returning
/// `(status, headers, body)`.
fn exchange_with_id(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    request_id: &str,
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nX-Request-Id: {request_id}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    read_response(&mut stream)
}

// ---------------------------------------------------------------------------
// Prometheus text exposition parser
// ---------------------------------------------------------------------------

/// `(sample name, labels, value)` — labels keep document order.
type Sample = (String, Vec<(String, String)>, f64);

/// One metric family parsed out of the exposition: its `TYPE`, whether a
/// `HELP` line preceded the samples, and the samples in document order.
struct Family {
    kind: String,
    has_help: bool,
    samples: Vec<Sample>,
}

/// Parses a Prometheus text-exposition (format 0.0.4) body, panicking on any
/// structural violation: samples before their family's `HELP`/`TYPE` lines,
/// unparsable sample lines, or unknown metadata.
fn parse_exposition(body: &str) -> BTreeMap<String, Family> {
    let mut families: BTreeMap<String, Family> = BTreeMap::new();
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().expect("HELP metric name");
            let previous = families.insert(
                name.to_string(),
                Family {
                    kind: String::new(),
                    has_help: true,
                    samples: Vec::new(),
                },
            );
            assert!(previous.is_none(), "duplicate HELP for {name}");
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().expect("TYPE metric name");
            let kind = parts.next().expect("TYPE kind");
            let family = families
                .get_mut(name)
                .unwrap_or_else(|| panic!("TYPE without preceding HELP for {name}"));
            assert!(family.kind.is_empty(), "duplicate TYPE for {name}");
            assert!(
                family.samples.is_empty(),
                "samples of {name} appeared before its TYPE line"
            );
            family.kind = kind.to_string();
            continue;
        }
        assert!(!line.starts_with('#'), "unknown metadata line: {line}");
        // Sample: `name{label="v",...} value` or `name value`.
        let (name_and_labels, value) = line.rsplit_once(' ').expect("sample value");
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("unparsable sample value: {line}"));
        let (sample_name, labels) = match name_and_labels.split_once('{') {
            None => (name_and_labels.to_string(), Vec::new()),
            Some((name, raw_labels)) => {
                let raw_labels = raw_labels
                    .strip_suffix('}')
                    .unwrap_or_else(|| panic!("unterminated label set: {line}"));
                let labels = raw_labels
                    .split("\",")
                    .map(|pair| {
                        let (key, value) = pair.split_once("=\"").expect("label pair");
                        (key.to_string(), value.trim_end_matches('"').to_string())
                    })
                    .collect();
                (name.to_string(), labels)
            }
        };
        // A sample belongs to the family whose name it extends: exact match,
        // or the histogram suffixes `_bucket` / `_sum` / `_count`.
        let family_name = ["_bucket", "_sum", "_count"]
            .iter()
            .filter_map(|suffix| sample_name.strip_suffix(suffix))
            .find(|stem| families.contains_key(*stem))
            .map(str::to_string)
            .unwrap_or_else(|| sample_name.clone());
        let family = families
            .get_mut(&family_name)
            .unwrap_or_else(|| panic!("sample {sample_name} has no preceding HELP/TYPE family"));
        assert!(
            family.has_help && !family.kind.is_empty(),
            "sample {sample_name} precedes its HELP/TYPE metadata"
        );
        family.samples.push((sample_name, labels, value));
    }
    families
}

#[test]
fn metrics_exposition_is_well_formed_prometheus_text() {
    let handle = spawn_server(ServerConfig {
        engine: small_engine(1),
        conn_threads: 2,
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    // Drive a little traffic so counters and histograms are non-trivial.
    let solve = consensus_body("prom", r#""Fair-Borda""#, 0.2, true);
    let (status, _) = exchange(addr, "POST", "/v1/consensus", &solve);
    assert_eq!(status, 200);
    let (status, _) = exchange(addr, "GET", "/v1/methods", "");
    assert_eq!(status, 200);
    let (status, _) = exchange(addr, "GET", "/v1/nope", "");
    assert_eq!(status, 404);

    let (status, headers, body) = fetch_text(addr, "/metrics");
    assert_eq!(status, 200);
    assert_eq!(
        header(&headers, "content-type"),
        Some("text/plain; version=0.0.4; charset=utf-8")
    );

    let families = parse_exposition(&body);

    // Counters the API layer must expose.
    for name in [
        "mani_http_requests_total",
        "mani_connections_accepted_total",
        "mani_requests_served_total",
        "mani_engine_jobs_submitted_total",
        "mani_engine_jobs_completed_total",
        "mani_engine_queue_depth",
        "mani_pool_queued",
        "mani_pool_busy",
        "mani_precedence_cache_lookups_total",
        "mani_response_cache_entries",
        "mani_uptime_seconds",
    ] {
        assert!(families.contains_key(name), "missing family {name}");
    }
    for (name, family) in &families {
        assert!(family.has_help, "{name} lacks HELP");
        assert!(!family.kind.is_empty(), "{name} lacks TYPE");
        assert!(
            !family.samples.is_empty(),
            "{name} declared but has no samples"
        );
        if name.ends_with("_total") {
            assert_eq!(family.kind, "counter", "{name} should be a counter");
        }
    }

    // The request-duration histogram: per endpoint, buckets must be
    // cumulative-monotone in document order, end at `+Inf`, and agree with
    // `_count`; `_sum` must be present and non-negative.
    let duration = &families["mani_http_request_duration_seconds"];
    assert_eq!(duration.kind, "histogram");
    let mut per_endpoint: BTreeMap<String, Vec<(String, f64)>> = BTreeMap::new();
    let mut counts: BTreeMap<String, f64> = BTreeMap::new();
    let mut sums: BTreeMap<String, f64> = BTreeMap::new();
    for (sample_name, labels, value) in &duration.samples {
        let endpoint = header_label(labels, "endpoint");
        match sample_name.as_str() {
            "mani_http_request_duration_seconds_bucket" => {
                let le = header_label(labels, "le");
                per_endpoint.entry(endpoint).or_default().push((le, *value));
            }
            "mani_http_request_duration_seconds_count" => {
                counts.insert(endpoint, *value);
            }
            "mani_http_request_duration_seconds_sum" => {
                assert!(*value >= 0.0);
                sums.insert(endpoint, *value);
            }
            other => panic!("unexpected histogram sample {other}"),
        }
    }
    assert!(
        per_endpoint.len() >= 4,
        "expected several endpoint histograms, got {:?}",
        per_endpoint.keys().collect::<Vec<_>>()
    );
    for (endpoint, buckets) in &per_endpoint {
        assert_eq!(
            buckets.last().map(|(le, _)| le.as_str()),
            Some("+Inf"),
            "{endpoint} buckets must end at +Inf"
        );
        // Bounds strictly increase; cumulative counts never decrease.
        let bounds: Vec<f64> = buckets[..buckets.len() - 1]
            .iter()
            .map(|(le, _)| le.parse().expect("numeric le"))
            .collect();
        assert!(bounds.windows(2).all(|p| p[0] < p[1]), "{endpoint} bounds");
        assert!(
            buckets.windows(2).all(|p| p[0].1 <= p[1].1),
            "{endpoint} buckets must be cumulative-monotone: {buckets:?}"
        );
        assert_eq!(
            buckets.last().unwrap().1,
            counts[endpoint],
            "{endpoint}: +Inf bucket must equal _count"
        );
        assert!(sums.contains_key(endpoint), "{endpoint} lacks _sum");
    }
    // The driven consensus request landed in its histogram.
    assert!(counts["consensus"] >= 1.0);
    assert!(counts["other"] >= 1.0, "404 traffic lands in `other`");
    handle.stop();
}

/// A label's value, panicking when absent.
fn header_label(labels: &[(String, String)], name: &str) -> String {
    labels
        .iter()
        .find(|(key, _)| key == name)
        .map(|(_, value)| value.clone())
        .unwrap_or_else(|| panic!("label {name} missing from {labels:?}"))
}

// ---------------------------------------------------------------------------
// x-request-id contract
// ---------------------------------------------------------------------------

#[test]
fn request_ids_round_trip_on_every_response_shape() {
    let handle = spawn_server(ServerConfig {
        engine: small_engine(1),
        conn_threads: 2,
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    let solve = consensus_body("reqid", r#""Fair-Borda""#, 0.2, true);

    // Buffered 200: the client's id comes back verbatim.
    let (status, headers, _) =
        exchange_with_id(addr, "POST", "/v1/consensus", &solve, "client-id-001");
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-request-id"), Some("client-id-001"));

    // Cached replay (same body second time): still carries the new request's
    // own id, not the original's.
    let (status, headers, body) =
        exchange_with_id(addr, "POST", "/v1/consensus", &solve, "client-id-002");
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-request-id"), Some("client-id-002"));
    assert!(body.contains("\"cached\""), "replay should be cache-marked");

    // No header sent: the server generates one.
    let (status, headers, _) = {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        send_request(&mut stream, "GET", "/v1/methods", "", true);
        read_response(&mut stream)
    };
    assert_eq!(status, 200);
    let generated = header(&headers, "x-request-id").expect("generated id");
    assert!(generated.starts_with("req-"), "generated id: {generated}");

    // Malformed client id (spaces) is replaced by a generated one.
    let (_, headers, _) =
        exchange_with_id(addr, "GET", "/v1/methods", "", "has%20spaces%20encoded!!");
    let replaced = header(&headers, "x-request-id").expect("id on response");
    assert!(replaced.starts_with("req-"), "replaced id: {replaced}");

    // Error paths carry ids too: 404 unknown route, 400 malformed body.
    let (status, headers, _) = exchange_with_id(addr, "GET", "/v1/nope", "", "err-404-id");
    assert_eq!(status, 404);
    assert_eq!(header(&headers, "x-request-id"), Some("err-404-id"));
    let (status, headers, _) =
        exchange_with_id(addr, "POST", "/v1/consensus", "{not json", "err-400-id");
    assert_eq!(status, 400);
    assert_eq!(header(&headers, "x-request-id"), Some("err-400-id"));

    // Streamed NDJSON: the chunked head itself carries the id.
    let stream_body = format!(
        r#"{{"dataset": {}, "methods": ["Fair-Borda"], "delta": 0.2, "stream": true}}"#,
        common::demo_dataset("reqid-stream")
    );
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    write!(
        stream,
        "POST /v1/consensus HTTP/1.1\r\nHost: test\r\nConnection: close\r\nX-Request-Id: stream-id-9\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
        stream_body.len(),
        stream_body
    )
    .expect("send streamed request");
    let (status, headers) = read_head(&mut stream);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-request-id"), Some("stream-id-9"));
    assert_eq!(
        header(&headers, "transfer-encoding").map(str::to_ascii_lowercase),
        Some("chunked".into())
    );
    let mut lines = Vec::new();
    while let Some(line) = read_chunk(&mut stream) {
        lines.push(line);
    }
    assert_eq!(
        lines.len(),
        2,
        "one dataset in: one result line plus the summary line"
    );
    let summary: Value = serde_json::from_str(lines.last().unwrap()).expect("summary JSON");
    assert_eq!(summary.get("summary"), Some(&Value::Bool(true)));
    handle.stop();
}

// ---------------------------------------------------------------------------
// Build identity + job traces
// ---------------------------------------------------------------------------

#[test]
fn version_endpoint_reports_build_identity() {
    let handle = spawn_server(ServerConfig {
        engine: small_engine(1),
        conn_threads: 1,
        ..ServerConfig::default()
    });
    let (status, body) = exchange(handle.addr(), "GET", "/v1/version", "");
    assert_eq!(status, 200);
    assert_eq!(body.get("name").and_then(Value::as_str), Some("mani-serve"));
    let version = body
        .get("version")
        .and_then(Value::as_str)
        .expect("crate version");
    assert!(version.split('.').count() >= 3, "semver-ish: {version}");
    let features = body.get("features").and_then(|f| match f {
        Value::Array(items) => Some(items),
        _ => None,
    });
    let features = features.expect("features array");
    assert!(features
        .iter()
        .any(|f| f == &Value::String("prometheus-metrics".into())));
    handle.stop();
}

#[test]
fn job_trace_times_phases_over_the_wire() {
    let handle = spawn_server(ServerConfig {
        engine: small_engine(1),
        conn_threads: 2,
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    // Async submit (no wait) → job id; poll it done, then read its trace.
    let submit = consensus_body("traced", r#""Fair-Borda""#, 0.2, false);
    let (status, headers, body) =
        exchange_with_id(addr, "POST", "/v1/consensus", &submit, "trace-client");
    assert_eq!(status, 202, "{body}");
    assert_eq!(header(&headers, "x-request-id"), Some("trace-client"));
    let submitted: Value = serde_json::from_str(&body).expect("submit JSON");
    let job_id = submitted
        .get("id")
        .and_then(Value::as_str)
        .expect("job id")
        .to_string();

    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let (status, poll) = exchange(addr, "GET", &format!("/v1/jobs/{job_id}"), "");
        assert_eq!(status, 200);
        if poll.get("status").and_then(Value::as_str) == Some("done") {
            // The job record remembers the submitting request's id.
            assert_eq!(
                poll.get("request_id").and_then(Value::as_str),
                Some("trace-client")
            );
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "job never finished: {poll:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let (status, trace) = exchange(addr, "GET", &format!("/v1/jobs/{job_id}/trace"), "");
    assert_eq!(status, 200, "{trace:?}");
    assert_eq!(
        trace.get("request_id").and_then(Value::as_str),
        Some("trace-client")
    );
    let phases = match trace.get("phases") {
        Some(Value::Array(items)) => items.clone(),
        other => panic!("phases array missing: {other:?}"),
    };
    let names: Vec<&str> = phases
        .iter()
        .map(|p| p.get("name").and_then(Value::as_str).expect("phase name"))
        .collect();
    for required in ["queue_wait", "solve"] {
        assert_eq!(
            names.iter().filter(|n| **n == required).count(),
            1,
            "phase {required} must appear exactly once: {names:?}"
        );
    }
    let mut unique = names.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(
        unique.len(),
        names.len(),
        "phases must be unique: {names:?}"
    );

    // Per-phase durations can never exceed the job's wall-clock age.
    let age_ms = as_f64(trace.get("age_ms")).expect("age_ms");
    let span_ms = as_f64(trace.get("span_ms")).expect("span_ms");
    assert!(span_ms <= age_ms + 1e-6, "span {span_ms} > age {age_ms}");
    let total_phase_ms: f64 = phases
        .iter()
        .map(|p| as_f64(p.get("duration_ms")).expect("duration_ms"))
        .sum();
    assert!(
        total_phase_ms <= age_ms + 1e-6,
        "phases sum to {total_phase_ms} ms but the job is only {age_ms} ms old"
    );

    // Unknown and malformed ids fail crisply.
    let (status, _) = exchange(addr, "GET", "/v1/jobs/job-99999/trace", "");
    assert_eq!(status, 404);
    let (status, _) = exchange(addr, "GET", "/v1/jobs/banana/trace", "");
    assert_eq!(status, 400);
    handle.stop();
}

/// Numeric view of a shim JSON value (render may emit Float/UInt/Int).
fn as_f64(value: Option<&Value>) -> Option<f64> {
    match value? {
        Value::Float(f) => Some(*f),
        Value::UInt(u) => Some(*u as f64),
        Value::Int(i) => Some(*i as f64),
        _ => None,
    }
}
