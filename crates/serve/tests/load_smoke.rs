//! Load smoke for the connection pool: many concurrent clients driving
//! pipelined keep-alive requests through a small worker pool. Run by CI so
//! connection-pool regressions (drops, stalls, lost responses) fail the build
//! rather than production. Kept small enough to finish in seconds.

mod common;

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use common::{
    connection_header, consensus_body, demo_dataset, exchange, exchange_binary, fetch_text,
    get_u64, read_response, send_binary_request, send_request, small_engine, spawn_server,
    strip_volatile,
};
use mani_serve::{ServerConfig, COLUMNAR_CONTENT_TYPE};
use mani_service::{encode_dataset, parse_body, parse_dataset};
use serde::Value;

/// Sum of every `mani_http_requests_total{endpoint=...}` sample in a
/// Prometheus exposition body.
fn total_http_requests(exposition: &str) -> u64 {
    exposition
        .lines()
        .filter(|line| line.starts_with("mani_http_requests_total{"))
        .map(|line| {
            line.rsplit(' ')
                .next()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| panic!("unparsable sample line: {line}"))
        })
        .sum()
}

/// Checks the request-duration histogram invariants for one endpoint label:
/// cumulative `_bucket` values are monotone non-decreasing in `le` order and
/// the `+Inf` bucket equals `_count`.
fn assert_histogram_invariants(exposition: &str, endpoint: &str) {
    let label = format!("endpoint=\"{endpoint}\"");
    let buckets: Vec<u64> = exposition
        .lines()
        .filter(|line| {
            line.starts_with("mani_http_request_duration_seconds_bucket{") && line.contains(&label)
        })
        .map(|line| {
            line.rsplit(' ')
                .next()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| panic!("unparsable bucket line: {line}"))
        })
        .collect();
    assert!(
        !buckets.is_empty(),
        "no duration buckets for endpoint {endpoint}"
    );
    assert!(
        buckets.windows(2).all(|pair| pair[0] <= pair[1]),
        "buckets for {endpoint} are not cumulative-monotone: {buckets:?}"
    );
    let count = exposition
        .lines()
        .find(|line| {
            line.starts_with("mani_http_request_duration_seconds_count{") && line.contains(&label)
        })
        .and_then(|line| line.rsplit(' ').next())
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or_else(|| panic!("no _count sample for endpoint {endpoint}"));
    assert_eq!(
        *buckets.last().unwrap(),
        count,
        "+Inf bucket must equal _count for {endpoint}"
    );
}

/// Concurrent client threads.
const CLIENTS: usize = 8;
/// Sequential keep-alive exchanges per client.
const EXCHANGES_PER_CLIENT: usize = 25;
/// Requests written back-to-back (pipelined) before reading any response.
const PIPELINED: usize = 16;

#[test]
fn pooled_keep_alive_survives_concurrent_and_pipelined_load() {
    let handle = spawn_server(ServerConfig {
        engine: small_engine(2),
        cache_capacity: 32,
        conn_threads: 4,
        max_connections: 64,
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    // Warm the response cache so the loop below exercises the connection
    // layer, not the solver.
    let solve = consensus_body("smoke", r#""Fair-Borda""#, 0.2, true);
    let (status, _) = exchange(addr, "POST", "/v1/consensus", &solve);
    assert_eq!(status, 200);

    // Scrape /metrics before the load so the after-scrape can assert the
    // counters actually moved by at least the driven request volume.
    let (scrape_status, scrape_headers, before) = fetch_text(addr, "/metrics");
    assert_eq!(scrape_status, 200);
    assert!(
        scrape_headers
            .iter()
            .any(|(n, v)| n == "content-type" && v.contains("version=0.0.4")),
        "Prometheus content type: {scrape_headers:?}"
    );
    let requests_before = total_http_requests(&before);

    // Phase 1: CLIENTS threads, each one keep-alive connection serving
    // EXCHANGES_PER_CLIENT sequential exchanges. Every request must get a
    // 200 — no drops, no unexplained closes.
    let workers: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let solve = solve.clone();
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(60)))
                    .unwrap();
                for round in 0..EXCHANGES_PER_CLIENT {
                    if round % 2 == 0 {
                        send_request(&mut stream, "GET", "/v1/methods", "", false);
                    } else {
                        send_request(&mut stream, "POST", "/v1/consensus", &solve, false);
                    }
                    let (status, headers, body) = read_response(&mut stream);
                    assert_eq!(status, 200, "client {client} round {round}: {body}");
                    assert_eq!(
                        connection_header(&headers).as_deref(),
                        Some("keep-alive"),
                        "client {client} round {round}"
                    );
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client thread");
    }

    // Phase 2: pipelining — write PIPELINED requests back-to-back on one
    // connection, then read every response in order.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut burst = String::new();
    for _ in 0..PIPELINED {
        burst.push_str("GET /v1/methods HTTP/1.1\r\nHost: smoke\r\n\r\n");
    }
    stream.write_all(burst.as_bytes()).expect("pipelined burst");
    for round in 0..PIPELINED {
        let (status, _, body) = read_response(&mut stream);
        assert_eq!(status, 200, "pipelined response {round}: {body}");
        assert!(body.contains("Fair-Borda"), "pipelined response {round}");
    }
    drop(stream);

    // The pool served everything without a single 503 and reused connections.
    let (_, stats) = exchange(addr, "GET", "/v1/stats", "");
    let expected = (CLIENTS * EXCHANGES_PER_CLIENT + PIPELINED) as u64;
    assert!(
        get_u64(&stats, &["server", "requests_served"]) >= expected,
        "served fewer than the {expected} driven requests: {stats:?}"
    );
    assert_eq!(
        get_u64(&stats, &["server", "connections_rejected"]),
        0,
        "{stats:?}"
    );
    assert!(
        get_u64(&stats, &["server", "keepalive_reuses"])
            >= (CLIENTS * (EXCHANGES_PER_CLIENT - 1) + PIPELINED - 1) as u64,
        "{stats:?}"
    );
    assert!(get_u64(&stats, &["latency", "consensus", "count"]) >= 1);

    // Scrape /metrics after the load: the per-endpoint request counters must
    // have advanced by at least the driven volume, and the latency histograms
    // must still satisfy the exposition invariants under concurrency.
    let (_, _, after) = fetch_text(addr, "/metrics");
    let requests_after = total_http_requests(&after);
    assert!(
        requests_after >= requests_before + expected,
        "request counters moved by {} but the load drove {expected}",
        requests_after - requests_before
    );
    for endpoint in ["consensus", "methods", "stats", "metrics"] {
        assert_histogram_invariants(&after, endpoint);
    }
    assert!(
        after.contains("mani_engine_jobs_submitted_total"),
        "engine counters missing from the exposition"
    );
    handle.stop();
}

/// Mixed-codec load: concurrent clients alternating JSON and binary columnar
/// uploads and solves of the *same* dataset. Every response must be a 200,
/// the two representations must register under one content id and solve to
/// bit-identical results (modulo wall-clock noise and cache markers), and
/// the pool must serve the whole workload without a single reject.
#[test]
fn mixed_codec_workload_is_bit_identical_with_zero_rejects() {
    let handle = spawn_server(ServerConfig {
        engine: small_engine(2),
        cache_capacity: 32,
        conn_threads: 4,
        max_connections: 64,
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    // The columnar twin of the JSON demo dataset, encoded client-side.
    let doc = demo_dataset("mixed");
    let dataset = parse_dataset(&parse_body(&doc).expect("demo JSON")).expect("demo dataset");
    let columnar = encode_dataset(&dataset);

    // Both representations register under the same content id.
    let (json_up_status, json_up) = exchange(addr, "POST", "/v1/datasets", &doc);
    assert_eq!(json_up_status, 200, "{json_up:?}");
    let (col_up_status, col_up) = exchange_binary(
        addr,
        "POST",
        "/v1/datasets",
        COLUMNAR_CONTENT_TYPE,
        &columnar,
    );
    assert_eq!(col_up_status, 200, "{col_up:?}");
    assert_eq!(
        json_up.get("id").and_then(Value::as_str),
        col_up.get("id").and_then(Value::as_str),
        "codec twins must share the dataset content id"
    );
    assert_eq!(col_up.get("created"), Some(&Value::Bool(false)));

    // Warm the shared response cache with a single JSON solve so the
    // concurrent phase below deterministically replays one engine job
    // (cold concurrent misses would each submit their own).
    let json_solve = consensus_body("mixed", r#""Fair-Borda", "Fair-Copeland""#, 0.2, true);
    let columnar_path = "/v1/consensus?methods=Fair-Borda,Fair-Copeland&delta=0.2&wait=true";
    let (warm_status, _) = exchange(addr, "POST", "/v1/consensus", &json_solve);
    assert_eq!(warm_status, 200);

    // Concurrent mixed solves: even clients speak JSON, odd clients columnar,
    // every exchange on a keep-alive connection. Each client returns its
    // first solve payload for the cross-codec comparison.
    let workers: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let json_solve = json_solve.clone();
            let columnar = columnar.clone();
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(60)))
                    .unwrap();
                let mut first: Option<Value> = None;
                for round in 0..EXCHANGES_PER_CLIENT {
                    if client % 2 == 0 {
                        send_request(&mut stream, "POST", "/v1/consensus", &json_solve, false);
                    } else {
                        send_binary_request(
                            &mut stream,
                            "POST",
                            columnar_path,
                            COLUMNAR_CONTENT_TYPE,
                            &columnar,
                            false,
                        );
                    }
                    let (status, _, body) = read_response(&mut stream);
                    assert_eq!(status, 200, "client {client} round {round}: {body}");
                    if first.is_none() {
                        first = Some(serde_json::from_str(&body).expect("solve JSON"));
                    }
                }
                first.expect("at least one exchange")
            })
        })
        .collect();
    let payloads: Vec<Value> = workers
        .into_iter()
        .map(|worker| worker.join().expect("client thread"))
        .collect();

    // Bit-identical across codecs: strip wall-clock fields and the cache
    // markers (whichever client solved first warmed the cache for the rest),
    // then every payload — JSON-driven or columnar-driven — must be equal.
    let reference = strip_volatile(&payloads[0], true);
    for (client, payload) in payloads.iter().enumerate() {
        assert_eq!(
            strip_volatile(payload, true),
            reference,
            "client {client} diverged across codecs"
        );
    }

    // The engine solved the dataset once; every other request replayed the
    // shared response cache keyed by the common fingerprint. Nothing was
    // rejected at the accept path or the media-type gate.
    let (_, stats) = exchange(addr, "GET", "/v1/stats", "");
    assert_eq!(
        get_u64(&stats, &["server", "connections_rejected"]),
        0,
        "{stats:?}"
    );
    assert!(
        get_u64(&stats, &["server", "requests_served"]) >= (CLIENTS * EXCHANGES_PER_CLIENT) as u64,
        "{stats:?}"
    );
    assert_eq!(get_u64(&stats, &["engine", "submitted"]), 1, "{stats:?}");
    handle.stop();
}

/// Sequential PATCH edits per editor round in the edit-session scenario.
const EDITS: usize = 12;
/// Solve exchanges per solver client in the edit-session scenario.
const SOLVES_PER_CLIENT: usize = 15;

/// Edit-session load: one editor thread PATCHing a registered dataset while
/// solver clients hammer solve-by-id on keep-alive connections. Every
/// response must be a 200, the delta counters must advance by exactly the
/// edits applied, and a post-load edit must never replay a pre-edit cached
/// payload (fingerprint-keyed caching makes stale replays structurally
/// impossible; this pins that property under concurrency).
#[test]
fn edit_session_workload_advances_deltas_with_zero_stale_replays() {
    let handle = spawn_server(ServerConfig {
        engine: small_engine(2),
        cache_capacity: 64,
        conn_threads: 4,
        max_connections: 64,
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    let (status, uploaded) = exchange(addr, "POST", "/v1/datasets", &demo_dataset("editable"));
    assert_eq!(status, 200, "{uploaded:?}");
    let id = uploaded
        .get("id")
        .and_then(Value::as_str)
        .expect("dataset id")
        .to_string();
    let solve = format!(
        r#"{{"dataset": {{"id": "{id}"}}, "methods": ["Fair-Borda"], "delta": 0.2, "wait": true}}"#
    );
    // Warm the version-1 matrix so the first edit delta-derives.
    let (status, _) = exchange(addr, "POST", "/v1/consensus", &solve);
    assert_eq!(status, 200);

    // One editor: EDITS sequential PATCHes, each appending a rotated ranking
    // (every edit changes the content fingerprint). Single-writer, so the
    // version chain and delta counters advance deterministically.
    let editor = {
        let id = id.clone();
        std::thread::spawn(move || {
            let names = ["a", "b", "c", "d", "e", "f"];
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(60)))
                .unwrap();
            for round in 0..EDITS {
                let rotated: Vec<String> = (0..names.len())
                    .map(|i| format!("\"{}\"", names[(i + round) % names.len()]))
                    .collect();
                let body = format!(
                    r#"{{"ops": [{{"op": "append", "ranking": [{}]}}]}}"#,
                    rotated.join(",")
                );
                send_request(
                    &mut stream,
                    "PATCH",
                    &format!("/v1/datasets/{id}"),
                    &body,
                    false,
                );
                let (status, _, response) = read_response(&mut stream);
                assert_eq!(status, 200, "edit {round}: {response}");
            }
        })
    };
    // Solver clients race the editor on the same id; by-reference solves
    // always resolve whatever version is current at admission time.
    let solvers: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let solve = solve.clone();
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(60)))
                    .unwrap();
                for round in 0..SOLVES_PER_CLIENT {
                    send_request(&mut stream, "POST", "/v1/consensus", &solve, false);
                    let (status, _, body) = read_response(&mut stream);
                    assert_eq!(status, 200, "solver {client} round {round}: {body}");
                }
            })
        })
        .collect();
    editor.join().expect("editor thread");
    for solver in solvers {
        solver.join().expect("solver thread");
    }

    // Counters advanced: every edit was either delta-derived (one append op
    // each) or — if its parent matrix had been evicted meanwhile — counted
    // as a rebuild fallback. Nothing was rejected.
    let (_, stats) = exchange(addr, "GET", "/v1/stats", "");
    let appends = get_u64(&stats, &["precedence_cache", "delta_appends"]);
    let fallbacks = get_u64(&stats, &["precedence_cache", "delta_rebuild_fallbacks"]);
    assert_eq!(
        appends + fallbacks,
        EDITS as u64,
        "every PATCH accounted for: {stats:?}"
    );
    assert!(
        appends >= 1,
        "at least the warm first edit derives: {stats:?}"
    );
    assert_eq!(
        get_u64(&stats, &["server", "connections_rejected"]),
        0,
        "{stats:?}"
    );
    assert!(get_u64(&stats, &["latency", "dataset_patch", "count"]) >= EDITS as u64);
    let (_, meta) = exchange(addr, "GET", &format!("/v1/datasets/{id}"), "");
    assert_eq!(get_u64(&meta, &["version"]), 1 + EDITS as u64);

    // Zero stale replays: a fresh edit changes the fingerprint, so the next
    // by-reference solve MUST miss the response cache; only the genuine
    // same-content replay after it may hit.
    let (status, _) = exchange(
        addr,
        "PATCH",
        &format!("/v1/datasets/{id}"),
        r#"{"ops": [{"op": "append", "ranking": ["f","d","b","e","c","a"]}]}"#,
    );
    assert_eq!(status, 200);
    let (status, fresh) = exchange(addr, "POST", "/v1/consensus", &solve);
    assert_eq!(status, 200, "{fresh:?}");
    assert_eq!(
        fresh.get("cached"),
        Some(&Value::Bool(false)),
        "post-edit solve replayed a pre-edit payload: {fresh:?}"
    );
    let (_, replay) = exchange(addr, "POST", "/v1/consensus", &solve);
    assert_eq!(
        replay.get("cached"),
        Some(&Value::Bool(true)),
        "same-content replay stays legitimate: {replay:?}"
    );
    handle.stop();
}
