//! Shared raw-socket HTTP client helpers for the serve integration tests:
//! framing-aware response reads (keep-alive connections never reach EOF, so
//! `read_to_string` would hang) and a pinned demo dataset payload.
#![allow(dead_code)] // each test binary uses a subset

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use mani_engine::EngineConfig;
use mani_serve::{Server, ServerConfig, ServerHandle};
use serde::Value;

/// Spawns a test server with the given connection-pool shape.
pub fn spawn_server(config: ServerConfig) -> ServerHandle {
    Server::bind("127.0.0.1:0", config)
        .expect("bind an ephemeral port")
        .spawn()
        .expect("spawn the accept loop")
}

/// A small engine config for tests (bounded threads, default queue).
pub fn small_engine(threads: usize) -> EngineConfig {
    EngineConfig {
        threads,
        ..EngineConfig::default()
    }
}

/// Writes one request onto an open stream without reading the response.
/// `close` adds `Connection: close`; otherwise HTTP/1.1 keep-alive applies.
pub fn send_request(stream: &mut TcpStream, method: &str, path: &str, body: &str, close: bool) {
    let connection = if close { "Connection: close\r\n" } else { "" };
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\n{connection}Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
}

/// Writes one request with an arbitrary (possibly binary) body and an
/// explicit `Content-Type` — the columnar upload path. `close` adds
/// `Connection: close`; otherwise HTTP/1.1 keep-alive applies.
pub fn send_binary_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    content_type: &str,
    body: &[u8],
    close: bool,
) {
    let connection = if close { "Connection: close\r\n" } else { "" };
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\n{connection}Content-Type: {content_type}\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .expect("send request head");
    stream.write_all(body).expect("send request body");
}

/// One one-shot exchange with a binary body returning `(status, JSON)`.
pub fn exchange_binary(
    addr: SocketAddr,
    method: &str,
    path: &str,
    content_type: &str,
    body: &[u8],
) -> (u16, Value) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    send_binary_request(&mut stream, method, path, content_type, body, true);
    let (status, _, body) = read_response(&mut stream);
    let value = serde_json::from_str(&body).unwrap_or(Value::Null);
    (status, value)
}

/// Reads exactly one HTTP response off the stream (headers, then the body's
/// `Content-Length` bytes — works on keep-alive connections where EOF never
/// comes). Returns `(status, headers, body)`; header names are lower-cased.
pub fn read_response(stream: &mut TcpStream) -> (u16, Vec<(String, String)>, String) {
    let mut raw = Vec::new();
    let mut byte = [0u8; 1];
    // Headers end at the first CRLFCRLF.
    while !raw.ends_with(b"\r\n\r\n") {
        match stream.read(&mut byte) {
            Ok(1) => raw.push(byte[0]),
            other => panic!("connection ended mid-headers ({other:?}); got {raw:?}"),
        }
    }
    let head = String::from_utf8(raw).expect("UTF-8 response head");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .expect("status line")
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers: Vec<(String, String)> = lines
        .filter(|l| !l.is_empty())
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let length: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| v.parse().expect("numeric Content-Length"))
        .unwrap_or(0);
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body).expect("read body");
    (
        status,
        headers,
        String::from_utf8(body).expect("UTF-8 body"),
    )
}

/// Reads the head (status line + headers) of one HTTP response, leaving the
/// stream positioned at the first body byte. Used for chunked responses,
/// which [`read_response`]'s `Content-Length` framing cannot handle.
pub fn read_head(stream: &mut TcpStream) -> (u16, Vec<(String, String)>) {
    let mut raw = Vec::new();
    let mut byte = [0u8; 1];
    while !raw.ends_with(b"\r\n\r\n") {
        match stream.read(&mut byte) {
            Ok(1) => raw.push(byte[0]),
            other => panic!("connection ended mid-headers ({other:?}); got {raw:?}"),
        }
    }
    let head = String::from_utf8(raw).expect("UTF-8 response head");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .expect("status line")
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers: Vec<(String, String)> = lines
        .filter(|l| !l.is_empty())
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers)
}

/// Reads one chunk of a chunked response body. `None` marks the terminating
/// zero-length chunk (trailer consumed): the body is complete and the
/// connection is positioned at the next exchange. The server writes one
/// NDJSON line per chunk, so for `"stream": true` one chunk is one line.
pub fn read_chunk(stream: &mut TcpStream) -> Option<String> {
    let mut size_line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(1) => {
                if byte[0] == b'\n' {
                    break;
                }
                size_line.push(byte[0]);
            }
            other => panic!("connection ended mid-chunk-size ({other:?})"),
        }
    }
    if size_line.last() == Some(&b'\r') {
        size_line.pop();
    }
    let size = usize::from_str_radix(
        std::str::from_utf8(&size_line).expect("UTF-8 chunk size"),
        16,
    )
    .unwrap_or_else(|_| panic!("malformed chunk size {size_line:?}"));
    let mut payload = vec![0u8; size + 2]; // payload + trailing CRLF
    stream.read_exact(&mut payload).expect("read chunk payload");
    assert_eq!(
        &payload[size..],
        b"\r\n",
        "chunk payload must end with CRLF"
    );
    payload.truncate(size);
    if size == 0 {
        return None;
    }
    Some(String::from_utf8(payload).expect("UTF-8 chunk"))
}

/// Recursively strips volatile timing fields (`duration_ms`,
/// `total_solve_time_ms`) — and optionally the `cached` markers — so two
/// response payloads can be compared bit-for-bit on everything that is not
/// wall-clock noise.
pub fn strip_volatile(value: &Value, strip_cached: bool) -> Value {
    match value {
        Value::Object(entries) => Value::Object(
            entries
                .iter()
                .filter(|(key, _)| {
                    key != "duration_ms"
                        && key != "total_solve_time_ms"
                        && !(strip_cached && key == "cached")
                })
                .map(|(key, inner)| (key.clone(), strip_volatile(inner, strip_cached)))
                .collect(),
        ),
        Value::Array(items) => Value::Array(
            items
                .iter()
                .map(|item| strip_volatile(item, strip_cached))
                .collect(),
        ),
        other => other.clone(),
    }
}

/// The `Connection:` header value of a response, lower-cased.
pub fn connection_header(headers: &[(String, String)]) -> Option<String> {
    headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| v.to_ascii_lowercase())
}

/// One one-shot exchange (`Connection: close`) returning `(status, JSON)`.
pub fn exchange(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Value) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    send_request(&mut stream, method, path, body, true);
    let (status, _, body) = read_response(&mut stream);
    let value = serde_json::from_str(&body).unwrap_or(Value::Null);
    (status, value)
}

/// One one-shot `GET` returning `(status, headers, raw body text)` — for
/// non-JSON endpoints like `/metrics` (Prometheus text exposition).
pub fn fetch_text(addr: SocketAddr, path: &str) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    send_request(&mut stream, "GET", path, "", true);
    read_response(&mut stream)
}

/// Integer lookup along a JSON path; panics with context when absent.
pub fn get_u64(value: &Value, path: &[&str]) -> u64 {
    let mut current = value;
    for key in path {
        current = current.get(key).unwrap_or(&Value::Null);
    }
    match current {
        Value::UInt(u) => *u,
        Value::Int(i) => *i as u64,
        other => panic!("expected integer at {path:?}, found {other:?}"),
    }
}

/// A six-candidate dataset JSON object under `name`.
pub fn demo_dataset(name: &str) -> String {
    format!(
        r#"{{
            "name": "{name}",
            "candidates": [
                {{"name": "a", "attributes": {{"G": "x"}}}},
                {{"name": "b", "attributes": {{"G": "y"}}}},
                {{"name": "c", "attributes": {{"G": "x"}}}},
                {{"name": "d", "attributes": {{"G": "y"}}}},
                {{"name": "e", "attributes": {{"G": "x"}}}},
                {{"name": "f", "attributes": {{"G": "y"}}}}
            ],
            "rankings": [
                ["a","b","c","d","e","f"],
                ["f","e","d","c","b","a"],
                ["b","a","c","e","d","f"]
            ]
        }}"#
    )
}

/// A consensus request body over [`demo_dataset`].
pub fn consensus_body(name: &str, methods: &str, delta: f64, wait: bool) -> String {
    format!(
        r#"{{"dataset": {}, "methods": [{methods}], "delta": {delta}, "wait": {wait}}}"#,
        demo_dataset(name)
    )
}
