//! Connection-pool counters for the HTTP transport.
//!
//! Request latency histograms moved into `mani-service` (they are an
//! operation-level concern every transport shares); what remains here is the
//! one piece of telemetry only this HTTP server can observe: the connection
//! pool. [`ServeCounters`] tracks accepted connections, `503`-rejected ones,
//! requests served, and keep-alive reuses, and bridges into the service
//! core's transport-neutral [`TransportStats`] for `/v1/stats` and
//! `/metrics` rendering.

use std::sync::atomic::{AtomicU64, Ordering};

use mani_service::TransportStats;

/// Connection-pool counters, updated by the accept loop and the workers.
#[derive(Debug, Default)]
pub struct ServeCounters {
    accepted: AtomicU64,
    rejected_busy: AtomicU64,
    requests: AtomicU64,
    keepalive_reuses: AtomicU64,
    max_connections: AtomicU64,
    conn_threads: AtomicU64,
}

/// Point-in-time copy of [`ServeCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeCountersSnapshot {
    /// Connections handed to the worker pool.
    pub accepted: u64,
    /// Connections answered `503` at the accept path (pool saturated or
    /// worker spawn failure).
    pub rejected_busy: u64,
    /// HTTP exchanges served (all endpoints, all connections).
    pub requests: u64,
    /// Exchanges served on an already-used connection (keep-alive hits).
    pub keepalive_reuses: u64,
    /// Configured connection bound (0 until a server configures it).
    pub max_connections: u64,
    /// Configured worker count (0 until a server configures it).
    pub conn_threads: u64,
}

impl From<ServeCountersSnapshot> for TransportStats {
    fn from(snapshot: ServeCountersSnapshot) -> Self {
        TransportStats {
            max_connections: snapshot.max_connections,
            conn_threads: snapshot.conn_threads,
            accepted: snapshot.accepted,
            rejected_busy: snapshot.rejected_busy,
            requests: snapshot.requests,
            keepalive_reuses: snapshot.keepalive_reuses,
        }
    }
}

impl ServeCounters {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stamps the pool shape (called once by the server at startup).
    pub fn configure(&self, max_connections: usize, conn_threads: usize) {
        self.max_connections
            .store(max_connections as u64, Ordering::Relaxed);
        self.conn_threads
            .store(conn_threads as u64, Ordering::Relaxed);
    }

    /// One connection handed to the pool.
    pub fn record_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// One connection answered `503` on the accept path.
    pub fn record_rejected_busy(&self) {
        self.rejected_busy.fetch_add(1, Ordering::Relaxed);
    }

    /// One HTTP exchange served; `reused` marks a keep-alive follow-up.
    pub fn record_request(&self, reused: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if reused {
            self.keepalive_reuses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current counter values.
    pub fn snapshot(&self) -> ServeCountersSnapshot {
        ServeCountersSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected_busy: self.rejected_busy.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            keepalive_reuses: self.keepalive_reuses.load(Ordering::Relaxed),
            max_connections: self.max_connections.load(Ordering::Relaxed),
            conn_threads: self.conn_threads.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_counters_accumulate() {
        let counters = ServeCounters::new();
        counters.configure(256, 8);
        counters.record_accepted();
        counters.record_request(false);
        counters.record_request(true);
        counters.record_rejected_busy();
        let snap = counters.snapshot();
        assert_eq!(snap.accepted, 1);
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.keepalive_reuses, 1);
        assert_eq!(snap.rejected_busy, 1);
        assert_eq!(snap.max_connections, 256);
        assert_eq!(snap.conn_threads, 8);
    }

    #[test]
    fn snapshots_bridge_into_transport_stats() {
        let counters = ServeCounters::new();
        counters.configure(64, 4);
        counters.record_accepted();
        counters.record_request(false);
        let stats: TransportStats = counters.snapshot().into();
        assert_eq!(stats.max_connections, 64);
        assert_eq!(stats.conn_threads, 4);
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.rejected_busy, 0);
        assert_eq!(stats.keepalive_reuses, 0);
    }
}
