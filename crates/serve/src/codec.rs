//! Wire-codec negotiation: which body representation a request carries and
//! which one the client will accept back.
//!
//! The service core ([`mani_service::Service`]) works on typed values; this
//! module is the seam where HTTP representation metadata (`Content-Type`,
//! `Accept`, the query string) is resolved into a concrete codec before the
//! transport decodes bytes. Two upload representations are supported:
//!
//! * `application/json` (the default when no `Content-Type` is sent) — the
//!   documented JSON API.
//! * `application/vnd.mani.columnar` — the compact binary columnar dataset
//!   encoding defined in [`mani_service::columnar`]. A columnar `POST
//!   /v1/consensus` body is the dataset itself; solve parameters
//!   (`methods`, `delta`, `budget`, `wait`, `stream`) ride the query string.
//!
//! Anything else is refused with `415 Unsupported Media Type` and a
//! structured JSON envelope listing the supported representations. Responses
//! are always JSON (or NDJSON for streamed batches); a request whose `Accept`
//! header excludes both is refused with `406 Not Acceptable` rather than
//! silently answered with a representation the client said it cannot read.

use std::sync::Arc;

use mani_engine::EngineDataset;
use mani_fairness::FairnessThresholds;
use mani_service::{
    error_body, obj, parse_methods_csv, render, s, with_entry, ApiError, ConsensusSpec,
    COLUMNAR_CONTENT_TYPE,
};
use serde::Value;

use crate::http::{HttpRequest, HttpResponse};

/// The JSON media type (the default body representation).
pub const JSON_CONTENT_TYPE: &str = "application/json";

/// The NDJSON media type used by streamed consensus responses.
pub const NDJSON_CONTENT_TYPE: &str = "application/x-ndjson";

/// Body representation of one POST request, resolved from `Content-Type`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BodyCodec {
    /// `application/json` (or no `Content-Type` at all).
    Json,
    /// `application/vnd.mani.columnar` — the binary columnar dataset
    /// encoding.
    Columnar,
}

/// The media type left of any `;` parameters, lower-cased and trimmed
/// (`Application/JSON; charset=utf-8` → `application/json`).
fn media_type(raw: &str) -> String {
    raw.split(';')
        .next()
        .unwrap_or("")
        .trim()
        .to_ascii_lowercase()
}

/// Resolves the body representation of a POST request from its
/// `Content-Type`. Unsupported types are refused with a fully rendered `415`
/// response enumerating the representations this endpoint can decode.
pub fn negotiate_body(request: &HttpRequest) -> Result<BodyCodec, HttpResponse> {
    let Some(raw) = request.header("content-type") else {
        return Ok(BodyCodec::Json);
    };
    match media_type(raw).as_str() {
        "" | JSON_CONTENT_TYPE => Ok(BodyCodec::Json),
        COLUMNAR_CONTENT_TYPE => Ok(BodyCodec::Columnar),
        other => Err(HttpResponse::json(
            415,
            render(&with_entry(
                obj(vec![(
                    "error",
                    s(format!("unsupported media type `{other}`")),
                )]),
                "supported",
                Value::Array(vec![s(JSON_CONTENT_TYPE), s(COLUMNAR_CONTENT_TYPE)]),
            )),
        )),
    }
}

/// Checks the request's `Accept` header against the JSON (and, for streamed
/// batches, NDJSON) responses this API produces. Absent or wildcard accepts
/// pass; a header that excludes every producible representation is refused
/// with a fully rendered `406` response.
pub fn check_accept(request: &HttpRequest) -> Result<(), HttpResponse> {
    let Some(raw) = request.header("accept") else {
        return Ok(());
    };
    let acceptable = raw.split(',').map(media_type).any(|mt| {
        matches!(
            mt.as_str(),
            "" | "*/*" | "application/*" | JSON_CONTENT_TYPE | NDJSON_CONTENT_TYPE
        )
    });
    if acceptable {
        Ok(())
    } else {
        Err(HttpResponse::json(
            406,
            render(&with_entry(
                obj(vec![(
                    "error",
                    s(format!("cannot produce any representation in `{raw}`")),
                )]),
                "produces",
                Value::Array(vec![s(JSON_CONTENT_TYPE), s(NDJSON_CONTENT_TYPE)]),
            )),
        ))
    }
}

/// Splits a raw query string into `(key, value)` pairs. No percent-decoding:
/// every parameter this API defines (method names, numbers, booleans) is
/// already URL-safe, and commas are legal raw in query strings.
pub fn query_params(query: Option<&str>) -> Vec<(String, String)> {
    query
        .unwrap_or("")
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect()
}

/// Solve parameters of a columnar consensus request, parsed from the query
/// string (a binary body has no side channel for them).
#[derive(Debug)]
pub struct ColumnarSolveParams {
    /// The parsed spec (dataset + methods + thresholds + budget).
    pub spec: ConsensusSpec,
    /// `wait=true` — block for results.
    pub wait: bool,
    /// `stream=true` — NDJSON lines in completion order.
    pub stream: bool,
}

/// Builds the consensus spec for a columnar upload: the decoded dataset plus
/// `methods` (comma-separated), `delta`, `budget`, `wait`, and `stream` from
/// the query string. Unknown parameters are rejected so typos fail loudly.
pub fn columnar_solve_params(
    dataset: Arc<EngineDataset>,
    query: Option<&str>,
) -> Result<ColumnarSolveParams, ApiError> {
    let mut methods_csv: Option<String> = None;
    let mut delta = 0.1f64;
    let mut budget: Option<u64> = None;
    let mut wait = false;
    let mut stream = false;
    for (key, value) in query_params(query) {
        match key.as_str() {
            "methods" => methods_csv = Some(value),
            "delta" => {
                delta = value.parse().map_err(|_| {
                    ApiError::invalid(format!("cannot parse `delta` value `{value}`"))
                })?;
            }
            "budget" => {
                budget = Some(value.parse().map_err(|_| {
                    ApiError::invalid(format!("cannot parse `budget` value `{value}`"))
                })?);
            }
            "wait" => wait = parse_bool_param("wait", &value)?,
            "stream" => stream = parse_bool_param("stream", &value)?,
            other => {
                return Err(ApiError::invalid(format!(
                    "unknown query parameter `{other}` (expected methods, delta, budget, wait, or stream)"
                )));
            }
        }
    }
    let methods = match methods_csv {
        Some(csv) => parse_methods_csv(&csv)?,
        None => mani_core::MethodKind::proposed().to_vec(),
    };
    Ok(ColumnarSolveParams {
        spec: ConsensusSpec {
            dataset,
            methods,
            thresholds: FairnessThresholds::uniform(delta),
            budget,
        },
        wait,
        stream,
    })
}

/// Parses a boolean query parameter (`true`/`false`/`1`/`0`; a bare key with
/// no value means `true`).
fn parse_bool_param(name: &str, value: &str) -> Result<bool, ApiError> {
    match value {
        "" | "true" | "1" => Ok(true),
        "false" | "0" => Ok(false),
        other => Err(ApiError::invalid(format!(
            "cannot parse `{name}` value `{other}` (expected true or false)"
        ))),
    }
}

/// Renders an [`ApiError`] as the standard JSON error envelope on the status
/// code its kind maps to.
pub fn api_error_response(error: &ApiError) -> HttpResponse {
    HttpResponse::json(
        crate::handlers::api_error_status(error),
        error_body(&error.message),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::post;

    fn with_content_type(mut request: HttpRequest, value: &str) -> HttpRequest {
        request.headers.retain(|(name, _)| name != "content-type");
        request
            .headers
            .push(("content-type".to_string(), value.to_string()));
        request
    }

    #[test]
    fn json_is_the_default_and_parameters_are_ignored() {
        let mut bare = post("/v1/consensus", "{}");
        bare.headers.clear();
        assert_eq!(negotiate_body(&bare).unwrap(), BodyCodec::Json);
        let charset = with_content_type(
            post("/v1/consensus", "{}"),
            "Application/JSON; charset=utf-8",
        );
        assert_eq!(negotiate_body(&charset).unwrap(), BodyCodec::Json);
        let columnar = with_content_type(post("/v1/consensus", ""), COLUMNAR_CONTENT_TYPE);
        assert_eq!(negotiate_body(&columnar).unwrap(), BodyCodec::Columnar);
    }

    #[test]
    fn unsupported_media_types_are_refused_with_an_envelope() {
        let xml = with_content_type(post("/v1/consensus", "<x/>"), "text/xml");
        let response = negotiate_body(&xml).unwrap_err();
        assert_eq!(response.status, 415);
        assert!(
            response.body.contains("unsupported media type"),
            "{}",
            response.body
        );
        assert!(
            response.body.contains(COLUMNAR_CONTENT_TYPE),
            "{}",
            response.body
        );
        assert!(
            response.body.contains(JSON_CONTENT_TYPE),
            "{}",
            response.body
        );
    }

    #[test]
    fn accept_negotiation_refuses_json_haters_only() {
        for ok in [
            None,
            Some("*/*"),
            Some("application/*"),
            Some("application/json"),
            Some("text/html, application/json;q=0.8"),
            Some("application/x-ndjson"),
        ] {
            let mut request = post("/v1/consensus", "{}");
            if let Some(accept) = ok {
                request
                    .headers
                    .push(("accept".to_string(), accept.to_string()));
            }
            assert!(check_accept(&request).is_ok(), "{ok:?}");
        }
        let mut request = post("/v1/consensus", "{}");
        request
            .headers
            .push(("accept".to_string(), "text/html".to_string()));
        let response = check_accept(&request).unwrap_err();
        assert_eq!(response.status, 406);
        assert!(response.body.contains("produces"), "{}", response.body);
    }

    #[test]
    fn query_strings_parse_into_solve_params() {
        let pairs = query_params(Some("methods=Fair-Borda,Fair-Copeland&delta=0.2&wait=true"));
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[0].0, "methods");
        assert_eq!(pairs[0].1, "Fair-Borda,Fair-Copeland");
        assert!(query_params(None).is_empty());
        assert_eq!(
            query_params(Some("wait")),
            vec![("wait".into(), String::new())]
        );
    }
}
