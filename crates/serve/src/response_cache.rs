//! LRU response cache over `(dataset fingerprint, thresholds, method, budget)`.
//!
//! Sits *above* the engine's [`mani_engine::PrecedenceCache`]: the precedence
//! cache shares the `O(n²·|R|)` matrix between methods of one dataset, while
//! this cache memoizes entire **method outcomes** (as rendered JSON values), so
//! a replayed request is served in `O(1)` without touching the engine at all —
//! no queue slot, no worker task, no matrix build, no solve.
//!
//! Eviction is least-recently-used with a fixed entry capacity, so a server
//! replaying an unbounded stream of distinct requests holds a bounded number
//! of cached outcomes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::Value;

/// Entry capacity used when a [`ResponseCache`] is built with capacity `0`.
pub const DEFAULT_RESPONSE_CACHE_CAPACITY: usize = 1024;

/// Effectiveness counters of a [`ResponseCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseCacheStats {
    /// Maximum number of entries held at once.
    pub capacity: usize,
    /// Entries currently held.
    pub entries: usize,
    /// Lookups that found a value.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Values stored.
    pub insertions: u64,
    /// Entries evicted to respect the capacity.
    pub evictions: u64,
}

#[derive(Debug, Default)]
struct Inner {
    /// Key → (value, last-used tick). The tick implements LRU recency.
    map: HashMap<String, (Arc<Value>, u64)>,
    tick: u64,
}

/// A thread-safe LRU cache from canonical request keys to rendered outcomes.
#[derive(Debug)]
pub struct ResponseCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl ResponseCache {
    /// A cache bounded to `capacity` entries (`0` means
    /// [`DEFAULT_RESPONSE_CACHE_CAPACITY`]).
    pub fn new(capacity: usize) -> Self {
        let capacity = if capacity == 0 {
            DEFAULT_RESPONSE_CACHE_CAPACITY
        } else {
            capacity
        };
        Self {
            inner: Mutex::new(Inner::default()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks a key up, refreshing its recency on a hit.
    pub fn get(&self, key: &str) -> Option<Arc<Value>> {
        let mut inner = self.inner.lock().expect("response cache lock poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some((value, last_used)) => {
                *last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a value, evicting the least-recently-used entries when the
    /// capacity would be exceeded.
    pub fn insert(&self, key: impl Into<String>, value: Arc<Value>) {
        let mut inner = self.inner.lock().expect("response cache lock poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(key.into(), (value, tick));
        self.insertions.fetch_add(1, Ordering::Relaxed);
        while inner.map.len() > self.capacity {
            let oldest = inner
                .map
                .iter()
                .min_by_key(|(_, (_, last_used))| *last_used)
                .map(|(key, _)| key.clone())
                .expect("non-empty map over capacity");
            inner.map.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> ResponseCacheStats {
        ResponseCacheStats {
            capacity: self.capacity,
            entries: self
                .inner
                .lock()
                .expect("response cache lock poisoned")
                .map
                .len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(tag: u64) -> Arc<Value> {
        Arc::new(Value::UInt(tag))
    }

    #[test]
    fn hit_miss_and_stats() {
        let cache = ResponseCache::new(4);
        assert!(cache.get("a").is_none());
        cache.insert("a", value(1));
        let got = cache.get("a").expect("hit");
        assert_eq!(*got, Value::UInt(1));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.capacity, 4);
    }

    #[test]
    fn zero_capacity_uses_default() {
        assert_eq!(
            ResponseCache::new(0).capacity(),
            DEFAULT_RESPONSE_CACHE_CAPACITY
        );
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = ResponseCache::new(2);
        cache.insert("a", value(1));
        cache.insert("b", value(2));
        // Touch `a` so `b` is the LRU entry.
        assert!(cache.get("a").is_some());
        cache.insert("c", value(3));
        assert!(cache.get("b").is_none(), "LRU entry was evicted");
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
    }

    #[test]
    fn capacity_bounds_entries_under_churn() {
        let cache = ResponseCache::new(8);
        for i in 0..100u64 {
            cache.insert(format!("k{i}"), value(i));
            assert!(cache.stats().entries <= 8, "capacity must bound memory");
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 8);
        assert_eq!(stats.insertions, 100);
        assert_eq!(stats.evictions, 92);
        // The newest keys survived.
        assert!(cache.get("k99").is_some());
        assert!(cache.get("k0").is_none());
    }
}
