//! Minimal hand-rolled HTTP/1.1 support: request parsing and response
//! rendering over any buffered stream.
//!
//! Deliberately std-only (same spirit as the engine's hand-rolled CSV
//! front-end): exactly the subset the JSON API needs — a request line, headers,
//! an optional `Content-Length` body — with hard limits on line length, header
//! count, and body size so one connection cannot balloon memory. Connections
//! are persistent by default (HTTP/1.1 keep-alive): the server loops multiple
//! exchanges per connection, honoring `Connection:` headers, an idle timeout,
//! and a per-connection request cap before answering `Connection: close`
//! (see [`crate::server`] for the connection loop itself).
//!
//! Request smuggling is rejected at the parser: several `Content-Length`
//! headers that disagree are a hard `400` — a proxy and this server must never
//! disagree about where one request ends and the next begins.

use std::io::{BufRead, Write};
use std::time::Instant;

/// Longest accepted request line or header line, in bytes.
const MAX_LINE_BYTES: usize = 8 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 64;
/// Largest accepted request body, in bytes (datasets ride in the body).
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Upper-cased request method (`GET`, `POST`, ...).
    pub method: String,
    /// Request path with any query string stripped (e.g. `/v1/jobs/job-3`).
    pub path: String,
    /// Raw query string after `?`, if any.
    pub query: Option<String>,
    /// Header `(name, value)` pairs in arrival order; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Minor HTTP version: `0` for `HTTP/1.0`, `1` for `HTTP/1.1`.
    pub minor_version: u8,
}

impl HttpRequest {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open after this
    /// exchange: an explicit `Connection: close` wins, an explicit
    /// `Connection: keep-alive` wins for HTTP/1.0, and otherwise the
    /// HTTP/1.1 default (persistent) / HTTP/1.0 default (close) applies.
    pub fn wants_keep_alive(&self) -> bool {
        let tokens: Vec<String> = self
            .header("connection")
            .map(|v| {
                v.split(',')
                    .map(|t| t.trim().to_ascii_lowercase())
                    .collect()
            })
            .unwrap_or_default();
        if tokens.iter().any(|t| t == "close") {
            return false;
        }
        if tokens.iter().any(|t| t == "keep-alive") {
            return true;
        }
        self.minor_version >= 1
    }

    /// The body as UTF-8 text.
    pub fn body_utf8(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body).map_err(|_| HttpError::bad("request body is not UTF-8"))
    }

    /// Reads and parses one request from a buffered stream.
    pub fn read_from(stream: &mut impl BufRead) -> Result<HttpRequest, HttpError> {
        Self::read_from_duplex(stream, &mut std::io::sink())
    }

    /// Like [`HttpRequest::read_from`], but answers `Expect: 100-continue` on
    /// `interim` before consuming the body — curl sends that header for
    /// bodies over ~1 KiB and stalls ~1 s waiting for the interim response.
    pub fn read_from_duplex(
        stream: &mut impl BufRead,
        interim: &mut impl Write,
    ) -> Result<HttpRequest, HttpError> {
        Self::read_from_duplex_deadline(stream, interim, None)
    }

    /// Like [`HttpRequest::read_from_duplex`], with a hard deadline for
    /// receiving the **entire** request. A per-read socket timeout alone does
    /// not stop a slow-loris client dripping one byte per interval; the
    /// deadline is checked as bytes arrive, so such a connection is cut off
    /// with `408` no matter how steadily it trickles.
    ///
    /// A read timeout **before the first byte of the request line** returns
    /// the silent [`HttpError::closed`] marker: an idle keep-alive connection
    /// that reaches its idle timeout is dropped without a response. A timeout
    /// (or deadline expiry) after bytes arrived is a real `408`.
    pub fn read_from_duplex_deadline(
        stream: &mut impl BufRead,
        interim: &mut impl Write,
        deadline: Option<Instant>,
    ) -> Result<HttpRequest, HttpError> {
        let request_line = read_line(stream, true, deadline)?;
        if request_line.is_empty() {
            return Err(HttpError::closed());
        }
        let mut parts = request_line.split_whitespace();
        let method = parts
            .next()
            .ok_or_else(|| HttpError::bad("empty request line"))?
            .to_ascii_uppercase();
        let target = parts
            .next()
            .ok_or_else(|| HttpError::bad("request line has no path"))?;
        let version = parts
            .next()
            .ok_or_else(|| HttpError::bad("request line has no HTTP version"))?;
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::new(505, format!("unsupported {version}")));
        }
        let minor_version: u8 = version["HTTP/1.".len()..]
            .parse()
            .map_err(|_| HttpError::bad(format!("malformed HTTP version `{version}`")))?;
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), Some(q.to_string())),
            None => (target.to_string(), None),
        };

        let mut headers = Vec::new();
        loop {
            let line = read_line(stream, false, deadline)?;
            if line.is_empty() {
                break;
            }
            if headers.len() >= MAX_HEADERS {
                return Err(HttpError::bad("too many headers"));
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| HttpError::bad("malformed header line"))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }

        // This parser frames bodies by Content-Length only. A request carrying
        // Transfer-Encoding would desync the connection under keep-alive (its
        // chunked body bytes would parse as the *next* request — the other
        // request-smuggling shape), so it is refused outright (RFC 9112 §6.1).
        if headers.iter().any(|(n, _)| n == "transfer-encoding") {
            return Err(HttpError::new(
                501,
                "Transfer-Encoding is not supported; send a Content-Length body",
            ));
        }

        // Several `Content-Length` headers that agree are tolerated (RFC 9110
        // §8.6 allows folding an identical list); any disagreement is the
        // request-smuggling shape and must be a hard 400, never "first wins".
        let mut content_length: Option<usize> = None;
        for (_, value) in headers.iter().filter(|(n, _)| n == "content-length") {
            let parsed = value
                .parse::<usize>()
                .map_err(|_| HttpError::bad("invalid Content-Length"))?;
            match content_length {
                Some(previous) if previous != parsed => {
                    return Err(HttpError::bad(format!(
                        "conflicting Content-Length headers ({previous} vs {parsed})"
                    )));
                }
                _ => content_length = Some(parsed),
            }
        }
        let content_length = content_length.unwrap_or(0);
        if content_length > MAX_BODY_BYTES {
            return Err(HttpError::new(
                413,
                format!("body of {content_length} bytes exceeds the {MAX_BODY_BYTES} byte limit"),
            ));
        }
        let expects_continue = headers
            .iter()
            .any(|(n, v)| n == "expect" && v.to_ascii_lowercase().contains("100-continue"));
        if expects_continue && content_length > 0 {
            // A failed interim write means the client is gone; the body read
            // below surfaces that as the error.
            let _ = interim.write_all(b"HTTP/1.1 100 Continue\r\n\r\n");
            let _ = interim.flush();
        }
        // Chunked reads instead of one `read_exact`, so the receive deadline
        // also covers a body that trickles in.
        let mut body = vec![0u8; content_length];
        let mut filled = 0usize;
        while filled < content_length {
            if deadline_expired(deadline) {
                return Err(HttpError::new(408, "request receive deadline exceeded"));
            }
            match stream.read(&mut body[filled..]) {
                Ok(0) => return Err(HttpError::bad("body shorter than Content-Length")),
                Ok(n) => filled += n,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Err(HttpError::new(408, "timed out reading the request body"));
                }
                Err(_) => return Err(HttpError::bad("body shorter than Content-Length")),
            }
        }
        Ok(HttpRequest {
            method,
            path,
            query,
            headers,
            body,
            minor_version,
        })
    }
}

/// True when a receive deadline is set and has passed.
fn deadline_expired(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

/// Reads one CRLF- (or LF-) terminated line, enforcing [`MAX_LINE_BYTES`] and
/// the whole-request receive `deadline` (checked per arriving byte, so a
/// trickling sender cannot out-wait the per-read socket timeout).
///
/// With `idle_ok`, a read timeout before any byte arrives maps to the silent
/// [`HttpError::closed`] marker (used for the request line, so idle keep-alive
/// connections close without a bogus `408`); any later stall stays a `408`.
fn read_line(
    stream: &mut impl BufRead,
    idle_ok: bool,
    deadline: Option<Instant>,
) -> Result<String, HttpError> {
    let mut raw = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => break, // connection closed
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                raw.push(byte[0]);
                if raw.len() > MAX_LINE_BYTES {
                    return Err(HttpError::bad("header line too long"));
                }
                if deadline_expired(deadline) {
                    return Err(HttpError::new(408, "request receive deadline exceeded"));
                }
            }
            Err(e)
                if idle_ok
                    && raw.is_empty()
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                return Err(HttpError::closed());
            }
            Err(e) => return Err(HttpError::new(408, format!("read failed: {e}"))),
        }
    }
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw).map_err(|_| HttpError::bad("header line is not UTF-8"))
}

/// One HTTP response ready to serialize.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code (200, 202, 400, 404, 429, 503, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers (e.g. `Retry-After`), rendered before `Connection:`.
    pub extra_headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: String,
}

impl HttpResponse {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A plain-text response with the given status.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Adds an extra response header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.extra_headers.push((name, value.into()));
        self
    }

    /// Serializes the response with `Connection: close` (the one-shot form;
    /// the server's keep-alive loop uses [`HttpResponse::write_conn`]).
    pub fn write_to(&self, stream: &mut impl Write) -> std::io::Result<()> {
        self.write_conn(stream, false)
    }

    /// Serializes the response (status line, headers, body) onto a stream,
    /// announcing whether the connection stays open for another exchange.
    pub fn write_conn(&self, stream: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        write!(
            stream,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len()
        )?;
        for (name, value) in &self.extra_headers {
            write!(stream, "{name}: {value}\r\n")?;
        }
        write!(
            stream,
            "Connection: {}\r\n\r\n",
            if keep_alive { "keep-alive" } else { "close" }
        )?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

/// Header block of a streamed (`Transfer-Encoding: chunked`) response.
///
/// Chunked framing is used for **responses only** — chunked *requests* are
/// still refused with `501` by the parser above, because a request body
/// without a `Content-Length` would desync keep-alive framing. A chunked
/// response has no such problem: the terminating zero-length chunk marks the
/// body end explicitly, so the connection can stay open for the next
/// exchange exactly like a `Content-Length` response.
#[derive(Debug, Clone)]
pub struct ChunkedResponse {
    /// Status code (normally 200; the head is written before the body).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers, rendered before `Connection:`.
    pub extra_headers: Vec<(&'static str, String)>,
}

impl ChunkedResponse {
    /// A chunked NDJSON response head (`application/x-ndjson`).
    pub fn ndjson(status: u16) -> Self {
        Self {
            status,
            content_type: "application/x-ndjson",
            extra_headers: Vec::new(),
        }
    }

    /// Adds an extra response header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.extra_headers.push((name, value.into()));
        self
    }

    /// Writes the status line and headers, announcing chunked framing, and
    /// returns the body writer. The head is flushed immediately so clients
    /// see the response begin before the first chunk is produced.
    pub fn begin<'a, W: Write>(
        &self,
        stream: &'a mut W,
        keep_alive: bool,
    ) -> std::io::Result<ChunkedBody<'a, W>> {
        write!(
            stream,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
        )?;
        for (name, value) in &self.extra_headers {
            write!(stream, "{name}: {value}\r\n")?;
        }
        write!(
            stream,
            "Connection: {}\r\n\r\n",
            if keep_alive { "keep-alive" } else { "close" }
        )?;
        stream.flush()?;
        Ok(ChunkedBody {
            stream,
            finished: false,
        })
    }
}

/// Writer for the body of a [`ChunkedResponse`]: one `write_chunk` per
/// payload piece (flushed immediately, so NDJSON lines arrive as they are
/// produced), then [`ChunkedBody::finish`] for the terminating zero chunk.
#[derive(Debug)]
pub struct ChunkedBody<'a, W: Write> {
    stream: &'a mut W,
    finished: bool,
}

impl<W: Write> ChunkedBody<'_, W> {
    /// Writes one chunk and flushes it. Empty payloads are skipped — a
    /// zero-length chunk would terminate the body ([`ChunkedBody::finish`]
    /// does that explicitly).
    pub fn write_chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Writes the terminating zero-length chunk. Idempotent.
    pub fn finish(&mut self) -> std::io::Result<()> {
        if self.finished {
            return Ok(());
        }
        self.finished = true;
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// An HTTP-level failure carrying the status it should be reported with.
#[derive(Debug, Clone)]
pub struct HttpError {
    /// Status code to report (`0` marks a silently closed connection).
    pub status: u16,
    /// Human-readable description.
    pub message: String,
}

impl HttpError {
    /// An error with an explicit status.
    pub fn new(status: u16, message: impl Into<String>) -> Self {
        Self {
            status,
            message: message.into(),
        }
    }

    /// A `400 Bad Request` error.
    pub fn bad(message: impl Into<String>) -> Self {
        Self::new(400, message)
    }

    /// Marker for a connection that closed (or idled out) before sending a
    /// request; the server drops it without answering.
    pub fn closed() -> Self {
        Self::new(0, "connection closed before a request arrived")
    }

    /// True when the peer closed the connection without a request.
    pub fn is_closed(&self) -> bool {
        self.status == 0
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "http {}: {}", self.status, self.message)
    }
}

impl std::error::Error for HttpError {}

/// The standard reason phrase for a status code.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        406 => "Not Acceptable",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        415 => "Unsupported Media Type",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<HttpRequest, HttpError> {
        HttpRequest::read_from(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_post_with_body() {
        let request =
            parse("POST /v1/consensus HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"")
                .unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/v1/consensus");
        assert_eq!(request.header("host"), Some("x"));
        assert_eq!(request.header("HOST"), Some("x"));
        assert_eq!(request.body_utf8().unwrap(), "{\"a\"");
        assert_eq!(request.minor_version, 1);
    }

    #[test]
    fn parses_get_with_query_and_no_body() {
        let request = parse("GET /v1/jobs/job-3?verbose=1 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(request.method, "GET");
        assert_eq!(request.path, "/v1/jobs/job-3");
        assert_eq!(request.query.as_deref(), Some("verbose=1"));
        assert!(request.body.is_empty());
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse("").unwrap_err().is_closed());
        assert_eq!(parse("GET\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse("GET /x HTTP/2\r\n\r\n").unwrap_err().status, 505);
        assert_eq!(
            parse("GET /x HTTP/1.1\r\nbroken header\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            parse("POST /x HTTP/1.1\r\nContent-Length: oops\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        // Body shorter than declared.
        assert_eq!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
                .unwrap_err()
                .status,
            400
        );
        // Oversized declared body.
        let huge = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        assert_eq!(parse(&huge).unwrap_err().status, 413);
    }

    #[test]
    fn malformed_minor_versions_are_rejected() {
        assert_eq!(parse("GET /x HTTP/1.x\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse("GET /x HTTP/1.\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse("GET /x HTTP/1.1\r\n\r\n").unwrap().minor_version, 1);
    }

    #[test]
    fn transfer_encoding_is_refused() {
        // Chunked framing would desync keep-alive connections (smuggling
        // shape): refuse it outright instead of misreading the body.
        let err = parse("POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(err.status, 501);
        assert!(err.message.contains("Transfer-Encoding"), "{err}");
    }

    #[test]
    fn receive_deadline_cuts_off_trickling_requests() {
        // An already-expired deadline trips as soon as bytes arrive.
        let raw = "GET /v1/methods HTTP/1.1\r\n\r\n";
        let expired = Some(Instant::now() - std::time::Duration::from_millis(1));
        let err = HttpRequest::read_from_duplex_deadline(
            &mut BufReader::new(raw.as_bytes()),
            &mut std::io::sink(),
            expired,
        )
        .unwrap_err();
        assert_eq!(err.status, 408);
        assert!(err.message.contains("deadline"), "{err}");

        // A generous deadline lets a complete request through untouched.
        let future = Some(Instant::now() + std::time::Duration::from_secs(60));
        let request = HttpRequest::read_from_duplex_deadline(
            &mut BufReader::new(raw.as_bytes()),
            &mut std::io::sink(),
            future,
        )
        .unwrap();
        assert_eq!(request.path, "/v1/methods");
    }

    #[test]
    fn conflicting_content_lengths_are_rejected() {
        // The request-smuggling shape: two Content-Length headers disagreeing
        // about where the body ends. Must be 400, never "first header wins".
        let err = parse("POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\nokummm")
            .unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("conflicting"), "{err}");

        // Identical duplicates fold to one value (RFC 9110 §8.6).
        let request =
            parse("POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok").unwrap();
        assert_eq!(request.body_utf8().unwrap(), "ok");
    }

    #[test]
    fn keep_alive_negotiation_follows_version_and_connection_header() {
        let http11 = parse("GET /x HTTP/1.1\r\n\r\n").unwrap();
        assert!(http11.wants_keep_alive(), "HTTP/1.1 defaults persistent");

        let http11_close = parse("GET /x HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!http11_close.wants_keep_alive());

        let http10 = parse("GET /x HTTP/1.0\r\n\r\n").unwrap();
        assert_eq!(http10.minor_version, 0);
        assert!(!http10.wants_keep_alive(), "HTTP/1.0 defaults close");

        let http10_ka = parse("GET /x HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").unwrap();
        assert!(http10_ka.wants_keep_alive());

        // `close` wins over other tokens in a list.
        let mixed = parse("GET /x HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n").unwrap();
        assert!(!mixed.wants_keep_alive());
    }

    #[test]
    fn expect_100_continue_gets_an_interim_response() {
        let raw = "POST /x HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 2\r\n\r\nok";
        let mut interim = Vec::new();
        let request =
            HttpRequest::read_from_duplex(&mut BufReader::new(raw.as_bytes()), &mut interim)
                .unwrap();
        assert_eq!(request.body_utf8().unwrap(), "ok");
        assert_eq!(
            String::from_utf8(interim).unwrap(),
            "HTTP/1.1 100 Continue\r\n\r\n"
        );

        // No Expect header: nothing interim is written.
        let raw = "POST /x HTTP/1.1\r\nContent-Length: 2\r\n\r\nok";
        let mut interim = Vec::new();
        HttpRequest::read_from_duplex(&mut BufReader::new(raw.as_bytes()), &mut interim).unwrap();
        assert!(interim.is_empty());
    }

    #[test]
    fn response_serializes_with_headers() {
        let mut out = Vec::new();
        HttpResponse::json(429, "{\"error\":\"overloaded\"}")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"error\":\"overloaded\"}"));
    }

    #[test]
    fn response_keep_alive_and_extra_headers_serialize() {
        let mut out = Vec::new();
        HttpResponse::json(503, "{\"error\":\"busy\"}")
            .with_header("Retry-After", "1")
            .write_conn(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));

        let mut out = Vec::new();
        HttpResponse::json(200, "{}")
            .write_conn(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(!text.contains("Connection: close"));
    }

    #[test]
    fn chunked_response_frames_each_chunk_and_terminates() {
        let mut out = Vec::new();
        {
            let head = ChunkedResponse::ndjson(200).with_header("X-Demo", "1");
            let mut body = head.begin(&mut out, true).unwrap();
            body.write_chunk(b"{\"index\":0}\n").unwrap();
            body.write_chunk(b"").unwrap(); // skipped, must not terminate
            body.write_chunk(b"{\"summary\":true}\n").unwrap();
            body.finish().unwrap();
            body.finish().unwrap(); // idempotent
        }
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Type: application/x-ndjson\r\n"));
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(text.contains("X-Demo: 1\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(!text.contains("Content-Length"), "chunked bodies have none");
        // Chunk framing: hex size, payload, CRLF — then the zero terminator.
        assert!(text.contains("c\r\n{\"index\":0}\n\r\n"), "{text}");
        assert!(text.contains("11\r\n{\"summary\":true}\n\r\n"), "{text}");
        assert!(text.ends_with("0\r\n\r\n"), "{text}");
        let zero_chunks = text.matches("0\r\n\r\n").count();
        assert_eq!(zero_chunks, 1, "finish must be idempotent: {text}");
    }

    #[test]
    fn chunked_response_close_negotiation() {
        let mut out = Vec::new();
        {
            let mut body = ChunkedResponse::ndjson(200).begin(&mut out, false).unwrap();
            body.finish().unwrap();
        }
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: close\r\n"));
    }

    #[test]
    fn reason_phrases_cover_api_statuses() {
        for status in [200, 202, 400, 404, 405, 408, 409, 413, 429, 500, 503] {
            assert_ne!(status_reason(status), "Unknown");
        }
        assert_eq!(status_reason(999), "Unknown");
    }
}
