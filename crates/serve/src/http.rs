//! Minimal hand-rolled HTTP/1.1 support: request parsing and response
//! rendering over any buffered stream.
//!
//! Deliberately std-only (same spirit as the engine's hand-rolled CSV
//! front-end): exactly the subset the JSON API needs — a request line, headers,
//! an optional `Content-Length` body — with hard limits on line length, header
//! count, and body size so one connection cannot balloon memory. Every
//! response is `Connection: close`; one connection serves one exchange.

use std::io::{BufRead, Write};

/// Longest accepted request line or header line, in bytes.
const MAX_LINE_BYTES: usize = 8 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 64;
/// Largest accepted request body, in bytes (datasets ride in the body).
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Upper-cased request method (`GET`, `POST`, ...).
    pub method: String,
    /// Request path with any query string stripped (e.g. `/v1/jobs/job-3`).
    pub path: String,
    /// Raw query string after `?`, if any.
    pub query: Option<String>,
    /// Header `(name, value)` pairs in arrival order; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    pub fn body_utf8(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body).map_err(|_| HttpError::bad("request body is not UTF-8"))
    }

    /// Reads and parses one request from a buffered stream.
    pub fn read_from(stream: &mut impl BufRead) -> Result<HttpRequest, HttpError> {
        Self::read_from_duplex(stream, &mut std::io::sink())
    }

    /// Like [`HttpRequest::read_from`], but answers `Expect: 100-continue` on
    /// `interim` before consuming the body — curl sends that header for
    /// bodies over ~1 KiB and stalls ~1 s waiting for the interim response.
    pub fn read_from_duplex(
        stream: &mut impl BufRead,
        interim: &mut impl Write,
    ) -> Result<HttpRequest, HttpError> {
        let request_line = read_line(stream)?;
        if request_line.is_empty() {
            return Err(HttpError::closed());
        }
        let mut parts = request_line.split_whitespace();
        let method = parts
            .next()
            .ok_or_else(|| HttpError::bad("empty request line"))?
            .to_ascii_uppercase();
        let target = parts
            .next()
            .ok_or_else(|| HttpError::bad("request line has no path"))?;
        let version = parts
            .next()
            .ok_or_else(|| HttpError::bad("request line has no HTTP version"))?;
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::new(505, format!("unsupported {version}")));
        }
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), Some(q.to_string())),
            None => (target.to_string(), None),
        };

        let mut headers = Vec::new();
        loop {
            let line = read_line(stream)?;
            if line.is_empty() {
                break;
            }
            if headers.len() >= MAX_HEADERS {
                return Err(HttpError::bad("too many headers"));
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| HttpError::bad("malformed header line"))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }

        let content_length = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .map(|(_, v)| {
                v.parse::<usize>()
                    .map_err(|_| HttpError::bad("invalid Content-Length"))
            })
            .transpose()?
            .unwrap_or(0);
        if content_length > MAX_BODY_BYTES {
            return Err(HttpError::new(
                413,
                format!("body of {content_length} bytes exceeds the {MAX_BODY_BYTES} byte limit"),
            ));
        }
        let expects_continue = headers
            .iter()
            .any(|(n, v)| n == "expect" && v.to_ascii_lowercase().contains("100-continue"));
        if expects_continue && content_length > 0 {
            // A failed interim write means the client is gone; the body read
            // below surfaces that as the error.
            let _ = interim.write_all(b"HTTP/1.1 100 Continue\r\n\r\n");
            let _ = interim.flush();
        }
        let mut body = vec![0u8; content_length];
        stream
            .read_exact(&mut body)
            .map_err(|_| HttpError::bad("body shorter than Content-Length"))?;
        Ok(HttpRequest {
            method,
            path,
            query,
            headers,
            body,
        })
    }
}

/// Reads one CRLF- (or LF-) terminated line, enforcing [`MAX_LINE_BYTES`].
fn read_line(stream: &mut impl BufRead) -> Result<String, HttpError> {
    let mut raw = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => break, // connection closed
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                raw.push(byte[0]);
                if raw.len() > MAX_LINE_BYTES {
                    return Err(HttpError::bad("header line too long"));
                }
            }
            Err(e) => return Err(HttpError::new(408, format!("read failed: {e}"))),
        }
    }
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw).map_err(|_| HttpError::bad("header line is not UTF-8"))
}

/// One HTTP response ready to serialize.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code (200, 202, 400, 404, 429, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl HttpResponse {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// A plain-text response with the given status.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    /// Serializes the response (status line, headers, body) onto a stream.
    pub fn write_to(&self, stream: &mut impl Write) -> std::io::Result<()> {
        write!(
            stream,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len()
        )?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

/// An HTTP-level failure carrying the status it should be reported with.
#[derive(Debug, Clone)]
pub struct HttpError {
    /// Status code to report (`0` marks a silently closed connection).
    pub status: u16,
    /// Human-readable description.
    pub message: String,
}

impl HttpError {
    /// An error with an explicit status.
    pub fn new(status: u16, message: impl Into<String>) -> Self {
        Self {
            status,
            message: message.into(),
        }
    }

    /// A `400 Bad Request` error.
    pub fn bad(message: impl Into<String>) -> Self {
        Self::new(400, message)
    }

    /// Marker for a connection that closed before sending a request; the
    /// server drops it without answering.
    pub fn closed() -> Self {
        Self::new(0, "connection closed before a request arrived")
    }

    /// True when the peer closed the connection without a request.
    pub fn is_closed(&self) -> bool {
        self.status == 0
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "http {}: {}", self.status, self.message)
    }
}

impl std::error::Error for HttpError {}

/// The standard reason phrase for a status code.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<HttpRequest, HttpError> {
        HttpRequest::read_from(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_post_with_body() {
        let request =
            parse("POST /v1/consensus HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"")
                .unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/v1/consensus");
        assert_eq!(request.header("host"), Some("x"));
        assert_eq!(request.header("HOST"), Some("x"));
        assert_eq!(request.body_utf8().unwrap(), "{\"a\"");
    }

    #[test]
    fn parses_get_with_query_and_no_body() {
        let request = parse("GET /v1/jobs/job-3?verbose=1 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(request.method, "GET");
        assert_eq!(request.path, "/v1/jobs/job-3");
        assert_eq!(request.query.as_deref(), Some("verbose=1"));
        assert!(request.body.is_empty());
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse("").unwrap_err().is_closed());
        assert_eq!(parse("GET\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse("GET /x HTTP/2\r\n\r\n").unwrap_err().status, 505);
        assert_eq!(
            parse("GET /x HTTP/1.1\r\nbroken header\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            parse("POST /x HTTP/1.1\r\nContent-Length: oops\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        // Body shorter than declared.
        assert_eq!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
                .unwrap_err()
                .status,
            400
        );
        // Oversized declared body.
        let huge = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        assert_eq!(parse(&huge).unwrap_err().status, 413);
    }

    #[test]
    fn expect_100_continue_gets_an_interim_response() {
        let raw = "POST /x HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 2\r\n\r\nok";
        let mut interim = Vec::new();
        let request =
            HttpRequest::read_from_duplex(&mut BufReader::new(raw.as_bytes()), &mut interim)
                .unwrap();
        assert_eq!(request.body_utf8().unwrap(), "ok");
        assert_eq!(
            String::from_utf8(interim).unwrap(),
            "HTTP/1.1 100 Continue\r\n\r\n"
        );

        // No Expect header: nothing interim is written.
        let raw = "POST /x HTTP/1.1\r\nContent-Length: 2\r\n\r\nok";
        let mut interim = Vec::new();
        HttpRequest::read_from_duplex(&mut BufReader::new(raw.as_bytes()), &mut interim).unwrap();
        assert!(interim.is_empty());
    }

    #[test]
    fn response_serializes_with_headers() {
        let mut out = Vec::new();
        HttpResponse::json(429, "{\"error\":\"overloaded\"}")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"error\":\"overloaded\"}"));
    }

    #[test]
    fn reason_phrases_cover_api_statuses() {
        for status in [200, 202, 400, 404, 405, 413, 429, 500] {
            assert_ne!(status_reason(status), "Unknown");
        }
        assert_eq!(status_reason(999), "Unknown");
    }
}
