//! `mani` — command-line front-end for the MANI-Rank batch consensus engine.
//!
//! ```text
//! mani consensus --dataset name=cands.csv:ranks.csv [--dataset ...] \
//!                [--methods Fair-Borda,Fair-Copeland] [--delta 0.1] \
//!                [--threads N] [--budget NODES] [--audit]
//! mani audit     --candidates cands.csv --rankings ranks.csv [--per-ranking]
//! mani session   --candidates cands.csv --rankings ranks.csv \
//!                --append "a,b,c" [--retract "c,b,a"] ...
//! mani dataset patch --candidates cands.csv --rankings ranks.csv \
//!                --append "a,b,c@2" [--out-rankings edited.csv]
//! mani serve     [--addr 127.0.0.1:8080] [--threads N] [--queue-depth N] \
//!                [--cache-capacity N] [--budget NODES]
//! mani sample    --dir DIR [--candidates N] [--rankings M] [--theta T] [--seed S]
//! mani methods
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use mani_core::{MethodKind, MfcrContext};
use mani_datagen::{binary_population, FairnessTarget, MallowsModel, ModalRankingBuilder};
use mani_engine::{
    attribute_labels, audit_table, csvio, response_table, EngineConfig, EngineDataset, EngineError,
};
use mani_fairness::{FairnessAudit, FairnessThresholds};
use mani_ranking::GroupIndex;
use mani_serve::{Server, ServerConfig};
use mani_service::{
    dataset_to_value, obj, render, s, ConsensusSpec, RequestContext, Service, StreamSink,
};
use serde::Value;

const USAGE: &str = "\
mani — MANI-Rank batch consensus engine

USAGE:
    mani consensus --dataset NAME=CANDIDATES.csv:RANKINGS.csv ...  run a consensus batch
    mani audit     --candidates FILE --rankings FILE               audit base rankings
    mani session   --candidates FILE --rankings FILE --append ...  what-if session: one
                                                                   NDJSON consensus line
                                                                   per edit, delta-derived
    mani dataset patch --candidates FILE --rankings FILE ...       apply ranking edits and
                                                                   print the new version
    mani serve     [--addr HOST:PORT]                              start the HTTP API server
    mani sample    --dir DIR                                       write a demo dataset
    mani methods                                                   list available methods

CONSENSUS OPTIONS:
    --dataset NAME=CANDS:RANKS   dataset to solve (repeatable; ':' separates the two files)
    --candidates FILE            with --rankings: shorthand for a single dataset
    --rankings FILE
    --methods A,B,C              methods to run (default: the four proposed MFCR methods)
    --delta D                    uniform fairness threshold (default 0.1)
    --threads N                  worker threads (default: one per core)
    --kernel-threads N           threads within one solve for large datasets
                                 (default 1 = serial; 0 = one per core)
    --kernel-tile-size N         Floyd-Warshall tile size for blocked Schulze
                                 (default 0 = auto; results are identical for
                                 every tile size)
    --budget NODES               branch-and-bound node budget for exact methods
    --audit                      also print a per-group fairness audit per method
    --stream                     print each dataset's results the moment its
                                 solve completes (as-completed order) instead
                                 of waiting for the whole batch

AUDIT OPTIONS:
    --per-ranking                audit every base ranking, not just the profile consensus

SESSION / DATASET PATCH OPTIONS:
    --candidates FILE            candidate CSV of the base dataset
    --rankings FILE              ranking CSV of the base dataset
    --append \"a,b,c[@W]\"         append a full ranking (comma-separated candidate
                                 names, optional @W weight); repeatable — edits
                                 apply in the order the flags appear
    --retract \"a,b,c[@W]\"        retract W copies of a ranking the profile holds
    --methods A,B,C              session only: methods to re-solve per edit
                                 (default: the four proposed MFCR methods)
    --delta D                    session only: uniform fairness threshold (default 0.1)
    --budget NODES               session only: branch-and-bound node budget
    --out-rankings FILE          dataset patch only: write the edited profile as CSV

SERVE OPTIONS (see docs/API.md for the JSON wire format):
    --addr HOST:PORT             listen address (default 127.0.0.1:8080; port 0 picks a free port)
    --threads N                  engine worker threads (default: one per core)
    --kernel-threads N           threads within one solve for large datasets
                                 (default 1 = serial; 0 = one per core)
    --kernel-tile-size N         Floyd-Warshall tile size for blocked Schulze
                                 (default 0 = auto)
    --queue-depth N              max in-flight async jobs before 429 (default 256)
    --cache-capacity N           response-cache entries (default 1024)
    --budget NODES               default branch-and-bound budget for exact methods
    --max-connections N          connections in flight before the accept path
                                 answers 503 (default 256)
    --conn-threads N             connection worker threads (default: min(8, cores))
    --idle-timeout-ms MS         keep-alive idle timeout (default 5000)
    --max-requests-per-conn N    exchanges per connection before Connection: close
                                 (default 128)
    --log-level LEVEL            structured-log verbosity to stderr: off, error,
                                 warn, info, debug, trace (default: MANI_LOG
                                 env var, else info; debug adds access lines)

SAMPLE OPTIONS:
    --dir DIR                    output directory (created if missing)
    --candidates N               population size (default 20)
    --rankings M                 number of base rankings (default 12)
    --theta T                    Mallows dispersion (default 0.8)
    --seed S                     RNG seed (default 42)
";

/// Prints to stdout, exiting quietly when the reader went away (e.g. piping
/// into `head` closes the pipe early; that is not an error).
fn emit(text: impl std::fmt::Display) {
    use std::io::Write;
    if writeln!(std::io::stdout(), "{text}").is_err() {
        std::process::exit(0);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "consensus" => cmd_consensus(&args[1..]),
        "audit" => cmd_audit(&args[1..]),
        "session" => cmd_session(&args[1..]),
        "dataset" => cmd_dataset(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "sample" => cmd_sample(&args[1..]),
        "methods" => cmd_methods(),
        "help" | "--help" | "-h" => {
            emit(USAGE.trim_end());
            Ok(())
        }
        other => Err(EngineError::invalid(format!(
            "unknown command `{other}` (try `mani help`)"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            mani_obs::error!("mani", "command failed", error = e);
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------------
// Argument parsing helpers (hand-rolled; the engine has no CLI dependencies)
// ---------------------------------------------------------------------------

struct Flags {
    values: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Flags {
    fn parse(
        args: &[String],
        value_flags: &[&str],
        switch_flags: &[&str],
    ) -> Result<Self, EngineError> {
        let mut values = Vec::new();
        let mut switches = Vec::new();
        let mut iter = args.iter().peekable();
        while let Some(arg) = iter.next() {
            let name = arg
                .strip_prefix("--")
                .ok_or_else(|| EngineError::invalid(format!("unexpected argument `{arg}`")))?;
            if switch_flags.contains(&name) {
                switches.push(name.to_string());
            } else if value_flags.contains(&name) {
                let value = iter
                    .next()
                    .ok_or_else(|| EngineError::invalid(format!("--{name} needs a value")))?;
                values.push((name.to_string(), value.clone()));
            } else {
                return Err(EngineError::invalid(format!("unknown flag `--{name}`")));
            }
        }
        Ok(Self { values, switches })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn get_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> {
        self.values
            .iter()
            .filter(move |(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, EngineError> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| EngineError::invalid(format!("cannot parse --{name} value `{raw}`"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Commands
// ---------------------------------------------------------------------------

fn cmd_consensus(args: &[String]) -> Result<(), EngineError> {
    let flags = Flags::parse(
        args,
        &[
            "dataset",
            "candidates",
            "rankings",
            "methods",
            "delta",
            "threads",
            "kernel-threads",
            "kernel-tile-size",
            "budget",
        ],
        &["audit", "stream"],
    )?;

    // Collect datasets from --dataset specs and/or the --candidates/--rankings pair.
    let mut datasets: Vec<Arc<EngineDataset>> = Vec::new();
    for spec in flags.get_all("dataset") {
        datasets.push(Arc::new(load_dataset_spec(spec)?));
    }
    match (flags.get("candidates"), flags.get("rankings")) {
        (Some(cands), Some(ranks)) => {
            let db = csvio::load_candidates(Path::new(cands))?;
            let profile = csvio::load_rankings(Path::new(ranks), &db)?;
            let name = Path::new(cands)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "dataset".into());
            datasets.push(Arc::new(EngineDataset::new(name, db, profile)?));
        }
        (None, None) => {}
        _ => {
            return Err(EngineError::invalid(
                "--candidates and --rankings must be given together",
            ))
        }
    }
    if datasets.is_empty() {
        return Err(EngineError::invalid(
            "no datasets: pass --dataset NAME=CANDS:RANKS or --candidates/--rankings",
        ));
    }

    let methods = parse_methods(flags.get("methods"))?;
    let delta: f64 = flags.get_parsed("delta", 0.1)?;
    let threads: usize = flags.get_parsed("threads", 0)?;
    let kernel_threads: usize = flags.get_parsed("kernel-threads", 1)?;
    let kernel_tile_size: usize = flags.get_parsed("kernel-tile-size", 0)?;
    let budget: Option<u64> =
        match flags.get("budget") {
            Some(raw) => Some(raw.parse().map_err(|_| {
                EngineError::invalid(format!("cannot parse --budget value `{raw}`"))
            })?),
            None => None,
        };

    // Local solves ride the same transport-agnostic service core the HTTP
    // front-end uses — one submission path, one cache stack, one stats story.
    let service = Service::new(
        EngineConfig {
            threads,
            default_budget: budget,
            kernel_threads,
            kernel_tile_size,
            // Both CLI paths ride the async submission queue; size it to the
            // batch so a many-dataset run is never rejected for a capacity
            // bound meant for network backpressure.
            queue_depth: datasets.len(),
            ..EngineConfig::default()
        },
        0,
    );
    let specs: Vec<ConsensusSpec> = datasets
        .iter()
        .map(|ds| ConsensusSpec {
            dataset: Arc::clone(ds),
            methods: methods.clone(),
            thresholds: FairnessThresholds::uniform(delta),
            budget,
        })
        .collect();

    // Prints one dataset's response (and optional audits); returns its
    // failure count. Shared by the blocking and streaming paths.
    let print_response =
        |dataset: &EngineDataset, response: &mani_engine::ConsensusResponse| -> usize {
            emit(response_table(response, &attribute_labels(dataset.db())).render());
            if flags.has("audit") {
                let groups = GroupIndex::new(dataset.db());
                for result in response.successes() {
                    let audit = FairnessAudit::new(
                        result.outcome.method,
                        &result.outcome.ranking,
                        dataset.db(),
                        &groups,
                    );
                    emit(audit_table(&audit).render());
                }
            }
            response.results.iter().filter(|r| r.is_err()).count()
        };

    let started = std::time::Instant::now();
    let mut failures = 0usize;
    let mut method_runs = 0usize;
    if flags.has("stream") {
        // Streaming batch mode: each dataset's table prints the moment its
        // solve completes, in as-completed order — fast datasets are not
        // held hostage by the slowest exact solve in the batch.
        let mut batch = service
            .submit_streaming(&specs)
            .map_err(|e| EngineError::invalid(e.message))?;
        let total = batch.len();
        let mut done = 0usize;
        while let Some(item) = batch.wait_next() {
            done += 1;
            let dataset = &datasets[item.index];
            emit(format!(
                "[{done}/{total}] {} ({}, {:.1} ms solve)",
                dataset.name(),
                item.id,
                item.response.total_solve_time.as_secs_f64() * 1e3,
            ));
            method_runs += item.response.results.len();
            failures += print_response(dataset, &item.response);
        }
    } else {
        let handles = service
            .submit(&specs)
            .map_err(|e| EngineError::invalid(e.message))?;
        for (dataset, handle) in datasets.iter().zip(&handles) {
            let response = handle.wait();
            method_runs += response.results.len();
            failures += print_response(dataset, &response);
        }
    }
    let wall = started.elapsed();
    let engine = service.engine();
    let stats = engine.cache().stats();
    emit(format!("batch: {} dataset(s), {} method run(s), {} matrix build(s), {} cache hit(s), {:.1} ms wall on {} thread(s)",
        datasets.len(),
        method_runs,
        stats.builds,
        stats.hits,
        wall.as_secs_f64() * 1e3,
        engine.threads(),
    ));
    if failures > 0 {
        return Err(EngineError::invalid(format!(
            "{failures} method run(s) failed"
        )));
    }
    Ok(())
}

fn cmd_audit(args: &[String]) -> Result<(), EngineError> {
    let flags = Flags::parse(args, &["candidates", "rankings"], &["per-ranking"])?;
    let cands = flags
        .get("candidates")
        .ok_or_else(|| EngineError::invalid("--candidates is required"))?;
    let ranks = flags
        .get("rankings")
        .ok_or_else(|| EngineError::invalid("--rankings is required"))?;
    let db = csvio::load_candidates(Path::new(cands))?;
    let profile = csvio::load_rankings(Path::new(ranks), &db)?;
    let groups = GroupIndex::new(&db);

    if flags.has("per-ranking") {
        for (index, ranking) in profile.rankings().iter().enumerate() {
            let audit = FairnessAudit::new(format!("ranking-{index}"), ranking, &db, &groups);
            emit(audit_table(&audit).render());
        }
    }

    // Always audit the unconstrained pairwise consensus as the headline view.
    let ctx = MfcrContext::new(&db, &groups, &profile, FairnessThresholds::uniform(0.1));
    let outcome = MethodKind::FairCopeland
        .instantiate()
        .solve(&ctx)
        .map_err(EngineError::from)?;
    let consensus_audit = FairnessAudit::new("Fair-Copeland", &outcome.ranking, &db, &groups);
    emit(audit_table(&consensus_audit).render());
    let unfair = mani_aggregation::CopelandAggregator::new().consensus(&profile);
    let unfair_audit = FairnessAudit::new("Copeland (unconstrained)", &unfair, &db, &groups);
    emit(audit_table(&unfair_audit).render());
    Ok(())
}

/// Sink that prints each NDJSON line to stdout the moment it is emitted.
struct StdoutSink;

impl StreamSink for StdoutSink {
    type Error = std::convert::Infallible;

    fn emit_line(&mut self, line: &str) -> Result<(), Self::Error> {
        emit(line.trim_end_matches('\n'));
        Ok(())
    }
}

/// Loads the `--candidates`/`--rankings` pair as one engine dataset.
fn load_pair(flags: &Flags) -> Result<EngineDataset, EngineError> {
    let cands = flags
        .get("candidates")
        .ok_or_else(|| EngineError::invalid("--candidates is required"))?;
    let ranks = flags
        .get("rankings")
        .ok_or_else(|| EngineError::invalid("--rankings is required"))?;
    let db = csvio::load_candidates(Path::new(cands))?;
    let profile = csvio::load_rankings(Path::new(ranks), &db)?;
    let name = Path::new(cands)
        .file_stem()
        .map(|stem| stem.to_string_lossy().into_owned())
        .unwrap_or_else(|| "dataset".into());
    EngineDataset::new(name, db, profile)
}

/// Collects `--append`/`--retract` flags, in the order they appeared, as
/// edit-op objects: `NAMES[@WEIGHT]` where `NAMES` is the full candidate
/// list, comma-separated.
fn parse_edit_flags(flags: &Flags) -> Result<Vec<Value>, EngineError> {
    let mut ops = Vec::new();
    for (name, raw) in &flags.values {
        if name != "append" && name != "retract" {
            continue;
        }
        let (list, weight) = match raw.split_once('@') {
            Some((list, w)) => {
                let weight: u64 = w.parse().map_err(|_| {
                    EngineError::invalid(format!("cannot parse weight in --{name} `{raw}`"))
                })?;
                (list, weight)
            }
            None => (raw.as_str(), 1),
        };
        let ranking: Vec<Value> = list
            .split(',')
            .map(str::trim)
            .filter(|n| !n.is_empty())
            .map(s)
            .collect();
        if ranking.is_empty() {
            return Err(EngineError::invalid(format!(
                "--{name} needs a comma-separated candidate list, got `{raw}`"
            )));
        }
        ops.push(obj(vec![
            ("op", s(name.as_str())),
            ("ranking", Value::Array(ranking)),
            ("weight", Value::UInt(weight)),
        ]));
    }
    if ops.is_empty() {
        return Err(EngineError::invalid(
            "no edits: pass --append and/or --retract flags",
        ));
    }
    Ok(ops)
}

fn cmd_session(args: &[String]) -> Result<(), EngineError> {
    let flags = Flags::parse(
        args,
        &[
            "candidates",
            "rankings",
            "append",
            "retract",
            "methods",
            "delta",
            "threads",
            "kernel-threads",
            "budget",
        ],
        &[],
    )?;
    let dataset = load_pair(&flags)?;
    let ops = parse_edit_flags(&flags)?;
    let methods = parse_methods(flags.get("methods"))?;
    let delta: f64 = flags.get_parsed("delta", 0.1)?;
    let threads: usize = flags.get_parsed("threads", 0)?;
    let kernel_threads: usize = flags.get_parsed("kernel-threads", 1)?;
    let budget: Option<u64> =
        match flags.get("budget") {
            Some(raw) => Some(raw.parse().map_err(|_| {
                EngineError::invalid(format!("cannot parse --budget value `{raw}`"))
            })?),
            None => None,
        };

    let service = Service::new(
        EngineConfig {
            threads,
            default_budget: budget,
            kernel_threads,
            ..EngineConfig::default()
        },
        0,
    );
    // One edit per flag: the session streams one consensus line per op.
    let mut body = obj(vec![
        ("dataset", dataset_to_value(&dataset)),
        (
            "methods",
            Value::Array(methods.iter().map(|m| s(m.name())).collect()),
        ),
        ("delta", Value::Float(delta)),
        ("edits", Value::Array(ops)),
    ]);
    if let Some(nodes) = budget {
        if let Value::Object(entries) = &mut body {
            entries.push(("budget".to_string(), Value::UInt(nodes)));
        }
    }
    let ctx = RequestContext::new(None);
    let session = service
        .session(&body, &ctx)
        .map_err(|e| EngineError::invalid(e.message))?;
    match service.stream_session(session, &mut StdoutSink) {
        Ok(()) => Ok(()),
        Err(never) => match never {},
    }
}

fn cmd_dataset(args: &[String]) -> Result<(), EngineError> {
    match args.first().map(String::as_str) {
        Some("patch") => cmd_dataset_patch(&args[1..]),
        Some(other) => Err(EngineError::invalid(format!(
            "unknown dataset subcommand `{other}` (try `mani dataset patch`)"
        ))),
        None => Err(EngineError::invalid(
            "dataset needs a subcommand (try `mani dataset patch`)",
        )),
    }
}

fn cmd_dataset_patch(args: &[String]) -> Result<(), EngineError> {
    let flags = Flags::parse(
        args,
        &[
            "candidates",
            "rankings",
            "append",
            "retract",
            "out-rankings",
        ],
        &[],
    )?;
    let dataset = load_pair(&flags)?;
    let ops = parse_edit_flags(&flags)?;

    let service = Service::new(
        EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        },
        0,
    );
    let registered = service
        .register_dataset(Arc::new(dataset))
        .map_err(|e| EngineError::invalid(e.message))?;
    let id = registered
        .get("id")
        .and_then(Value::as_str)
        .ok_or_else(|| EngineError::invalid("registration returned no id"))?
        .to_string();
    let body = obj(vec![("ops", Value::Array(ops))]);
    let patched = service
        .dataset_patch(&id, &body)
        .map_err(|e| EngineError::invalid(e.message))?;
    emit(render(&patched));
    if let Some(out) = flags.get("out-rankings") {
        let current = service
            .datasets()
            .resolve_current(&id)
            .map_err(|e| EngineError::invalid(e.message))?;
        csvio::save_rankings(
            current.dataset.profile(),
            current.dataset.db(),
            Path::new(out),
        )?;
        emit(format!(
            "wrote {} rankings to {out}",
            current.dataset.num_rankings()
        ));
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), EngineError> {
    let flags = Flags::parse(
        args,
        &[
            "addr",
            "threads",
            "kernel-threads",
            "kernel-tile-size",
            "queue-depth",
            "cache-capacity",
            "budget",
            "max-connections",
            "conn-threads",
            "idle-timeout-ms",
            "max-requests-per-conn",
            "log-level",
        ],
        &[],
    )?;
    if let Some(raw) = flags.get("log-level") {
        let level = mani_obs::Level::parse(raw).ok_or_else(|| {
            EngineError::invalid(format!(
                "cannot parse --log-level value `{raw}` (expected off, error, warn, info, debug, or trace)"
            ))
        })?;
        mani_obs::set_level(level);
    }
    let addr = flags.get("addr").unwrap_or("127.0.0.1:8080").to_string();
    let threads: usize = flags.get_parsed("threads", 0)?;
    let kernel_threads: usize = flags.get_parsed("kernel-threads", 1)?;
    let kernel_tile_size: usize = flags.get_parsed("kernel-tile-size", 0)?;
    let queue_depth: usize = flags.get_parsed("queue-depth", 0)?;
    let cache_capacity: usize = flags.get_parsed("cache-capacity", 0)?;
    let max_connections: usize = flags.get_parsed("max-connections", 0)?;
    let conn_threads: usize = flags.get_parsed("conn-threads", 0)?;
    let idle_timeout_ms: u64 = flags.get_parsed("idle-timeout-ms", 0)?;
    let max_requests_per_conn: usize = flags.get_parsed("max-requests-per-conn", 0)?;
    let budget: Option<u64> =
        match flags.get("budget") {
            Some(raw) => Some(raw.parse().map_err(|_| {
                EngineError::invalid(format!("cannot parse --budget value `{raw}`"))
            })?),
            None => None,
        };

    let server = Server::bind(
        &addr,
        ServerConfig {
            engine: EngineConfig {
                threads,
                default_budget: budget,
                queue_depth,
                kernel_threads,
                kernel_tile_size,
                ..EngineConfig::default()
            },
            cache_capacity,
            max_connections,
            conn_threads,
            idle_timeout: std::time::Duration::from_millis(idle_timeout_ms),
            max_requests_per_conn,
            ..ServerConfig::default()
        },
    )?;
    let local = server.local_addr()?;
    let engine = server.state().engine();
    emit(format!(
        "mani-serve listening on http://{local} — {} engine worker(s), queue depth {}, response cache {} entries, {} connection worker(s), {} connections max (keep-alive on)",
        engine.threads(),
        engine.queue_depth(),
        server.state().response_cache().capacity(),
        server.conn_threads(),
        server.max_connections(),
    ));
    emit("endpoints: POST /v1/consensus  POST /v1/audit  POST /v1/sessions  POST /v1/datasets  GET|PATCH|DELETE /v1/datasets/{id}  GET /v1/jobs/{id}  GET /v1/jobs/{id}/trace  GET /v1/methods  GET /v1/stats  GET /v1/version  GET /metrics");
    server.run().map_err(EngineError::from)
}

fn cmd_sample(args: &[String]) -> Result<(), EngineError> {
    let flags = Flags::parse(
        args,
        &["dir", "candidates", "rankings", "theta", "seed"],
        &[],
    )?;
    let dir = PathBuf::from(
        flags
            .get("dir")
            .ok_or_else(|| EngineError::invalid("--dir is required"))?,
    );
    let n: usize = flags.get_parsed("candidates", 20)?;
    let m: usize = flags.get_parsed("rankings", 12)?;
    let theta: f64 = flags.get_parsed("theta", 0.8)?;
    let seed: u64 = flags.get_parsed("seed", 42)?;

    let db = binary_population(n.max(4), 0.5, 0.5, seed);
    let modal = ModalRankingBuilder::new(&db).build(&FairnessTarget::low_fair(2));
    let profile = MallowsModel::new(modal, theta).sample_profile(m.max(1), seed ^ 0xC0FFEE);

    std::fs::create_dir_all(&dir)?;
    let cands_path = dir.join("candidates.csv");
    let ranks_path = dir.join("rankings.csv");
    csvio::save_candidates(&db, &cands_path)?;
    csvio::save_rankings(&profile, &db, &ranks_path)?;
    emit(format!(
        "wrote {} candidates to {} and {} rankings to {}",
        db.len(),
        cands_path.display(),
        profile.len(),
        ranks_path.display(),
    ));
    emit(format!(
        "try: mani consensus --candidates {} --rankings {} --delta 0.1",
        cands_path.display(),
        ranks_path.display(),
    ));
    Ok(())
}

fn cmd_methods() -> Result<(), EngineError> {
    emit("available methods (pass to --methods, comma-separated):");
    for kind in MethodKind::all() {
        emit(format!("  {:<22} {}", kind.name(), kind.paper_label()));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

fn load_dataset_spec(spec: &str) -> Result<EngineDataset, EngineError> {
    let (name, files) = spec.split_once('=').ok_or_else(|| {
        EngineError::invalid(format!(
            "--dataset expects NAME=CANDIDATES.csv:RANKINGS.csv, got `{spec}`"
        ))
    })?;
    let (cands, ranks) = files.split_once(':').ok_or_else(|| {
        EngineError::invalid(format!(
            "--dataset expects NAME=CANDIDATES.csv:RANKINGS.csv, got `{spec}`"
        ))
    })?;
    let db = csvio::load_candidates(Path::new(cands))?;
    let profile = csvio::load_rankings(Path::new(ranks), &db)?;
    EngineDataset::new(name, db, profile)
}

fn parse_methods(raw: Option<&str>) -> Result<Vec<MethodKind>, EngineError> {
    match raw {
        None => Ok(MethodKind::proposed().to_vec()),
        Some(list) => list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|name| {
                MethodKind::parse(name).ok_or_else(|| {
                    EngineError::invalid(format!("unknown method `{name}` (see `mani methods`)"))
                })
            })
            .collect(),
    }
}
