//! JSON body codec: parses API payloads into engine types and renders engine
//! results back out, all over the workspace's serde shim [`Value`] data model.
//!
//! A consensus payload looks like:
//!
//! ```json
//! {
//!   "dataset": {
//!     "name": "committee",
//!     "candidates": [
//!       {"name": "alice", "attributes": {"Gender": "Woman", "Race": "GroupA"}},
//!       {"name": "bola",  "attributes": {"Gender": "Man",   "Race": "GroupB"}}
//!     ],
//!     "rankings": [["alice", "bola"], ["bola", "alice"]],
//!     "domains": {"Gender": ["Man", "Woman"]}
//!   },
//!   "methods": ["Fair-Borda", "Fair-Copeland"],
//!   "delta": 0.1,
//!   "attribute_deltas": {"Gender": 0.05},
//!   "intersection_delta": 0.2,
//!   "budget": 100000
//! }
//! ```
//!
//! Attribute value domains are inferred in first-appearance order across the
//! candidate list (like the CSV front-end); the optional `domains` object pins
//! an explicit order so group ids stay stable across clients.

use std::sync::Arc;

use mani_core::MethodKind;
use mani_engine::{ConsensusRequest, EngineDataset, MethodResult};
use mani_fairness::FairnessThresholds;
use mani_ranking::{CandidateDb, CandidateDbBuilder, Ranking, RankingProfile};
use serde::{Serialize, Value};

use crate::datasets::DatasetRegistry;
use crate::http::HttpError;

/// One fully parsed consensus request spec, ready to submit or cache-key.
#[derive(Debug, Clone)]
pub struct ConsensusSpec {
    /// The parsed dataset.
    pub dataset: Arc<EngineDataset>,
    /// Methods to run, in response order.
    pub methods: Vec<MethodKind>,
    /// Fairness thresholds Δ.
    pub thresholds: FairnessThresholds,
    /// Optional exact-solver node budget.
    pub budget: Option<u64>,
}

impl ConsensusSpec {
    /// The engine request this spec describes.
    pub fn request(&self) -> ConsensusRequest {
        let mut request = ConsensusRequest::new(
            Arc::clone(&self.dataset),
            self.methods.iter().copied(),
            self.thresholds.clone(),
        );
        if let Some(budget) = self.budget {
            request = request.with_budget(budget);
        }
        request
    }

    /// Canonical response-cache key for one method of this spec: dataset
    /// content fingerprint + serialized thresholds + method + budget. Two
    /// requests with identical content collide on purpose, whatever their
    /// dataset display names.
    pub fn cache_key(&self, method: MethodKind) -> String {
        let thresholds = serde_json::to_string(&self.thresholds)
            .expect("shim serialization of thresholds cannot fail");
        format!(
            "{:016x}|{}|{}|{:?}",
            self.dataset.fingerprint(),
            thresholds,
            method.name(),
            self.budget
        )
    }
}

/// Parses a request body into a JSON [`Value`].
pub fn parse_body(text: &str) -> Result<Value, HttpError> {
    serde_json::from_str(text).map_err(|e| HttpError::bad(format!("invalid JSON body: {e}")))
}

/// Renders a JSON [`Value`] to compact text.
pub fn render(value: &Value) -> String {
    serde_json::to_string(value).expect("shim serialization of a Value cannot fail")
}

/// Builds a JSON object from `(key, value)` pairs.
pub fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// A JSON string value.
pub fn s(text: impl Into<String>) -> Value {
    Value::String(text.into())
}

/// The standard error body `{"error": ...}`.
pub fn error_body(message: &str) -> String {
    render(&obj(vec![("error", s(message))]))
}

/// Appends one `(key, value)` entry to a JSON object value.
pub fn with_entry(value: Value, key: &str, entry: Value) -> Value {
    match value {
        Value::Object(mut entries) => {
            entries.push((key.to_string(), entry));
            Value::Object(entries)
        }
        other => obj(vec![("value", other), (key, entry)]),
    }
}

/// Resolves the dataset of a request body: inline under `dataset`, or by
/// registry id under `dataset_id` (uploaded via `POST /v1/datasets`).
pub fn resolve_spec_dataset(
    value: &Value,
    registry: Option<&DatasetRegistry>,
) -> Result<Arc<EngineDataset>, HttpError> {
    match (value.get("dataset"), value.get("dataset_id")) {
        (Some(_), Some(_)) => Err(HttpError::bad(
            "pass either `dataset` or `dataset_id`, not both",
        )),
        (Some(inline), None) => parse_dataset(inline),
        (None, Some(raw)) => {
            let id = raw
                .as_str()
                .ok_or_else(|| HttpError::bad("`dataset_id` must be a string"))?;
            let registry = registry
                .ok_or_else(|| HttpError::bad("`dataset_id` is not supported in this context"))?;
            registry.resolve(id)
        }
        (None, None) => Err(HttpError::bad("missing `dataset` (or `dataset_id`)")),
    }
}

/// Parses one consensus spec (`dataset` or `dataset_id`, plus `methods`,
/// thresholds, and `budget`). `registry` resolves `dataset_id` references.
pub fn parse_consensus_spec(
    value: &Value,
    registry: Option<&DatasetRegistry>,
) -> Result<ConsensusSpec, HttpError> {
    let dataset = resolve_spec_dataset(value, registry)?;
    let methods = parse_methods(value.get("methods"))?;
    let thresholds = parse_thresholds(value, dataset.db())?;
    let budget = match value.get("budget") {
        None | Some(Value::Null) => None,
        Some(raw) => Some(
            u64::deserialize_shim(raw)
                .map_err(|_| HttpError::bad("`budget` must be an integer"))?,
        ),
    };
    Ok(ConsensusSpec {
        dataset,
        methods,
        thresholds,
        budget,
    })
}

/// Small extension so integers parse uniformly off the shim data model.
trait DeserializeShim: Sized {
    fn deserialize_shim(value: &Value) -> Result<Self, ()>;
}

impl DeserializeShim for u64 {
    fn deserialize_shim(value: &Value) -> Result<Self, ()> {
        match value {
            Value::UInt(u) => Ok(*u),
            Value::Int(i) if *i >= 0 => Ok(*i as u64),
            _ => Err(()),
        }
    }
}

/// Reads an `f64` field off a JSON value.
pub(crate) fn as_f64(value: &Value, what: &str) -> Result<f64, HttpError> {
    match value {
        Value::Float(f) => Ok(*f),
        Value::UInt(u) => Ok(*u as f64),
        Value::Int(i) => Ok(*i as f64),
        _ => Err(HttpError::bad(format!("{what} must be a number"))),
    }
}

/// Parses the `methods` list (default: the paper's four proposed methods).
pub fn parse_methods(value: Option<&Value>) -> Result<Vec<MethodKind>, HttpError> {
    let Some(value) = value else {
        return Ok(MethodKind::proposed().to_vec());
    };
    let names = value
        .as_array()
        .ok_or_else(|| HttpError::bad("`methods` must be an array of method names"))?;
    if names.is_empty() {
        return Err(HttpError::bad("`methods` must not be empty"));
    }
    let methods: Vec<MethodKind> = names
        .iter()
        .map(|name| {
            let name = name
                .as_str()
                .ok_or_else(|| HttpError::bad("`methods` entries must be strings"))?;
            MethodKind::parse(name).ok_or_else(|| {
                HttpError::bad(format!("unknown method `{name}` (see GET /v1/methods)"))
            })
        })
        .collect::<Result<_, _>>()?;
    // Reject duplicates here so the client gets a deterministic 400 (the
    // engine would reject them too, but only inside an otherwise-200 response,
    // and a response-cache hit would mask the problem entirely).
    for (i, kind) in methods.iter().enumerate() {
        if methods[..i].contains(kind) {
            return Err(HttpError::bad(format!(
                "method `{}` listed twice in `methods`",
                kind.name()
            )));
        }
    }
    Ok(methods)
}

/// Parses the threshold fields (`delta`, `attribute_deltas`, `intersection_delta`).
fn parse_thresholds(value: &Value, db: &CandidateDb) -> Result<FairnessThresholds, HttpError> {
    let delta = match value.get("delta") {
        None | Some(Value::Null) => 0.1,
        Some(raw) => as_f64(raw, "`delta`")?,
    };
    let mut thresholds = FairnessThresholds::uniform(delta);
    if let Some(overrides) = value.get("attribute_deltas") {
        let entries = overrides
            .as_object()
            .ok_or_else(|| HttpError::bad("`attribute_deltas` must be an object"))?;
        for (attribute, raw) in entries {
            let id = db.schema().attribute_id(attribute).ok_or_else(|| {
                HttpError::bad(format!(
                    "unknown attribute `{attribute}` in `attribute_deltas`"
                ))
            })?;
            thresholds =
                thresholds.with_attribute_delta(id, as_f64(raw, "`attribute_deltas` value")?);
        }
    }
    if let Some(raw) = value.get("intersection_delta") {
        if !matches!(raw, Value::Null) {
            thresholds = thresholds.with_intersection_delta(as_f64(raw, "`intersection_delta`")?);
        }
    }
    Ok(thresholds)
}

/// Parses an inline dataset: candidates with attribute assignments plus a
/// profile of rankings over them.
pub fn parse_dataset(value: &Value) -> Result<Arc<EngineDataset>, HttpError> {
    let name = match value.get("name") {
        Some(raw) => raw
            .as_str()
            .ok_or_else(|| HttpError::bad("dataset `name` must be a string"))?
            .to_string(),
        None => "dataset".to_string(),
    };
    let candidates = value
        .get("candidates")
        .and_then(Value::as_array)
        .ok_or_else(|| HttpError::bad("dataset needs a `candidates` array"))?;
    if candidates.is_empty() {
        return Err(HttpError::bad("`candidates` must not be empty"));
    }

    // Pass 1: attribute order from the first candidate, then value domains in
    // declared-then-first-appearance order.
    let first = candidates[0]
        .get("attributes")
        .and_then(Value::as_object)
        .ok_or_else(|| HttpError::bad("every candidate needs an `attributes` object"))?;
    let attribute_names: Vec<String> = first.iter().map(|(k, _)| k.clone()).collect();
    if attribute_names.is_empty() {
        return Err(HttpError::bad(
            "candidates need at least one protected attribute",
        ));
    }
    let mut domains: Vec<Vec<String>> = attribute_names
        .iter()
        .map(|attribute| declared_domain(value, attribute))
        .collect::<Result<_, _>>()?;
    let mut rows: Vec<(String, Vec<String>)> = Vec::with_capacity(candidates.len());
    for candidate in candidates {
        let name = candidate
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| HttpError::bad("every candidate needs a string `name`"))?;
        let attributes = candidate
            .get("attributes")
            .and_then(Value::as_object)
            .ok_or_else(|| HttpError::bad("every candidate needs an `attributes` object"))?;
        let mut assignment = Vec::with_capacity(attribute_names.len());
        for (index, attribute) in attribute_names.iter().enumerate() {
            let raw = attributes
                .iter()
                .find(|(k, _)| k == attribute)
                .map(|(_, v)| v)
                .ok_or_else(|| {
                    HttpError::bad(format!(
                        "candidate `{name}` is missing attribute `{attribute}`"
                    ))
                })?;
            let label = raw.as_str().ok_or_else(|| {
                HttpError::bad(format!(
                    "attribute `{attribute}` of `{name}` must be a string"
                ))
            })?;
            if !domains[index].iter().any(|v| v == label) {
                domains[index].push(label.to_string());
            }
            assignment.push(label.to_string());
        }
        rows.push((name.to_string(), assignment));
    }

    // Pass 2: build the database against the settled domains.
    let mut builder = CandidateDbBuilder::new();
    let mut attribute_ids = Vec::with_capacity(attribute_names.len());
    for (attribute, domain) in attribute_names.iter().zip(&domains) {
        if domain.len() < 2 {
            return Err(HttpError::bad(format!(
                "attribute `{attribute}` has {} distinct value(s); protected attributes need at least 2",
                domain.len()
            )));
        }
        let id = builder
            .add_attribute(attribute.clone(), domain.iter().map(String::as_str))
            .map_err(|e| HttpError::bad(e.to_string()))?;
        attribute_ids.push(id);
    }
    for (name, assignment) in rows {
        builder
            .add_candidate_named(name, attribute_ids.iter().copied().zip(assignment))
            .map_err(|e| HttpError::bad(e.to_string()))?;
    }
    let db = builder.build().map_err(|e| HttpError::bad(e.to_string()))?;

    // Pass 3: the ranking profile over the built database.
    let rankings = value
        .get("rankings")
        .and_then(Value::as_array)
        .ok_or_else(|| HttpError::bad("dataset needs a `rankings` array"))?;
    if rankings.is_empty() {
        return Err(HttpError::bad("`rankings` must not be empty"));
    }
    let mut parsed = Vec::with_capacity(rankings.len());
    for (index, ranking) in rankings.iter().enumerate() {
        let names = ranking
            .as_array()
            .ok_or_else(|| HttpError::bad(format!("ranking {index} must be an array of names")))?;
        let mut order = Vec::with_capacity(names.len());
        for raw in names {
            let candidate = raw.as_str().ok_or_else(|| {
                HttpError::bad(format!("ranking {index} entries must be strings"))
            })?;
            let id = db.candidate_by_name(candidate).ok_or_else(|| {
                HttpError::bad(format!(
                    "ranking {index} names unknown candidate `{candidate}`"
                ))
            })?;
            order.push(id);
        }
        parsed.push(
            Ranking::from_order(order)
                .map_err(|e| HttpError::bad(format!("ranking {index}: {e}")))?,
        );
    }
    let profile =
        RankingProfile::for_database(&db, parsed).map_err(|e| HttpError::bad(e.to_string()))?;
    EngineDataset::new(name, db, profile)
        .map(Arc::new)
        .map_err(|e| HttpError::bad(e.to_string()))
}

/// Values pinned for `attribute` by the optional `domains` object.
fn declared_domain(dataset: &Value, attribute: &str) -> Result<Vec<String>, HttpError> {
    let Some(domains) = dataset.get("domains") else {
        return Ok(Vec::new());
    };
    let entries = domains
        .as_object()
        .ok_or_else(|| HttpError::bad("`domains` must be an object"))?;
    let Some(raw) = entries.iter().find(|(k, _)| k == attribute).map(|(_, v)| v) else {
        return Ok(Vec::new());
    };
    let values = raw
        .as_array()
        .ok_or_else(|| HttpError::bad(format!("`domains.{attribute}` must be an array")))?;
    values
        .iter()
        .map(|v| {
            v.as_str().map(str::to_string).ok_or_else(|| {
                HttpError::bad(format!("`domains.{attribute}` entries must be strings"))
            })
        })
        .collect()
}

/// Candidate names of a ranking, best first.
pub fn ranking_names(ranking: &Ranking, db: &CandidateDb) -> Value {
    Value::Array(
        ranking
            .iter()
            .map(|id| {
                s(db.candidate(id)
                    .map(|c| c.name().to_string())
                    .unwrap_or_else(|_| "?".to_string()))
            })
            .collect(),
    )
}

/// Attribute names of a database, in schema order.
pub fn attribute_names_json(db: &CandidateDb) -> Value {
    Value::Array(db.schema().attributes().map(|(_, a)| s(a.name())).collect())
}

/// Renders one successful method result (without the volatile `cached` flag,
/// which the caller appends when serving).
pub fn method_result_json(result: &MethodResult, db: &CandidateDb) -> Value {
    let summary = result.outcome.summary().serialize_value();
    let mut entries = match summary {
        Value::Object(entries) => entries,
        other => vec![("summary".to_string(), other)],
    };
    entries.push(("attributes".to_string(), attribute_names_json(db)));
    entries.push((
        "ranking".to_string(),
        ranking_names(&result.outcome.ranking, db),
    ));
    entries.push((
        "duration_ms".to_string(),
        Value::Float(result.duration.as_secs_f64() * 1e3),
    ));
    entries.push((
        "precedence_cache_hit".to_string(),
        Value::Bool(result.cache_hit),
    ));
    Value::Object(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn demo_spec_value(delta: f64) -> Value {
        parse_body(&format!(
            r#"{{
                "dataset": {{
                    "name": "demo",
                    "candidates": [
                        {{"name": "a", "attributes": {{"G": "x"}}}},
                        {{"name": "b", "attributes": {{"G": "y"}}}},
                        {{"name": "c", "attributes": {{"G": "x"}}}},
                        {{"name": "d", "attributes": {{"G": "y"}}}}
                    ],
                    "rankings": [["a","b","c","d"], ["d","c","b","a"], ["a","c","b","d"]]
                }},
                "methods": ["Fair-Borda"],
                "delta": {delta}
            }}"#
        ))
        .unwrap()
    }

    #[test]
    fn parses_a_full_spec() {
        let spec = parse_consensus_spec(&demo_spec_value(0.2), None).unwrap();
        assert_eq!(spec.dataset.name(), "demo");
        assert_eq!(spec.dataset.num_candidates(), 4);
        assert_eq!(spec.dataset.num_rankings(), 3);
        assert_eq!(spec.methods, vec![MethodKind::FairBorda]);
        assert_eq!(spec.thresholds.default_delta(), 0.2);
        assert_eq!(spec.budget, None);
        let request = spec.request();
        assert!(request.validate().is_ok());
    }

    #[test]
    fn methods_default_to_the_proposed_four() {
        let methods = parse_methods(None).unwrap();
        assert_eq!(methods, MethodKind::proposed().to_vec());
        assert!(parse_methods(Some(&Value::Array(vec![]))).is_err());
        assert!(parse_methods(Some(&Value::Array(vec![s("Fair-Nope")]))).is_err());
        let duplicated = Value::Array(vec![s("Fair-Borda"), s("Fair-Borda")]);
        let err = parse_methods(Some(&duplicated)).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("twice"), "{err}");
    }

    #[test]
    fn cache_key_sees_content_not_names() {
        let a = parse_consensus_spec(&demo_spec_value(0.2), None).unwrap();
        let mut renamed = demo_spec_value(0.2);
        if let Value::Object(ref mut entries) = renamed {
            if let Some((_, Value::Object(ref mut fields))) =
                entries.iter_mut().find(|(k, _)| k == "dataset")
            {
                for (key, value) in fields.iter_mut() {
                    if key == "name" {
                        *value = s("other-name");
                    }
                }
            }
        }
        let b = parse_consensus_spec(&renamed, None).unwrap();
        assert_eq!(
            a.cache_key(MethodKind::FairBorda),
            b.cache_key(MethodKind::FairBorda),
            "display names must not split the cache"
        );
        let c = parse_consensus_spec(&demo_spec_value(0.3), None).unwrap();
        assert_ne!(
            a.cache_key(MethodKind::FairBorda),
            c.cache_key(MethodKind::FairBorda),
            "thresholds must split the cache"
        );
        assert_ne!(
            a.cache_key(MethodKind::FairBorda),
            a.cache_key(MethodKind::FairCopeland),
            "methods must split the cache"
        );
    }

    #[test]
    fn dataset_errors_are_descriptive() {
        let missing = parse_body(r#"{"methods": ["Fair-Borda"]}"#).unwrap();
        assert!(parse_consensus_spec(&missing, None)
            .unwrap_err()
            .message
            .contains("dataset"));

        let unknown = parse_body(
            r#"{"dataset": {"candidates": [
                {"name": "a", "attributes": {"G": "x"}},
                {"name": "b", "attributes": {"G": "y"}}
            ], "rankings": [["a", "nope"]]}}"#,
        )
        .unwrap();
        assert!(parse_consensus_spec(&unknown, None)
            .unwrap_err()
            .message
            .contains("unknown candidate"));

        let single_valued = parse_body(
            r#"{"dataset": {"candidates": [
                {"name": "a", "attributes": {"G": "x"}},
                {"name": "b", "attributes": {"G": "x"}}
            ], "rankings": [["a", "b"]]}}"#,
        )
        .unwrap();
        assert!(parse_consensus_spec(&single_valued, None)
            .unwrap_err()
            .message
            .contains("at least 2"));
    }

    #[test]
    fn domains_pin_value_order() {
        let pinned = parse_body(
            r#"{"dataset": {
                "candidates": [
                    {"name": "a", "attributes": {"G": "y"}},
                    {"name": "b", "attributes": {"G": "x"}}
                ],
                "rankings": [["a", "b"]],
                "domains": {"G": ["x", "y"]}
            }}"#,
        )
        .unwrap();
        let spec = parse_consensus_spec(&pinned, None).unwrap();
        let db = spec.dataset.db();
        let g = db.schema().attribute_id("G").unwrap();
        let values: Vec<&str> = db.schema().attribute(g).unwrap().values().collect();
        assert_eq!(values, vec!["x", "y"], "declared order wins");
    }

    #[test]
    fn attribute_deltas_resolve_against_the_schema() {
        let mut value = demo_spec_value(0.2);
        if let Value::Object(ref mut entries) = value {
            entries.push((
                "attribute_deltas".to_string(),
                obj(vec![("G", Value::Float(0.05))]),
            ));
            entries.push(("intersection_delta".to_string(), Value::Float(0.4)));
        }
        let spec = parse_consensus_spec(&value, None).unwrap();
        let g = spec.dataset.db().schema().attribute_id("G").unwrap();
        assert_eq!(spec.thresholds.attribute_delta(g), Some(0.05));
        assert_eq!(spec.thresholds.intersection_delta(), Some(0.4));

        let mut bad = demo_spec_value(0.2);
        if let Value::Object(ref mut entries) = bad {
            entries.push((
                "attribute_deltas".to_string(),
                obj(vec![("Nope", Value::Float(0.05))]),
            ));
        }
        assert!(parse_consensus_spec(&bad, None)
            .unwrap_err()
            .message
            .contains("unknown attribute"));
    }

    #[test]
    fn dataset_id_resolves_through_the_registry() {
        let registry = DatasetRegistry::new(4);
        let inline = parse_consensus_spec(&demo_spec_value(0.2), None).unwrap();
        let (id, _) = registry.register(Arc::clone(&inline.dataset)).unwrap();

        let mut by_id = demo_spec_value(0.2);
        if let Value::Object(ref mut entries) = by_id {
            entries.retain(|(k, _)| k != "dataset");
            entries.push(("dataset_id".to_string(), s(id.clone())));
        }
        let spec = parse_consensus_spec(&by_id, Some(&registry)).unwrap();
        assert_eq!(
            spec.dataset.fingerprint(),
            inline.dataset.fingerprint(),
            "registry resolution must hand back identical content"
        );
        assert_eq!(
            spec.cache_key(MethodKind::FairBorda),
            inline.cache_key(MethodKind::FairBorda),
            "dataset_id and inline specs must share the response cache"
        );

        // Unknown ids are 404; missing registry support is 400; both-at-once
        // is 400.
        let mut unknown = by_id.clone();
        if let Value::Object(ref mut entries) = unknown {
            entries.retain(|(k, _)| k != "dataset_id");
            entries.push(("dataset_id".to_string(), s("ds-nope")));
        }
        assert_eq!(
            parse_consensus_spec(&unknown, Some(&registry))
                .unwrap_err()
                .status,
            404
        );
        assert_eq!(parse_consensus_spec(&by_id, None).unwrap_err().status, 400);
        let mut both = demo_spec_value(0.2);
        if let Value::Object(ref mut entries) = both {
            entries.push(("dataset_id".to_string(), s(id)));
        }
        let err = parse_consensus_spec(&both, Some(&registry)).unwrap_err();
        assert!(err.message.contains("not both"), "{err}");
    }

    #[test]
    fn json_helpers_build_objects() {
        let value = with_entry(
            obj(vec![("a", Value::UInt(1))]),
            "cached",
            Value::Bool(true),
        );
        let text = render(&value);
        assert_eq!(text, r#"{"a":1,"cached":true}"#);
        assert_eq!(error_body("boom"), r#"{"error":"boom"}"#);
    }
}
