//! # mani-serve
//!
//! HTTP front-end for the MANI-Rank consensus engine: a std-only, hand-rolled
//! HTTP/1.1 server (same spirit as the engine's hand-rolled CSV parser) that
//! turns [`mani_engine::ConsensusEngine`] into a network service for
//! decision-makers issuing many small consensus and audit requests against the
//! same candidate pools.
//!
//! * [`http`] — request parsing / response rendering over `TcpStream`,
//!   including HTTP/1.1 keep-alive negotiation.
//! * [`router`] — `(method, path)` → typed [`router::Route`].
//! * [`json`] — body codec between API JSON and engine types, over the
//!   workspace serde shims.
//! * [`datasets`] — the persisted dataset registry behind `/v1/datasets`
//!   (upload once, solve many times via `"dataset_id"`).
//! * [`response_cache`] — O(1) LRU memoization of whole method outcomes keyed
//!   by `(dataset fingerprint, thresholds, method, budget)`, layered *above*
//!   the engine's precedence cache so replayed requests are `O(1)`.
//! * [`metrics`] — per-endpoint request latency histograms and
//!   connection-pool counters, rendered by `GET /v1/stats`.
//! * [`handlers`] — the `v1` endpoints over one [`handlers::AppState`].
//! * [`server`] — the accept loop, the bounded connection worker pool, and a
//!   stoppable background-server handle.
//!
//! ## Endpoints
//!
//! | Endpoint | Purpose |
//! |---|---|
//! | `POST /v1/consensus` | Submit one request or a batch; `"wait": true` blocks for results, `"stream": true` streams one NDJSON line per request in completion order, otherwise a job id is returned |
//! | `GET /v1/jobs/{id}` | Poll an async job (`queued` / `running` / `done`) |
//! | `GET /v1/jobs/{id}/trace` | Per-phase timing timeline of a job (queue wait, cache lookup, matrix build, solve, render) |
//! | `POST /v1/audit` | Per-group FPR / ARP / IRP audit of a dataset |
//! | `POST /v1/datasets` | Register a dataset; returns its content id for `dataset_id` solves |
//! | `GET /v1/datasets/{id}` | Metadata of a registered dataset |
//! | `DELETE /v1/datasets/{id}` | Unregister a dataset |
//! | `GET /v1/methods` | The eight available consensus methods |
//! | `GET /v1/stats` | Queue, cache, connection-pool, and latency-histogram counters, plus the slowest recent requests |
//! | `GET /v1/version` | Build identity: crate version, git describe, profile, feature summary |
//! | `GET /metrics` | Every counter and histogram in Prometheus text exposition format 0.0.4 |
//!
//! ## Observability
//!
//! Every HTTP response carries an `x-request-id` header — the client's own
//! (if it sent a well-formed one) or a generated `req-...` id — stamped on
//! buffered, streamed, cached-replay, and error responses alike, logged in
//! the access line, and recorded on async job records. Structured logfmt
//! logs go to stderr, filtered by the `MANI_LOG` env var or `--log-level`
//! (access lines at `debug`). See `docs/OBSERVABILITY.md` for the log
//! schema, trace phase names, and the full metric inventory.
//!
//! ## Connection model
//!
//! The accept loop hands each connection to a **bounded worker pool**
//! ([`ServerConfig::conn_threads`] workers, at most
//! [`ServerConfig::max_connections`] connections in flight). When the pool is
//! saturated — or a worker thread could not be spawned — the accept path
//! answers `503 Service Unavailable` with `Retry-After` instead of silently
//! dropping the connection. Within one connection, workers loop HTTP/1.1
//! keep-alive exchanges (idle timeout, per-connection request cap) before
//! closing.
//!
//! Backpressure: the engine's bounded submission queue rejects excess load
//! with [`mani_engine::EngineError::Overloaded`], which this layer reports as
//! HTTP `429 Too Many Requests`. See `docs/API.md` for the full wire format
//! and a curl quickstart.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod datasets;
pub mod handlers;
pub mod http;
pub mod json;
pub mod metrics;
pub mod response_cache;
pub mod router;
pub mod server;

pub use datasets::{DatasetRegistry, MAX_REGISTERED_DATASETS};
pub use handlers::{AppState, ConsensusStream, Handled};
pub use http::{ChunkedBody, ChunkedResponse, HttpError, HttpRequest, HttpResponse};
pub use metrics::{
    EndpointMetrics, HistogramSnapshot, LatencyHistogram, ServeCounters, ServeCountersSnapshot,
    LATENCY_BUCKET_BOUNDS_US,
};
pub use response_cache::{ResponseCache, ResponseCacheStats, DEFAULT_RESPONSE_CACHE_CAPACITY};
pub use router::{route, Route, Routed};
pub use server::{Server, ServerConfig, ServerHandle};

/// Shared helpers for this crate's unit tests.
#[cfg(test)]
pub(crate) mod test_support {
    use crate::http::HttpRequest;
    use std::io::{Read, Write};
    use std::net::{SocketAddr, TcpStream};

    /// A parsed `POST` request carrying `body`.
    pub fn post(path: &str, body: &str) -> HttpRequest {
        HttpRequest {
            method: "POST".into(),
            path: path.into(),
            query: None,
            headers: vec![("content-type".into(), "application/json".into())],
            body: body.as_bytes().to_vec(),
            minor_version: 1,
        }
    }

    /// A parsed `GET` request.
    pub fn get(path: &str) -> HttpRequest {
        HttpRequest {
            method: "GET".into(),
            path: path.into(),
            query: None,
            headers: Vec::new(),
            body: Vec::new(),
            minor_version: 1,
        }
    }

    /// A parsed `DELETE` request.
    pub fn delete(path: &str) -> HttpRequest {
        HttpRequest {
            method: "DELETE".into(),
            path: path.into(),
            query: None,
            headers: Vec::new(),
            body: Vec::new(),
            minor_version: 1,
        }
    }

    /// The four-candidate demo dataset object used across handler tests.
    pub fn demo_dataset_json(name: &str) -> String {
        format!(
            r#"{{
                "name": "{name}",
                "candidates": [
                    {{"name": "a", "attributes": {{"G": "x"}}}},
                    {{"name": "b", "attributes": {{"G": "y"}}}},
                    {{"name": "c", "attributes": {{"G": "x"}}}},
                    {{"name": "d", "attributes": {{"G": "y"}}}}
                ],
                "rankings": [["a","b","c","d"], ["d","c","b","a"], ["a","c","b","d"]]
            }}"#
        )
    }

    /// One consensus spec object (for embedding in a `"requests"` array).
    pub fn demo_dataset_consensus_spec(name: &str, delta: f64) -> String {
        format!(
            r#"{{"dataset": {}, "methods": ["Fair-Borda", "Fair-Copeland"], "delta": {delta}}}"#,
            demo_dataset_json(name)
        )
    }

    /// A small four-candidate consensus payload (Fair-Borda + Fair-Copeland).
    pub fn demo_consensus_body(delta: f64, wait: bool) -> String {
        format!(
            r#"{{
                "dataset": {},
                "methods": ["Fair-Borda", "Fair-Copeland"],
                "delta": {delta},
                "wait": {wait}
            }}"#,
            demo_dataset_json("demo")
        )
    }

    /// Sends one raw HTTP exchange (`Connection: close`) and returns
    /// `(status, body)`.
    pub fn http_roundtrip(addr: SocketAddr, request_line: &str, body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect to test server");
        write!(
            stream,
            "{request_line}\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("write request");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read response");
        let status: u16 = raw
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }
}
