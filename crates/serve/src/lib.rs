//! # mani-serve
//!
//! HTTP front-end for the MANI-Rank consensus engine: a std-only, hand-rolled
//! HTTP/1.1 server (same spirit as the engine's hand-rolled CSV parser) that
//! turns [`mani_engine::ConsensusEngine`] into a network service for
//! decision-makers issuing many small consensus and audit requests against the
//! same candidate pools.
//!
//! This crate is purely **transport**: all behavior — the response cache, the
//! dataset registry, job tracking, stats and Prometheus rendering — lives in
//! the transport-agnostic [`mani_service`] crate, and this one adapts it to
//! HTTP/1.1.
//!
//! * [`http`] — request parsing / response rendering over `TcpStream`,
//!   including HTTP/1.1 keep-alive negotiation and chunked NDJSON framing.
//! * [`router`] — `(method, path)` → typed [`router::Route`].
//! * [`codec`] — wire-codec negotiation: resolves `Content-Type` into a body
//!   representation (JSON or the binary columnar dataset encoding,
//!   `application/vnd.mani.columnar`) and checks `Accept` against the JSON /
//!   NDJSON responses this API produces.
//! * [`metrics`] — connection-pool counters (the one telemetry surface only
//!   this transport can observe; request latency histograms live in
//!   `mani-service`).
//! * [`handlers`] — the thin `v1` adapter: one [`handlers::AppState`] routing
//!   requests into [`mani_service::Service`] calls and mapping
//!   [`mani_service::ApiError`] kinds onto HTTP status codes.
//! * [`server`] — the accept loop, the bounded connection worker pool, and a
//!   stoppable background-server handle.
//!
//! ## Endpoints
//!
//! | Endpoint | Purpose |
//! |---|---|
//! | `POST /v1/consensus` | Submit one request or a batch; `"wait": true` blocks for results, `"stream": true` streams one NDJSON line per request in completion order, otherwise a job id is returned |
//! | `POST /v1/consensus` (columnar) | Same operation with a binary columnar dataset body; solve parameters ride the query string (`?methods=...&delta=...&wait=true`) |
//! | `GET /v1/jobs/{id}` | Poll an async job (`queued` / `running` / `done`) |
//! | `GET /v1/jobs/{id}/trace` | Per-phase timing timeline of a job (queue wait, cache lookup, matrix build, solve, render) |
//! | `POST /v1/audit` | Per-group FPR / ARP / IRP audit of a dataset |
//! | `POST /v1/datasets` | Register a dataset (JSON or columnar body); returns its content id for by-reference solves |
//! | `GET /v1/datasets/{id}` | Metadata of the current version of a registered dataset |
//! | `PATCH /v1/datasets/{id}` | Apply ranking edits (appends/retracts), creating the id's next version with a delta-derived precedence matrix |
//! | `DELETE /v1/datasets/{id}` | Unregister a dataset (all versions) |
//! | `POST /v1/sessions` | Live what-if session: one NDJSON consensus line per edit, each delta-derived from its predecessor |
//! | `GET /v1/methods` | The eight available consensus methods |
//! | `GET /v1/stats` | Queue, cache, connection-pool, and latency-histogram counters, plus the slowest recent requests |
//! | `GET /v1/version` | Build identity: crate version, git describe, profile, feature summary |
//! | `GET /metrics` | Every counter and histogram in Prometheus text exposition format 0.0.4 |
//!
//! ## Observability
//!
//! Every HTTP response carries an `x-request-id` header — the client's own
//! (if it sent a well-formed one) or a generated `req-...` id — stamped on
//! buffered, streamed, cached-replay, and error responses alike, logged in
//! the access line, and recorded on async job records. Structured logfmt
//! logs go to stderr, filtered by the `MANI_LOG` env var or `--log-level`
//! (access lines at `debug`). See `docs/OBSERVABILITY.md` for the log
//! schema, trace phase names, and the full metric inventory.
//!
//! ## Content negotiation
//!
//! POST bodies default to `application/json`; `POST /v1/consensus` and
//! `POST /v1/datasets` additionally decode `application/vnd.mani.columnar`
//! (see `docs/API.md` for the byte layout). Any other `Content-Type` is
//! refused with `415 Unsupported Media Type` and a structured JSON envelope
//! listing the supported representations; an `Accept` header that excludes
//! both JSON and NDJSON is refused with `406 Not Acceptable`.
//!
//! ## Connection model
//!
//! The accept loop hands each connection to a **bounded worker pool**
//! ([`ServerConfig::conn_threads`] workers, at most
//! [`ServerConfig::max_connections`] connections in flight). When the pool is
//! saturated — or a worker thread could not be spawned — the accept path
//! answers `503 Service Unavailable` with `Retry-After` instead of silently
//! dropping the connection. Within one connection, workers loop HTTP/1.1
//! keep-alive exchanges (idle timeout, per-connection request cap) before
//! closing.
//!
//! Backpressure: the engine's bounded submission queue rejects excess load
//! with [`mani_engine::EngineError::Overloaded`], which this layer reports as
//! HTTP `429 Too Many Requests`. See `docs/API.md` for the full wire format
//! and a curl quickstart.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod codec;
pub mod handlers;
pub mod http;
pub mod metrics;
pub mod router;
pub mod server;

pub use codec::{BodyCodec, JSON_CONTENT_TYPE, NDJSON_CONTENT_TYPE};
pub use handlers::{api_error_status, AppState, ConsensusStream, Handled};
pub use http::{ChunkedBody, ChunkedResponse, HttpError, HttpRequest, HttpResponse};
pub use metrics::{ServeCounters, ServeCountersSnapshot};
pub use router::{route, Route, Routed};
pub use server::{Server, ServerConfig, ServerHandle};

// Re-exported service-core types, kept at their pre-refactor paths so
// existing integration tests and downstream users keep compiling.
pub use mani_service::{
    ApiError, ApiErrorKind, DatasetRegistry, EndpointMetrics, HistogramSnapshot, LatencyHistogram,
    ResponseCache, ResponseCacheStats, WhatIfSession, COLUMNAR_CONTENT_TYPE,
    DEFAULT_RESPONSE_CACHE_CAPACITY, LATENCY_BUCKET_BOUNDS_US, MAX_REGISTERED_DATASETS,
    MAX_RETAINED_VERSIONS,
};

/// Shared helpers for this crate's unit tests.
#[cfg(test)]
pub(crate) mod test_support {
    use crate::http::HttpRequest;
    use std::io::{Read, Write};
    use std::net::{SocketAddr, TcpStream};

    /// A parsed `POST` request carrying `body`.
    pub fn post(path: &str, body: &str) -> HttpRequest {
        HttpRequest {
            method: "POST".into(),
            path: path.into(),
            query: None,
            headers: vec![("content-type".into(), "application/json".into())],
            body: body.as_bytes().to_vec(),
            minor_version: 1,
        }
    }

    /// A parsed `GET` request.
    pub fn get(path: &str) -> HttpRequest {
        HttpRequest {
            method: "GET".into(),
            path: path.into(),
            query: None,
            headers: Vec::new(),
            body: Vec::new(),
            minor_version: 1,
        }
    }

    /// A parsed `PATCH` request carrying `body`.
    pub fn patch(path: &str, body: &str) -> HttpRequest {
        HttpRequest {
            method: "PATCH".into(),
            path: path.into(),
            query: None,
            headers: vec![("content-type".into(), "application/json".into())],
            body: body.as_bytes().to_vec(),
            minor_version: 1,
        }
    }

    /// A parsed `DELETE` request.
    pub fn delete(path: &str) -> HttpRequest {
        HttpRequest {
            method: "DELETE".into(),
            path: path.into(),
            query: None,
            headers: Vec::new(),
            body: Vec::new(),
            minor_version: 1,
        }
    }

    /// The four-candidate demo dataset object used across handler tests.
    pub fn demo_dataset_json(name: &str) -> String {
        format!(
            r#"{{
                "name": "{name}",
                "candidates": [
                    {{"name": "a", "attributes": {{"G": "x"}}}},
                    {{"name": "b", "attributes": {{"G": "y"}}}},
                    {{"name": "c", "attributes": {{"G": "x"}}}},
                    {{"name": "d", "attributes": {{"G": "y"}}}}
                ],
                "rankings": [["a","b","c","d"], ["d","c","b","a"], ["a","c","b","d"]]
            }}"#
        )
    }

    /// One consensus spec object (for embedding in a `"requests"` array).
    pub fn demo_dataset_consensus_spec(name: &str, delta: f64) -> String {
        format!(
            r#"{{"dataset": {}, "methods": ["Fair-Borda", "Fair-Copeland"], "delta": {delta}}}"#,
            demo_dataset_json(name)
        )
    }

    /// A small four-candidate consensus payload (Fair-Borda + Fair-Copeland).
    pub fn demo_consensus_body(delta: f64, wait: bool) -> String {
        format!(
            r#"{{
                "dataset": {},
                "methods": ["Fair-Borda", "Fair-Copeland"],
                "delta": {delta},
                "wait": {wait}
            }}"#,
            demo_dataset_json("demo")
        )
    }

    /// Sends one raw HTTP exchange (`Connection: close`) and returns
    /// `(status, body)`.
    pub fn http_roundtrip(addr: SocketAddr, request_line: &str, body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect to test server");
        write!(
            stream,
            "{request_line}\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("write request");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read response");
        let status: u16 = raw
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }
}
