//! The TCP accept loop and the bounded connection worker pool.
//!
//! The accept thread never parses HTTP: it only bounds admission. Each
//! accepted stream is handed to one of [`ServerConfig::conn_threads`] worker
//! threads over a channel, gated by an in-flight counter capped at
//! [`ServerConfig::max_connections`]. When the pool is saturated — or no
//! worker thread could be spawned at all — the accept path answers `503
//! Service Unavailable` with a `Retry-After` header instead of silently
//! dropping the connection (the failure mode of the old detached
//! thread-per-connection design: a failed `thread::Builder::spawn` dropped
//! the stream and the client hung until its own timeout).
//!
//! Workers loop HTTP/1.1 keep-alive exchanges per connection: multiple
//! requests are served on one socket, bounded by an idle timeout between
//! requests, a per-request read timeout, and a per-connection request cap,
//! after which the response carries `Connection: close`. Heavy lifting still
//! happens inside the engine's worker pool; connection workers mostly parse,
//! enqueue, and serialize.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mani_engine::EngineConfig;

use crate::handlers::{AppState, Handled};
use crate::http::{HttpRequest, HttpResponse};
use mani_service::error_body;

/// Default bound on connections in flight (queued + being served).
pub const DEFAULT_MAX_CONNECTIONS: usize = 256;
/// Default per-read timeout while a request is being received.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(10);
/// Default wait for the next request on an idle keep-alive connection.
pub const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(5);
/// Default cap on exchanges served over one keep-alive connection.
pub const DEFAULT_MAX_REQUESTS_PER_CONN: usize = 128;
/// `Retry-After` seconds advertised on `503` rejections.
const RETRY_AFTER_SECS: u64 = 1;

/// Server construction parameters. Zero values mean "use the default".
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Engine configuration (threads, queue depth, default budget).
    pub engine: EngineConfig,
    /// Response-cache entry bound (`0` = default).
    pub cache_capacity: usize,
    /// Most connections in flight (queued for a worker + being served) before
    /// the accept path answers `503` (`0` = [`DEFAULT_MAX_CONNECTIONS`]).
    pub max_connections: usize,
    /// Connection worker threads (`0` = `min(8, available cores)`).
    pub conn_threads: usize,
    /// Per-read timeout while receiving a request (zero =
    /// [`DEFAULT_READ_TIMEOUT`]).
    pub read_timeout: Duration,
    /// How long an idle keep-alive connection waits for its next request
    /// before the server closes it (zero = [`DEFAULT_IDLE_TIMEOUT`]).
    pub idle_timeout: Duration,
    /// Exchanges served per connection before `Connection: close`
    /// (`0` = [`DEFAULT_MAX_REQUESTS_PER_CONN`]).
    pub max_requests_per_conn: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            engine: EngineConfig::default(),
            cache_capacity: 0,
            max_connections: 0,
            conn_threads: 0,
            read_timeout: Duration::ZERO,
            idle_timeout: Duration::ZERO,
            max_requests_per_conn: 0,
        }
    }
}

/// Connection-loop limits with defaults applied, shared by every worker.
#[derive(Debug, Clone, Copy)]
struct ConnLimits {
    read_timeout: Duration,
    idle_timeout: Duration,
    max_requests: usize,
}

impl ConnLimits {
    fn resolve(config: &ServerConfig) -> Self {
        Self {
            read_timeout: if config.read_timeout.is_zero() {
                DEFAULT_READ_TIMEOUT
            } else {
                config.read_timeout
            },
            idle_timeout: if config.idle_timeout.is_zero() {
                DEFAULT_IDLE_TIMEOUT
            } else {
                config.idle_timeout
            },
            max_requests: if config.max_requests_per_conn == 0 {
                DEFAULT_MAX_REQUESTS_PER_CONN
            } else {
                config.max_requests_per_conn
            },
        }
    }
}

/// A bound (but not yet accepting) HTTP server over one [`AppState`].
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
    limits: ConnLimits,
    max_connections: usize,
    conn_threads: usize,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:8080`; port `0` picks a free port) and
    /// builds the engine behind it.
    pub fn bind(addr: &str, config: ServerConfig) -> std::io::Result<Self> {
        let limits = ConnLimits::resolve(&config);
        let max_connections = if config.max_connections == 0 {
            DEFAULT_MAX_CONNECTIONS
        } else {
            config.max_connections
        };
        let conn_threads = if config.conn_threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
                .min(8)
        } else {
            config.conn_threads
        };
        let state = Arc::new(AppState::new(config.engine, config.cache_capacity));
        state.connections().configure(max_connections, conn_threads);
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            state,
            limits,
            max_connections,
            conn_threads,
        })
    }

    /// The bound address (useful after binding port `0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared application state.
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// The resolved connection bound.
    pub fn max_connections(&self) -> usize {
        self.max_connections
    }

    /// The resolved connection worker count.
    pub fn conn_threads(&self) -> usize {
        self.conn_threads
    }

    /// Serves connections until the process exits.
    pub fn run(self) -> std::io::Result<()> {
        let stop = Arc::new(AtomicBool::new(false));
        self.accept_loop(&stop)
    }

    /// Serves connections on a background thread, returning a handle that can
    /// stop the loop (used by tests and embedding callers).
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let state = Arc::clone(&self.state);
        let loop_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("mani-serve-accept".into())
            .spawn(move || {
                let _ = self.accept_loop(&loop_stop);
            })?;
        Ok(ServerHandle {
            addr,
            state,
            stop,
            thread,
        })
    }

    fn accept_loop(&self, stop: &Arc<AtomicBool>) -> std::io::Result<()> {
        // Connections in flight: queued in the channel or inside a worker.
        // Incremented on admission by the accept thread, decremented by the
        // worker when the connection closes.
        let in_flight = Arc::new(AtomicUsize::new(0));
        let (sender, receiver) = std::sync::mpsc::channel::<TcpStream>();
        let receiver = Arc::new(Mutex::new(receiver));
        let mut workers = Vec::with_capacity(self.conn_threads);
        for index in 0..self.conn_threads {
            // A failed spawn leaves fewer workers; zero workers means every
            // connection is answered 503 below — never a hang.
            match self.spawn_worker(index, &receiver, &in_flight, stop) {
                Ok(handle) => workers.push(handle),
                Err(error) => {
                    mani_obs::warn!("serve", "worker spawn failed", index = index, error = error);
                }
            }
        }
        mani_obs::info!(
            "serve",
            "accepting connections",
            workers = workers.len(),
            max_connections = self.max_connections,
        );

        for stream in self.listener.incoming() {
            if stop.load(Ordering::Acquire) {
                break;
            }
            match stream {
                Ok(stream) => {
                    if workers.is_empty() || !self.try_admit(&in_flight) {
                        reject_busy(&self.state, stream);
                        continue;
                    }
                    if let Err(failed) = sender.send(stream) {
                        // Every worker exited (e.g. panicked): the channel is
                        // closed. SendError hands the stream back — release
                        // the slot and answer 503 rather than dropping it.
                        in_flight.fetch_sub(1, Ordering::AcqRel);
                        reject_busy(&self.state, failed.0);
                    }
                }
                Err(e) => {
                    // Transient accept errors (aborted handshakes, fd
                    // exhaustion) must not take the server down — but they
                    // also must not busy-spin a core while the condition
                    // persists, so back off briefly before retrying.
                    if e.kind() != std::io::ErrorKind::Interrupted {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
            }
        }
        drop(sender);
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }

    /// Reserves an in-flight slot if the pool is below `max_connections`.
    fn try_admit(&self, in_flight: &AtomicUsize) -> bool {
        in_flight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |current| {
                (current < self.max_connections).then_some(current + 1)
            })
            .is_ok()
    }

    fn spawn_worker(
        &self,
        index: usize,
        receiver: &Arc<Mutex<Receiver<TcpStream>>>,
        in_flight: &Arc<AtomicUsize>,
        stop: &Arc<AtomicBool>,
    ) -> std::io::Result<std::thread::JoinHandle<()>> {
        let receiver = Arc::clone(receiver);
        let in_flight = Arc::clone(in_flight);
        let stop = Arc::clone(stop);
        let state = Arc::clone(&self.state);
        let limits = self.limits;
        std::thread::Builder::new()
            .name(format!("mani-serve-conn-{index}"))
            .spawn(move || loop {
                let stream = {
                    let guard = receiver.lock().expect("connection queue lock poisoned");
                    match guard.recv() {
                        Ok(stream) => stream,
                        Err(_) => break, // accept loop gone: shut down
                    }
                };
                // A handler panic must neither kill the worker nor leak the
                // admission slot (a leaked slot would shrink the pool until
                // try_admit rejects everything).
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handle_connection(&state, stream, &limits, &stop, &in_flight);
                }));
                in_flight.fetch_sub(1, Ordering::AcqRel);
            })
    }
}

/// Answers `503 Service Unavailable` (with `Retry-After`) on the accept path
/// — used when the pool is saturated or no worker could be spawned. Writing
/// inline on the accept thread is safe: the response is ~150 bytes into a
/// fresh socket whose send buffer is empty, so the kernel absorbs it without
/// blocking even if the client never reads; the write timeout is pure
/// belt-and-braces against pathological socket states.
fn reject_busy(state: &AppState, mut stream: TcpStream) {
    state.connections().record_rejected_busy();
    // The request was never read, so no client id exists: generate one so the
    // rejection is still correlatable between the response and the log line.
    let request_id = mani_obs::fresh_request_id();
    mani_obs::warn!(
        "serve",
        "connection rejected: pool saturated",
        req_id = request_id,
    );
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let response = HttpResponse::json(503, error_body("connection pool saturated; retry shortly"))
        .with_header("Retry-After", RETRY_AFTER_SECS.to_string())
        .with_header("x-request-id", request_id);
    let _ = response.write_conn(&mut stream, false);
}

/// A running server: address, state, and a way to stop the accept loop.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<AppState>,
    stop: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared application state (for stats assertions in tests).
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Stops the accept loop and joins the server thread; workers finish
    /// their current connection (bounded by the idle timeout) and exit.
    pub fn stop(self) {
        self.stop.store(true, Ordering::Release);
        // Unblock `accept` with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.thread.join();
    }
}

/// How often an idle keep-alive wait re-checks for contention and shutdown.
const IDLE_POLL_SLICE: Duration = Duration::from_millis(100);

/// Serves one connection: loops keep-alive exchanges until the client closes,
/// asks to close, errors, idles out, hits the per-connection request cap, or
/// — while sitting *idle* between requests — other connections queue behind
/// the busy pool (idle shedding; active clients keep their connection).
fn handle_connection(
    state: &Arc<AppState>,
    stream: TcpStream,
    limits: &ConnLimits,
    stop: &AtomicBool,
    in_flight: &AtomicUsize,
) {
    state.connections().record_accepted();
    let conn_threads = state.connections().snapshot().conn_threads as usize;
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = stream;
    let mut served = 0usize;
    loop {
        // Phase 1: wait for the first byte of the next request (the idle
        // phase). Polled in short slices so a worker parked on an idle
        // keep-alive connection notices contention (connections queued
        // beyond the worker count) or shutdown within ~100 ms and releases
        // itself with a silent close — instead of pinning the pool for the
        // full idle timeout while admitted clients hang in the queue.
        let idle_budget = if served == 0 {
            limits.read_timeout
        } else {
            limits.idle_timeout
        };
        let can_shed = served > 0; // a freshly admitted connection is always served
        if !await_request_bytes(
            &mut reader,
            &writer,
            idle_budget,
            can_shed,
            in_flight,
            conn_threads,
            stop,
        ) {
            return; // EOF, idle timeout, shed, or shutdown: close silently
        }

        // Phase 2: bytes are flowing — the whole request (head + body) must
        // arrive within `read_timeout` of its first byte. The socket timeout
        // bounds each blocking read (the clone shares the socket, so setting
        // it on the writer governs the reader too); the deadline bounds the
        // total, so a trickling slow-loris cannot out-wait the per-read
        // timeout and pin this worker.
        let _ = writer.set_read_timeout(Some(limits.read_timeout));
        let deadline = Some(Instant::now() + limits.read_timeout);
        match HttpRequest::read_from_duplex_deadline(&mut reader, &mut writer, deadline) {
            // Peer closed before sending a request: close silently.
            Err(error) if error.is_closed() => return,
            // Any other parse failure poisons the framing (a partial request
            // may be sitting in the buffer): answer and close. Parse errors
            // never reach dispatch, so the request id is generated here.
            Err(error) => {
                let request_id = mani_obs::fresh_request_id();
                mani_obs::warn!(
                    "serve",
                    "request parse failed",
                    req_id = request_id,
                    status = error.status,
                    error = error.message,
                );
                let response = HttpResponse::json(error.status, error_body(&error.message))
                    .with_header("x-request-id", request_id);
                let _ = response.write_conn(&mut writer, false);
                return;
            }
            Ok(request) => {
                state.connections().record_request(served > 0);
                served += 1;
                let keep_alive = request.wants_keep_alive()
                    && served < limits.max_requests
                    && !stop.load(Ordering::Acquire);
                let write_ok = match state.dispatch(&request) {
                    Handled::Response(response) => {
                        response.write_conn(&mut writer, keep_alive).is_ok()
                    }
                    Handled::Stream(stream) => {
                        // A streamed response can span many seconds of solve
                        // time; a client that stops reading must not pin this
                        // worker once the socket buffer fills. A write timeout
                        // turns that stall into an error → connection close →
                        // slot release (jobs finish in the engine regardless,
                        // and their results stay pollable via /v1/jobs).
                        let _ = writer.set_write_timeout(Some(limits.read_timeout));
                        let ok = state.stream_ndjson(stream, &mut writer, keep_alive).is_ok();
                        let _ = writer.set_write_timeout(None);
                        ok
                    }
                    Handled::Session(session) => {
                        // Same stalled-reader guard as consensus streams: each
                        // edit step can take real solve time, so a client that
                        // stops reading is cut off by the write timeout.
                        let _ = writer.set_write_timeout(Some(limits.read_timeout));
                        let ok = state
                            .stream_session_ndjson(session, &mut writer, keep_alive)
                            .is_ok();
                        let _ = writer.set_write_timeout(None);
                        ok
                    }
                };
                if !write_ok || !keep_alive {
                    return;
                }
            }
        }
    }
}

/// Waits for request bytes to become available, polling in
/// [`IDLE_POLL_SLICE`] slices. Returns `false` when the connection should be
/// closed silently instead: EOF, the idle `budget` spent, shutdown, or —
/// when `can_shed` — more connections in flight than workers (someone is
/// queued waiting for this very worker).
#[allow(clippy::too_many_arguments)]
fn await_request_bytes(
    reader: &mut BufReader<TcpStream>,
    writer: &TcpStream,
    budget: Duration,
    can_shed: bool,
    in_flight: &AtomicUsize,
    conn_threads: usize,
    stop: &AtomicBool,
) -> bool {
    use std::io::BufRead;
    let mut waited = Duration::ZERO;
    loop {
        if stop.load(Ordering::Acquire) {
            return false;
        }
        let slice = IDLE_POLL_SLICE.min(budget.saturating_sub(waited));
        if slice.is_zero() {
            return false; // idle budget exhausted
        }
        let _ = writer.set_read_timeout(Some(slice));
        match reader.fill_buf() {
            Ok(buffered) => return !buffered.is_empty(), // false = EOF
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                waited += slice;
                if can_shed && in_flight.load(Ordering::Acquire) > conn_threads {
                    return false; // shed: let a queued connection have the worker
                }
            }
            Err(_) => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::http_roundtrip;

    #[test]
    fn spawned_server_answers_and_stops() {
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                engine: EngineConfig {
                    threads: 1,
                    ..EngineConfig::default()
                },
                cache_capacity: 4,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let handle = server.spawn().unwrap();
        let (status, body) = http_roundtrip(handle.addr(), "GET /v1/methods HTTP/1.1", "");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("Fair-Schulze"));
        let (status, _) = http_roundtrip(handle.addr(), "GET /nope HTTP/1.1", "");
        assert_eq!(status, 404);
        handle.stop();
    }

    #[test]
    fn config_defaults_resolve() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        assert_eq!(server.max_connections(), DEFAULT_MAX_CONNECTIONS);
        assert!(server.conn_threads() >= 1 && server.conn_threads() <= 8);
        let snapshot = server.state().connections().snapshot();
        assert_eq!(snapshot.max_connections as usize, DEFAULT_MAX_CONNECTIONS);

        let sized = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                max_connections: 3,
                conn_threads: 2,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        assert_eq!(sized.max_connections(), 3);
        assert_eq!(sized.conn_threads(), 2);
    }
}
