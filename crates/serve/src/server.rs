//! The TCP accept loop: binds a listener, parses one HTTP request per
//! connection, dispatches it through [`AppState::handle`], and writes the
//! response. Connections are handled on detached threads; heavy lifting
//! happens inside the engine's worker pool, so connection threads mostly
//! parse, enqueue, and serialize.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mani_engine::EngineConfig;

use crate::handlers::AppState;
use crate::http::{HttpRequest, HttpResponse};
use crate::json::error_body;

/// How long one connection may take to deliver its request.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Server construction parameters.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Engine configuration (threads, queue depth, default budget).
    pub engine: EngineConfig,
    /// Response-cache entry bound (`0` = default).
    pub cache_capacity: usize,
}

/// A bound (but not yet accepting) HTTP server over one [`AppState`].
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:8080`; port `0` picks a free port) and
    /// builds the engine behind it.
    pub fn bind(addr: &str, config: ServerConfig) -> std::io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            state: Arc::new(AppState::new(config.engine, config.cache_capacity)),
        })
    }

    /// The bound address (useful after binding port `0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared application state.
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Serves connections until the process exits.
    pub fn run(self) -> std::io::Result<()> {
        let stop = Arc::new(AtomicBool::new(false));
        self.accept_loop(&stop)
    }

    /// Serves connections on a background thread, returning a handle that can
    /// stop the loop (used by tests and embedding callers).
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let state = Arc::clone(&self.state);
        let loop_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("mani-serve-accept".into())
            .spawn(move || {
                let _ = self.accept_loop(&loop_stop);
            })?;
        Ok(ServerHandle {
            addr,
            state,
            stop,
            thread,
        })
    }

    fn accept_loop(&self, stop: &AtomicBool) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            if stop.load(Ordering::Acquire) {
                break;
            }
            match stream {
                Ok(stream) => {
                    let state = Arc::clone(&self.state);
                    // Detached: a slow client must not block the accept loop.
                    let _ = std::thread::Builder::new()
                        .name("mani-serve-conn".into())
                        .spawn(move || handle_connection(&state, stream));
                }
                Err(e) => {
                    // Transient accept errors (aborted handshakes, fd
                    // exhaustion) must not take the server down — but they
                    // also must not busy-spin a core while the condition
                    // persists, so back off briefly before retrying.
                    if e.kind() != std::io::ErrorKind::Interrupted {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
            }
        }
        Ok(())
    }
}

/// A running server: address, state, and a way to stop the accept loop.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<AppState>,
    stop: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The address the server listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared application state (for stats assertions in tests).
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Stops the accept loop and joins the server thread. In-flight
    /// connections finish on their own threads.
    pub fn stop(self) {
        self.stop.store(true, Ordering::Release);
        // Unblock `accept` with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.thread.join();
    }
}

/// Parses one request off a fresh connection, dispatches, answers, closes.
fn handle_connection(state: &AppState, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = stream;
    let response = match HttpRequest::read_from_duplex(&mut reader, &mut writer) {
        Ok(request) => state.handle(&request),
        Err(error) if error.is_closed() => return,
        Err(error) => HttpResponse::json(error.status, error_body(&error.message)),
    };
    let _ = response.write_to(&mut writer);
    let _ = writer.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::http_roundtrip;

    #[test]
    fn spawned_server_answers_and_stops() {
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                engine: EngineConfig {
                    threads: 1,
                    ..EngineConfig::default()
                },
                cache_capacity: 4,
            },
        )
        .unwrap();
        let handle = server.spawn().unwrap();
        let (status, body) = http_roundtrip(handle.addr(), "GET /v1/methods HTTP/1.1", "");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("Fair-Schulze"));
        let (status, _) = http_roundtrip(handle.addr(), "GET /nope HTTP/1.1", "");
        assert_eq!(status, 404);
        handle.stop();
    }
}
