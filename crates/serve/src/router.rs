//! Maps `(method, path)` pairs onto the API's typed routes.

/// One recognized endpoint of the v1 API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// `POST /v1/consensus` — submit one request or a batch.
    Consensus,
    /// `POST /v1/audit` — fairness audit of a dataset.
    Audit,
    /// `GET /v1/jobs/{id}` — poll an async job.
    Job(String),
    /// `GET /v1/methods` — list available consensus methods.
    Methods,
    /// `GET /v1/stats` — engine, cache, and queue counters.
    Stats,
}

/// Outcome of routing one request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Routed {
    /// The request matched an endpoint.
    Found(Route),
    /// The path exists but not under this method (`405`).
    MethodNotAllowed,
    /// No such path (`404`).
    NotFound,
}

/// Routes a request by method and path (query string already stripped).
pub fn route(method: &str, path: &str) -> Routed {
    let segments: Vec<&str> = path.trim_matches('/').split('/').collect();
    let endpoint = match segments.as_slice() {
        ["v1", "consensus"] => Some(("POST", Route::Consensus)),
        ["v1", "audit"] => Some(("POST", Route::Audit)),
        ["v1", "jobs", id] if !id.is_empty() => Some(("GET", Route::Job((*id).to_string()))),
        ["v1", "methods"] => Some(("GET", Route::Methods)),
        ["v1", "stats"] => Some(("GET", Route::Stats)),
        _ => None,
    };
    match endpoint {
        Some((expected, found)) if expected == method => Routed::Found(found),
        Some(_) => Routed::MethodNotAllowed,
        None => Routed::NotFound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_every_endpoint() {
        assert_eq!(
            route("POST", "/v1/consensus"),
            Routed::Found(Route::Consensus)
        );
        assert_eq!(route("POST", "/v1/audit"), Routed::Found(Route::Audit));
        assert_eq!(
            route("GET", "/v1/jobs/job-17"),
            Routed::Found(Route::Job("job-17".into()))
        );
        assert_eq!(route("GET", "/v1/methods"), Routed::Found(Route::Methods));
        assert_eq!(route("GET", "/v1/stats"), Routed::Found(Route::Stats));
        // Trailing slash tolerated.
        assert_eq!(route("GET", "/v1/stats/"), Routed::Found(Route::Stats));
    }

    #[test]
    fn wrong_method_is_distinguished_from_unknown_path() {
        assert_eq!(route("GET", "/v1/consensus"), Routed::MethodNotAllowed);
        assert_eq!(route("POST", "/v1/stats"), Routed::MethodNotAllowed);
        assert_eq!(route("GET", "/v2/stats"), Routed::NotFound);
        assert_eq!(route("GET", "/v1/jobs"), Routed::NotFound);
        assert_eq!(route("GET", "/"), Routed::NotFound);
    }
}
