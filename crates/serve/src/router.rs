//! Maps `(method, path)` pairs onto the API's typed routes.

/// One recognized endpoint of the v1 API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// `POST /v1/consensus` — submit one request or a batch.
    Consensus,
    /// `POST /v1/audit` — fairness audit of a dataset.
    Audit,
    /// `GET /v1/jobs/{id}` — poll an async job.
    Job(String),
    /// `GET /v1/jobs/{id}/trace` — the job's phase timeline.
    JobTrace(String),
    /// `POST /v1/datasets` — register a dataset, returning its content id.
    DatasetCreate,
    /// `GET /v1/datasets/{id}` — metadata of a registered dataset.
    DatasetGet(String),
    /// `PATCH /v1/datasets/{id}` — apply ranking edits, creating the id's
    /// next version.
    DatasetPatch(String),
    /// `DELETE /v1/datasets/{id}` — unregister a dataset.
    DatasetDelete(String),
    /// `POST /v1/sessions` — a live what-if session streamed as NDJSON.
    SessionCreate,
    /// `GET /v1/methods` — list available consensus methods.
    Methods,
    /// `GET /v1/stats` — engine, cache, queue, and latency counters.
    Stats,
    /// `GET /v1/version` — build identity (crate version, git, profile).
    Version,
    /// `GET /metrics` — Prometheus text exposition of every counter.
    Metrics,
}

impl Route {
    /// The metrics label this route records latency under.
    pub fn metrics_label(&self) -> &'static str {
        match self {
            Route::Consensus => "consensus",
            Route::Audit => "audit",
            Route::Job(_) | Route::JobTrace(_) => "jobs",
            Route::DatasetCreate | Route::DatasetGet(_) | Route::DatasetDelete(_) => "datasets",
            Route::DatasetPatch(_) => "dataset_patch",
            Route::SessionCreate => "session",
            Route::Methods => "methods",
            Route::Stats => "stats",
            Route::Version => "version",
            Route::Metrics => "metrics",
        }
    }
}

/// Outcome of routing one request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Routed {
    /// The request matched an endpoint.
    Found(Route),
    /// The path exists but not under this method (`405`).
    MethodNotAllowed,
    /// No such path (`404`).
    NotFound,
}

/// Routes a request by method and path (query string already stripped).
pub fn route(method: &str, path: &str) -> Routed {
    let segments: Vec<&str> = path.trim_matches('/').split('/').collect();
    // Every (allowed method, route) pair the path maps to; several entries
    // mean the path supports several methods (e.g. GET/DELETE on a dataset).
    let endpoints: Vec<(&str, Route)> = match segments.as_slice() {
        ["v1", "consensus"] => vec![("POST", Route::Consensus)],
        ["v1", "audit"] => vec![("POST", Route::Audit)],
        ["v1", "jobs", id] if !id.is_empty() => vec![("GET", Route::Job((*id).to_string()))],
        ["v1", "jobs", id, "trace"] if !id.is_empty() => {
            vec![("GET", Route::JobTrace((*id).to_string()))]
        }
        ["v1", "datasets"] => vec![("POST", Route::DatasetCreate)],
        ["v1", "datasets", id] if !id.is_empty() => vec![
            ("GET", Route::DatasetGet((*id).to_string())),
            ("PATCH", Route::DatasetPatch((*id).to_string())),
            ("DELETE", Route::DatasetDelete((*id).to_string())),
        ],
        ["v1", "sessions"] => vec![("POST", Route::SessionCreate)],
        ["v1", "methods"] => vec![("GET", Route::Methods)],
        ["v1", "stats"] => vec![("GET", Route::Stats)],
        ["v1", "version"] => vec![("GET", Route::Version)],
        ["metrics"] => vec![("GET", Route::Metrics)],
        _ => Vec::new(),
    };
    if endpoints.is_empty() {
        return Routed::NotFound;
    }
    match endpoints.into_iter().find(|(m, _)| *m == method) {
        Some((_, found)) => Routed::Found(found),
        None => Routed::MethodNotAllowed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_every_endpoint() {
        assert_eq!(
            route("POST", "/v1/consensus"),
            Routed::Found(Route::Consensus)
        );
        assert_eq!(route("POST", "/v1/audit"), Routed::Found(Route::Audit));
        assert_eq!(
            route("GET", "/v1/jobs/job-17"),
            Routed::Found(Route::Job("job-17".into()))
        );
        assert_eq!(
            route("POST", "/v1/datasets"),
            Routed::Found(Route::DatasetCreate)
        );
        assert_eq!(
            route("GET", "/v1/datasets/ds-12ab"),
            Routed::Found(Route::DatasetGet("ds-12ab".into()))
        );
        assert_eq!(
            route("PATCH", "/v1/datasets/ds-12ab"),
            Routed::Found(Route::DatasetPatch("ds-12ab".into()))
        );
        assert_eq!(
            route("DELETE", "/v1/datasets/ds-12ab"),
            Routed::Found(Route::DatasetDelete("ds-12ab".into()))
        );
        assert_eq!(
            route("POST", "/v1/sessions"),
            Routed::Found(Route::SessionCreate)
        );
        assert_eq!(route("GET", "/v1/methods"), Routed::Found(Route::Methods));
        assert_eq!(route("GET", "/v1/stats"), Routed::Found(Route::Stats));
        assert_eq!(route("GET", "/v1/version"), Routed::Found(Route::Version));
        assert_eq!(route("GET", "/metrics"), Routed::Found(Route::Metrics));
        assert_eq!(
            route("GET", "/v1/jobs/job-17/trace"),
            Routed::Found(Route::JobTrace("job-17".into()))
        );
        // Trailing slash tolerated.
        assert_eq!(route("GET", "/v1/stats/"), Routed::Found(Route::Stats));
    }

    #[test]
    fn wrong_method_is_distinguished_from_unknown_path() {
        assert_eq!(route("GET", "/v1/consensus"), Routed::MethodNotAllowed);
        assert_eq!(route("POST", "/v1/stats"), Routed::MethodNotAllowed);
        assert_eq!(route("GET", "/v1/datasets"), Routed::MethodNotAllowed);
        assert_eq!(route("POST", "/v1/datasets/ds-1"), Routed::MethodNotAllowed);
        assert_eq!(route("GET", "/v1/sessions"), Routed::MethodNotAllowed);
        assert_eq!(route("POST", "/metrics"), Routed::MethodNotAllowed);
        assert_eq!(route("POST", "/v1/version"), Routed::MethodNotAllowed);
        assert_eq!(
            route("POST", "/v1/jobs/job-1/trace"),
            Routed::MethodNotAllowed
        );
        assert_eq!(route("GET", "/v2/stats"), Routed::NotFound);
        assert_eq!(route("GET", "/v1/jobs"), Routed::NotFound);
        assert_eq!(route("GET", "/v1/jobs/job-1/nope"), Routed::NotFound);
        assert_eq!(route("GET", "/"), Routed::NotFound);
    }

    #[test]
    fn metrics_labels_cover_routes() {
        assert_eq!(Route::Consensus.metrics_label(), "consensus");
        assert_eq!(Route::Job("j".into()).metrics_label(), "jobs");
        assert_eq!(Route::DatasetCreate.metrics_label(), "datasets");
        assert_eq!(Route::DatasetGet("d".into()).metrics_label(), "datasets");
        assert_eq!(Route::DatasetDelete("d".into()).metrics_label(), "datasets");
        assert_eq!(
            Route::DatasetPatch("d".into()).metrics_label(),
            "dataset_patch"
        );
        assert_eq!(Route::SessionCreate.metrics_label(), "session");
        assert_eq!(Route::Stats.metrics_label(), "stats");
        assert_eq!(Route::JobTrace("j".into()).metrics_label(), "jobs");
        assert_eq!(Route::Version.metrics_label(), "version");
        assert_eq!(Route::Metrics.metrics_label(), "metrics");
    }
}
