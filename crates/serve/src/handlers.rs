//! HTTP adapter over the transport-agnostic [`mani_service::Service`] core.
//!
//! Everything behavioral — the response cache probe, engine submission and
//! backpressure, job tracking, dataset registration, stats and Prometheus
//! rendering — lives in `mani-service`. This module only does transport:
//! it resolves routes, negotiates body/response representations through
//! [`crate::codec`], maps [`ApiError`] kinds onto HTTP status codes, stamps
//! `x-request-id`, and frames streamed batches as chunked NDJSON.

use std::io::Write;
use std::sync::Arc;

use mani_engine::EngineConfig;
use mani_obs::Span;
pub use mani_service::ConsensusStream;
use mani_service::{
    decode_dataset, error_body, methods_value, parse_body, render, version_value, ApiError,
    ApiErrorKind, BuildInfo, ConsensusReply, EndpointMetrics, RequestContext, ResponseCache,
    Service, WhatIfSession,
};

use crate::codec::{
    api_error_response, check_accept, columnar_solve_params, negotiate_body, BodyCodec,
    JSON_CONTENT_TYPE, NDJSON_CONTENT_TYPE,
};
use crate::http::{ChunkedBody, ChunkedResponse, HttpError, HttpRequest, HttpResponse};
use crate::metrics::ServeCounters;
use crate::router::{route, Route, Routed};

/// Build identity this binary advertises on `/v1/version` and `/metrics`.
const BUILD_INFO: BuildInfo = BuildInfo {
    name: "mani-serve",
    version: env!("CARGO_PKG_VERSION"),
    git: option_env!("MANI_GIT_DESCRIBE"),
    profile: if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    },
    features: &[
        "std-only",
        "streaming-ndjson",
        "prometheus-metrics",
        "request-tracing",
    ],
};

/// The HTTP status an [`ApiError`] kind maps to. This is the single place
/// the service's transport-neutral error vocabulary meets HTTP's.
pub fn api_error_status(error: &ApiError) -> u16 {
    match error.kind {
        ApiErrorKind::InvalidArgument => 400,
        ApiErrorKind::NotFound => 404,
        ApiErrorKind::Conflict => 409,
        ApiErrorKind::UnsupportedMedia => 415,
        ApiErrorKind::NotAcceptable => 406,
        ApiErrorKind::Overloaded => 429,
        ApiErrorKind::Internal => 500,
    }
}

/// Outcome of dispatching one request: either a fully materialized response,
/// or a streaming consensus batch whose NDJSON lines are produced as jobs
/// complete (written with chunked framing by [`crate::server`]).
#[derive(Debug)]
pub enum Handled {
    /// A complete response, ready to serialize with a `Content-Length`.
    Response(HttpResponse),
    /// A `"stream": true` consensus batch: one NDJSON line per request, in
    /// completion order, plus a terminal summary line.
    Stream(ConsensusStream),
    /// A `POST /v1/sessions` what-if session: one NDJSON line per edit step
    /// (in order, each delta-derived from its predecessor), plus a terminal
    /// summary line.
    Session(WhatIfSession),
}

/// The HTTP front-end's per-server state: the shared [`Service`] core plus
/// the connection-pool counters only this transport tracks.
#[derive(Debug)]
pub struct AppState {
    service: Service,
    connections: ServeCounters,
}

/// Streamed NDJSON lines go straight to the chunked wire body, one flushed
/// chunk per line.
impl<W: Write> mani_service::StreamSink for ChunkedBody<'_, W> {
    type Error = std::io::Error;

    fn emit_line(&mut self, line: &str) -> Result<(), Self::Error> {
        self.write_chunk(line.as_bytes())
    }
}

impl AppState {
    /// Builds the state: a [`Service`] with `engine_config` and a response
    /// cache bounded to `cache_capacity` entries (`0` = default).
    pub fn new(engine_config: EngineConfig, cache_capacity: usize) -> Self {
        Self {
            service: Service::new(engine_config, cache_capacity),
            connections: ServeCounters::new(),
        }
    }

    /// The transport-agnostic service core.
    pub fn service(&self) -> &Service {
        &self.service
    }

    /// The underlying engine (used by tests and the server banner).
    pub fn engine(&self) -> &mani_engine::ConsensusEngine {
        self.service.engine()
    }

    /// The response cache (used by tests).
    pub fn response_cache(&self) -> &ResponseCache {
        self.service.response_cache()
    }

    /// The persisted dataset registry behind `/v1/datasets`.
    pub fn datasets(&self) -> &mani_service::DatasetRegistry {
        self.service.datasets()
    }

    /// Per-endpoint request latency histograms.
    pub fn metrics(&self) -> &EndpointMetrics {
        self.service.metrics()
    }

    /// Connection-pool counters (updated by [`crate::server`]).
    pub fn connections(&self) -> &ServeCounters {
        &self.connections
    }

    /// Dispatches one parsed HTTP request. Complete responses have their
    /// latency recorded immediately; a [`Handled::Stream`] records its
    /// latency (under `consensus_stream`) when the stream finishes, since its
    /// wall-clock spans the whole batch drain. Every response — buffered,
    /// streamed, or error — carries the request's `x-request-id` (accepted
    /// from the client or generated here).
    pub fn dispatch(&self, request: &HttpRequest) -> Handled {
        let ctx = RequestContext::new(request.header("x-request-id"));
        let routed = route(&request.method, &request.path);
        let label = match &routed {
            Routed::Found(found) => found.metrics_label(),
            Routed::NotFound | Routed::MethodNotAllowed => "other",
        };
        let outcome: Result<Handled, HttpResponse> = match routed {
            Routed::NotFound => Err(http_error_response(HttpError::new(
                404,
                format!("no such endpoint: {} {}", request.method, request.path),
            ))),
            Routed::MethodNotAllowed => Err(http_error_response(HttpError::new(
                405,
                format!("{} does not accept {}", request.path, request.method),
            ))),
            Routed::Found(Route::Consensus) => self.consensus(request, &ctx),
            Routed::Found(Route::Audit) => self.audit(request).map(Handled::Response),
            Routed::Found(Route::Job(id)) => json_outcome(self.service.job(&id)),
            Routed::Found(Route::JobTrace(id)) => json_outcome(self.service.job_trace(&id)),
            Routed::Found(Route::DatasetCreate) => {
                self.dataset_create(request).map(Handled::Response)
            }
            Routed::Found(Route::DatasetGet(id)) => json_outcome(self.service.dataset_get(&id)),
            Routed::Found(Route::DatasetPatch(id)) => self.dataset_patch(request, &id),
            Routed::Found(Route::DatasetDelete(id)) => {
                json_outcome(self.service.dataset_delete(&id))
            }
            Routed::Found(Route::SessionCreate) => self.session_create(request, &ctx),
            Routed::Found(Route::Methods) => Ok(Handled::Response(HttpResponse::json(
                200,
                render(&methods_value()),
            ))),
            Routed::Found(Route::Stats) => Ok(Handled::Response(HttpResponse::json(
                200,
                render(&self.service.stats(&self.connections.snapshot().into())),
            ))),
            Routed::Found(Route::Version) => Ok(Handled::Response(HttpResponse::json(
                200,
                render(&version_value(&BUILD_INFO)),
            ))),
            Routed::Found(Route::Metrics) => Ok(Handled::Response(HttpResponse {
                status: 200,
                content_type: "text/plain; version=0.0.4; charset=utf-8",
                extra_headers: Vec::new(),
                body: self
                    .service
                    .metrics_exposition(&BUILD_INFO, &self.connections.snapshot().into()),
            })),
        };
        let response = match outcome {
            // Streams carry their context; their latency, access-log line,
            // and header stamp happen when the drain finishes.
            Ok(Handled::Stream(stream)) => return Handled::Stream(stream),
            Ok(Handled::Session(session)) => return Handled::Session(session),
            Ok(Handled::Response(response)) => response,
            Err(response) => response,
        };
        Handled::Response(self.finish_request(request, label, &ctx, response))
    }

    /// Completes one buffered exchange: records its latency, emits the
    /// access-log line, offers it to the slow ring, and stamps
    /// `x-request-id` onto the response.
    fn finish_request(
        &self,
        request: &HttpRequest,
        label: &'static str,
        ctx: &RequestContext,
        response: HttpResponse,
    ) -> HttpResponse {
        let elapsed = ctx.trace().age();
        self.service.metrics().record(label, elapsed);
        self.service.observe(
            label,
            format!("{} {}", request.method, request.path),
            ctx.id().to_string(),
            ctx.trace(),
            response.status,
            elapsed,
        );
        response.with_header("x-request-id", ctx.id().to_string())
    }

    /// Dispatches one request to a fully buffered [`HttpResponse`]: a
    /// [`Handled::Stream`] is drained into one NDJSON body. Embedding callers
    /// (and unit tests) use this; the server's connection loop uses
    /// [`AppState::dispatch`] so streamed lines hit the wire incrementally.
    pub fn handle(&self, request: &HttpRequest) -> HttpResponse {
        match self.dispatch(request) {
            Handled::Response(response) => response,
            Handled::Stream(stream) => self.collect_stream(stream),
            Handled::Session(session) => self.collect_session(session),
        }
    }

    /// Writes a [`ConsensusStream`] as a chunked NDJSON response, one chunk
    /// per line as completions land, recording the stream's total latency.
    pub fn stream_ndjson<W: Write>(
        &self,
        stream: ConsensusStream,
        writer: &mut W,
        keep_alive: bool,
    ) -> std::io::Result<()> {
        let started = stream.started();
        let request_id = stream.request_id().to_string();
        let trace = Arc::clone(stream.trace());
        let result = (|| {
            let mut body = ChunkedResponse::ndjson(200)
                .with_header("x-request-id", request_id.clone())
                .begin(writer, keep_alive)?;
            self.service.stream_consensus(stream, &mut body)?;
            body.finish()
        })();
        let elapsed = started.elapsed();
        self.service.metrics().record("consensus_stream", elapsed);
        self.service.observe(
            "consensus_stream",
            "POST /v1/consensus".to_string(),
            request_id,
            &trace,
            200,
            elapsed,
        );
        result
    }

    /// Writes a [`WhatIfSession`] as a chunked NDJSON response, one chunk per
    /// edit step as its consensus lands, recording the session's total
    /// latency under the `session` label.
    pub fn stream_session_ndjson<W: Write>(
        &self,
        session: WhatIfSession,
        writer: &mut W,
        keep_alive: bool,
    ) -> std::io::Result<()> {
        let started = session.started();
        let request_id = session.request_id().to_string();
        let trace = Arc::clone(session.trace());
        let result = (|| {
            let mut body = ChunkedResponse::ndjson(200)
                .with_header("x-request-id", request_id.clone())
                .begin(writer, keep_alive)?;
            self.service.stream_session(session, &mut body)?;
            body.finish()
        })();
        let elapsed = started.elapsed();
        self.service.metrics().record("session", elapsed);
        self.service.observe(
            "session",
            "POST /v1/sessions".to_string(),
            request_id,
            &trace,
            200,
            elapsed,
        );
        result
    }

    /// Drains a [`WhatIfSession`] into one buffered NDJSON response.
    fn collect_session(&self, session: WhatIfSession) -> HttpResponse {
        let started = session.started();
        let request_id = session.request_id().to_string();
        let trace = Arc::clone(session.trace());
        let mut body = String::new();
        match self.service.stream_session(session, &mut body) {
            Ok(()) => {}
            Err(never) => match never {},
        }
        let elapsed = started.elapsed();
        self.service.metrics().record("session", elapsed);
        self.service.observe(
            "session",
            "POST /v1/sessions".to_string(),
            request_id.clone(),
            &trace,
            200,
            elapsed,
        );
        HttpResponse {
            status: 200,
            content_type: NDJSON_CONTENT_TYPE,
            extra_headers: vec![("x-request-id", request_id)],
            body,
        }
    }

    /// Drains a [`ConsensusStream`] into one buffered NDJSON response.
    fn collect_stream(&self, stream: ConsensusStream) -> HttpResponse {
        let started = stream.started();
        let request_id = stream.request_id().to_string();
        let trace = Arc::clone(stream.trace());
        let mut body = String::new();
        match self.service.stream_consensus(stream, &mut body) {
            Ok(()) => {}
            Err(never) => match never {},
        }
        let elapsed = started.elapsed();
        self.service.metrics().record("consensus_stream", elapsed);
        self.service.observe(
            "consensus_stream",
            "POST /v1/consensus".to_string(),
            request_id.clone(),
            &trace,
            200,
            elapsed,
        );
        HttpResponse {
            status: 200,
            content_type: NDJSON_CONTENT_TYPE,
            extra_headers: vec![("x-request-id", request_id)],
            body,
        }
    }

    /// `POST /v1/consensus` — single spec or `{"requests": [...]}` batch in
    /// JSON, or one columnar dataset body with solve parameters on the query
    /// string. Buffered by default, `202` for async submissions, streamed
    /// NDJSON when streaming is requested.
    fn consensus(
        &self,
        request: &HttpRequest,
        ctx: &RequestContext,
    ) -> Result<Handled, HttpResponse> {
        check_accept(request)?;
        let reply = match negotiate_body(request)? {
            BodyCodec::Json => {
                let text = request.body_utf8().map_err(http_error_response)?;
                let body = parse_body(text).map_err(|e| api_error_response(&e))?;
                self.service
                    .consensus(&body, ctx)
                    .map_err(|e| api_error_response(&e))?
            }
            BodyCodec::Columnar => {
                let params = {
                    let _parse = Span::enter(ctx.trace(), "parse");
                    let dataset =
                        decode_dataset(&request.body).map_err(|e| api_error_response(&e))?;
                    columnar_solve_params(dataset, request.query.as_deref())
                        .map_err(|e| api_error_response(&e))?
                };
                self.service
                    .consensus_specs(vec![params.spec], true, params.wait, params.stream, ctx)
                    .map_err(|e| api_error_response(&e))?
            }
        };
        Ok(match reply {
            ConsensusReply::Complete(body) => {
                Handled::Response(HttpResponse::json(200, render(&body)))
            }
            ConsensusReply::Accepted(body) => {
                Handled::Response(HttpResponse::json(202, render(&body)))
            }
            ConsensusReply::Stream(stream) => Handled::Stream(stream),
        })
    }

    /// `POST /v1/audit` — JSON only (an audit references a dataset by value
    /// or id; there is no columnar audit document).
    fn audit(&self, request: &HttpRequest) -> Result<HttpResponse, HttpResponse> {
        check_accept(request)?;
        if negotiate_body(request)? == BodyCodec::Columnar {
            return Err(api_error_response(&ApiError::new(
                ApiErrorKind::UnsupportedMedia,
                format!("audit accepts `{JSON_CONTENT_TYPE}` bodies only"),
            )));
        }
        let text = request.body_utf8().map_err(http_error_response)?;
        let body = parse_body(text).map_err(|e| api_error_response(&e))?;
        self.service
            .audit(&body)
            .map(|value| HttpResponse::json(200, render(&value)))
            .map_err(|e| api_error_response(&e))
    }

    /// `PATCH /v1/datasets/{id}` — apply ranking edits (appends/retracts) to
    /// the current version, delta-deriving the next version's precedence
    /// matrix. JSON only: an edit document is a list of ops, not a dataset.
    fn dataset_patch(&self, request: &HttpRequest, id: &str) -> Result<Handled, HttpResponse> {
        check_accept(request)?;
        if negotiate_body(request)? == BodyCodec::Columnar {
            return Err(api_error_response(&ApiError::new(
                ApiErrorKind::UnsupportedMedia,
                format!("dataset edits accept `{JSON_CONTENT_TYPE}` bodies only"),
            )));
        }
        let text = request.body_utf8().map_err(http_error_response)?;
        let body = parse_body(text).map_err(|e| api_error_response(&e))?;
        json_outcome(self.service.dataset_patch(id, &body))
    }

    /// `POST /v1/sessions` — a live what-if session: validates the base spec
    /// and every edit up front, then streams one consensus line per edit as
    /// chunked NDJSON. JSON only.
    fn session_create(
        &self,
        request: &HttpRequest,
        ctx: &RequestContext,
    ) -> Result<Handled, HttpResponse> {
        check_accept(request)?;
        if negotiate_body(request)? == BodyCodec::Columnar {
            return Err(api_error_response(&ApiError::new(
                ApiErrorKind::UnsupportedMedia,
                format!("sessions accept `{JSON_CONTENT_TYPE}` bodies only"),
            )));
        }
        let text = request.body_utf8().map_err(http_error_response)?;
        let body = parse_body(text).map_err(|e| api_error_response(&e))?;
        self.service
            .session(&body, ctx)
            .map(Handled::Session)
            .map_err(|e| api_error_response(&e))
    }

    /// `POST /v1/datasets` — register a dataset from a JSON document or a
    /// columnar body. Ids are content fingerprints, so the same rows register
    /// idempotently in either representation.
    fn dataset_create(&self, request: &HttpRequest) -> Result<HttpResponse, HttpResponse> {
        check_accept(request)?;
        let registered = match negotiate_body(request)? {
            BodyCodec::Json => {
                let text = request.body_utf8().map_err(http_error_response)?;
                let body = parse_body(text).map_err(|e| api_error_response(&e))?;
                self.service.dataset_create(&body)
            }
            BodyCodec::Columnar => decode_dataset(&request.body)
                .and_then(|dataset| self.service.register_dataset(dataset)),
        };
        registered
            .map(|value| HttpResponse::json(200, render(&value)))
            .map_err(|e| api_error_response(&e))
    }
}

/// Renders a transport-level [`HttpError`] as the JSON error envelope
/// (status `0` marks a closed connection and degrades to `400` here).
fn http_error_response(error: HttpError) -> HttpResponse {
    HttpResponse::json(
        if error.status == 0 { 400 } else { error.status },
        error_body(&error.message),
    )
}

/// Maps a service operation's result onto a buffered 200-or-error outcome.
fn json_outcome(result: Result<serde::Value, ApiError>) -> Result<Handled, HttpResponse> {
    result
        .map(|value| Handled::Response(HttpResponse::json(200, render(&value))))
        .map_err(|e| api_error_response(&e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{delete, demo_consensus_body, demo_dataset_json, get, post};
    use mani_service::{dataset_to_value, encode_dataset, parse_dataset, COLUMNAR_CONTENT_TYPE};
    use serde::Value;
    use std::time::Instant;

    fn state() -> AppState {
        AppState::new(
            EngineConfig {
                threads: 2,
                ..EngineConfig::default()
            },
            16,
        )
    }

    /// A columnar-encoded POST carrying the demo dataset named `name`.
    fn columnar_post(path: &str, query: Option<&str>, name: &str) -> HttpRequest {
        let dataset = parse_dataset(&parse_body(&demo_dataset_json(name)).unwrap()).unwrap();
        HttpRequest {
            method: "POST".into(),
            path: path.into(),
            query: query.map(str::to_string),
            headers: vec![("content-type".into(), COLUMNAR_CONTENT_TYPE.into())],
            body: encode_dataset(&dataset),
            minor_version: 1,
        }
    }

    #[test]
    fn consensus_wait_and_cache_replay() {
        let state = state();
        let first = state.handle(&post("/v1/consensus", &demo_consensus_body(0.2, true)));
        assert_eq!(first.status, 200, "{}", first.body);
        assert!(first.body.contains("\"cached\":false"));
        assert!(first.body.contains("\"ranking\""));
        let builds_after_first = state.engine().cache().stats().builds;
        assert_eq!(builds_after_first, 1);

        let second = state.handle(&post("/v1/consensus", &demo_consensus_body(0.2, true)));
        assert_eq!(second.status, 200);
        assert!(second.body.contains("\"cached\":true"), "{}", second.body);
        assert_eq!(
            state.engine().cache().stats().builds,
            builds_after_first,
            "replay must not build another precedence matrix"
        );
        assert_eq!(
            state.engine().stats().submitted,
            1,
            "replay must not reach the engine queue"
        );
    }

    #[test]
    fn async_job_lifecycle_via_poll() {
        let state = state();
        let accepted = state.handle(&post("/v1/consensus", &demo_consensus_body(0.25, false)));
        assert_eq!(accepted.status, 202, "{}", accepted.body);
        assert!(accepted.body.contains("\"poll\":\"/v1/jobs/job-1\""));

        // Poll until done (tiny dataset: effectively immediate).
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let polled = state.handle(&get("/v1/jobs/job-1"));
            assert_eq!(polled.status, 200, "{}", polled.body);
            if polled.body.contains("\"status\":\"done\"") {
                assert!(polled.body.contains("\"ranking\""));
                break;
            }
            assert!(Instant::now() < deadline, "job never completed");
            std::thread::yield_now();
        }
        // Completion populated the response cache: replay is served cached.
        let replay = state.handle(&post("/v1/consensus", &demo_consensus_body(0.25, true)));
        assert_eq!(replay.status, 200);
        assert!(replay.body.contains("\"cached\":true"), "{}", replay.body);
    }

    #[test]
    fn stream_mode_emits_ndjson_lines_and_summary() {
        let state = state();
        let body = format!(
            r#"{{"requests": [{}, {}], "stream": true}}"#,
            crate::test_support::demo_dataset_consensus_spec("one", 0.2),
            crate::test_support::demo_dataset_consensus_spec("two", 0.3),
        );
        let response = state.handle(&post("/v1/consensus", &body));
        assert_eq!(response.status, 200, "{}", response.body);
        assert_eq!(response.content_type, "application/x-ndjson");
        let lines: Vec<&str> = response.body.lines().collect();
        assert_eq!(
            lines.len(),
            3,
            "two result lines + summary: {}",
            response.body
        );
        for line in &lines[..2] {
            let parsed = parse_body(line).unwrap();
            assert!(parsed.get("index").is_some(), "{line}");
            assert!(
                matches!(parsed.get("job_id"), Some(Value::String(_))),
                "solved lines carry a job id: {line}"
            );
            assert!(
                parsed.get("ranking").is_none(),
                "results nest under results"
            );
            assert!(parsed.get("results").is_some(), "{line}");
        }
        let summary = parse_body(lines[2]).unwrap();
        assert_eq!(summary.get("summary"), Some(&Value::Bool(true)));
        assert_eq!(summary.get("requests"), Some(&Value::UInt(2)));
        assert_eq!(summary.get("completed"), Some(&Value::UInt(2)));
        assert_eq!(summary.get("errors"), Some(&Value::UInt(0)));

        // Streamed results populated the response cache: the same batch
        // replayed non-streaming comes back cached, and a streamed replay
        // marks its lines cached with a null job id.
        let replayed = state.handle(&post("/v1/consensus", &body));
        assert_eq!(replayed.status, 200);
        let first = parse_body(replayed.body.lines().next().unwrap()).unwrap();
        assert_eq!(first.get("cached"), Some(&Value::Bool(true)));
        assert_eq!(first.get("job_id"), Some(&Value::Null));
        assert_eq!(
            state.engine().stats().submitted,
            2,
            "the replay must not resubmit jobs"
        );
        // Streaming batch counters surface in /v1/stats.
        let stats = state.handle(&get("/v1/stats"));
        assert!(stats.body.contains("\"streaming\""), "{}", stats.body);
        assert!(
            stats.body.contains("\"batches_opened\":1"),
            "{}",
            stats.body
        );
    }

    #[test]
    fn stream_and_wait_are_mutually_exclusive() {
        let state = state();
        let body = format!(
            r#"{{"requests": [{}], "stream": true, "wait": true}}"#,
            crate::test_support::demo_dataset_consensus_spec("x", 0.2),
        );
        let response = state.handle(&post("/v1/consensus", &body));
        assert_eq!(response.status, 400, "{}", response.body);
        assert!(response.body.contains("mutually exclusive"));
    }

    #[test]
    fn unknown_job_and_bad_ids_are_client_errors() {
        let state = state();
        assert_eq!(state.handle(&get("/v1/jobs/job-99")).status, 404);
        assert_eq!(state.handle(&get("/v1/jobs/banana")).status, 400);
    }

    #[test]
    fn methods_and_stats_render() {
        let state = state();
        let methods = state.handle(&get("/v1/methods"));
        assert_eq!(methods.status, 200);
        assert!(methods.body.contains("Fair-Borda"));
        assert!(methods.body.contains("(B1) Kemeny"));
        let stats = state.handle(&get("/v1/stats"));
        assert_eq!(stats.status, 200, "{}", stats.body);
        assert!(stats.body.contains("\"precedence_cache\""));
        assert!(stats.body.contains("\"response_cache\""));
        assert!(stats.body.contains("\"queue_depth\""));
        assert!(stats.body.contains("\"kernels\""));
        assert!(stats.body.contains("\"matrix_build_ns\""));
        assert!(stats.body.contains("\"nodes_expanded\""));
        assert!(stats.body.contains("\"kernel_threads\""));
        assert!(stats.body.contains("\"kernel_tile_size\""));
        assert!(stats.body.contains("\"fw_blocked_solves\""));
        assert!(stats.body.contains("\"fw_tiles_relaxed\""));
        assert!(stats.body.contains("\"pair_shard_tasks\""));
        assert!(stats.body.contains("\"ranking_shard_tasks\""));
    }

    #[test]
    fn dataset_endpoints_round_trip() {
        let state = state();
        let up = state.handle(&post("/v1/datasets", &demo_dataset_json("reg")));
        assert_eq!(up.status, 200, "{}", up.body);
        let parsed = parse_body(&up.body).unwrap();
        let id = parsed
            .get("id")
            .and_then(Value::as_str)
            .expect("dataset id")
            .to_string();
        assert!(id.starts_with("ds-"), "{id}");
        assert!(up.body.contains("\"created\":true"));

        // Re-uploading identical content (wrapped form) is idempotent.
        let wrapped = format!(r#"{{"dataset": {}}}"#, demo_dataset_json("other-name"));
        let again = state.handle(&post("/v1/datasets", &wrapped));
        assert_eq!(again.status, 200);
        assert!(again.body.contains(&id), "{}", again.body);
        assert!(again.body.contains("\"created\":false"));

        let meta = state.handle(&get(&format!("/v1/datasets/{id}")));
        assert_eq!(meta.status, 200, "{}", meta.body);
        assert!(meta.body.contains("\"candidates\":4"));
        assert!(meta.body.contains("\"attributes\":[\"G\"]"));

        // Solve by reference instead of re-posting the rows.
        let by_id = format!(
            r#"{{"dataset_id": "{id}", "methods": ["Fair-Borda"], "delta": 0.2, "wait": true}}"#
        );
        let solved = state.handle(&post("/v1/consensus", &by_id));
        assert_eq!(solved.status, 200, "{}", solved.body);
        assert!(solved.body.contains("\"ranking\""));

        let gone = state.handle(&delete(&format!("/v1/datasets/{id}")));
        assert_eq!(gone.status, 200);
        assert!(gone.body.contains("\"deleted\":true"));
        assert_eq!(
            state.handle(&get(&format!("/v1/datasets/{id}"))).status,
            404
        );
        assert_eq!(
            state.handle(&delete(&format!("/v1/datasets/{id}"))).status,
            404
        );
        assert_eq!(state.handle(&post("/v1/consensus", &by_id)).status, 404);
    }

    #[test]
    fn stats_report_latency_histograms_and_server_counters() {
        let state = state();
        state.handle(&get("/v1/methods"));
        let first = state.handle(&post("/v1/consensus", &demo_consensus_body(0.2, true)));
        assert_eq!(first.status, 200);
        let stats = state.handle(&get("/v1/stats"));
        assert_eq!(stats.status, 200, "{}", stats.body);
        let parsed = parse_body(&stats.body).unwrap();
        let latency = parsed.get("latency").expect("latency section");
        let count = |endpoint: &str| match latency.get(endpoint).and_then(|h| h.get("count")) {
            Some(Value::UInt(u)) => *u,
            other => panic!("missing count for {endpoint}: {other:?}"),
        };
        assert_eq!(count("consensus"), 1);
        assert_eq!(count("methods"), 1);
        assert_eq!(count("stats"), 0, "recorded after the response renders");
        let buckets = latency
            .get("consensus")
            .and_then(|h| h.get("buckets"))
            .and_then(Value::as_array)
            .expect("bucket array");
        let total: u64 = buckets
            .iter()
            .map(|b| match b {
                Value::UInt(u) => *u,
                other => panic!("non-integer bucket {other:?}"),
            })
            .sum();
        assert_eq!(total, 1, "bucket counts must sum to the sample count");
        assert!(stats.body.contains("\"server\""));
        assert!(stats.body.contains("\"datasets_registered\":0"));
    }

    fn header_of<'a>(response: &'a HttpResponse, name: &str) -> Option<&'a str> {
        response
            .extra_headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    #[test]
    fn request_ids_echo_and_generate() {
        let state = state();
        // A well-formed incoming id is echoed back verbatim.
        let mut request = get("/v1/methods");
        request
            .headers
            .push(("x-request-id".to_string(), "client-abc.1".to_string()));
        let response = state.handle(&request);
        assert_eq!(header_of(&response, "x-request-id"), Some("client-abc.1"));

        // Missing id: one is generated — also on error responses.
        let err = state.handle(&get("/nope"));
        assert_eq!(err.status, 404);
        let generated = header_of(&err, "x-request-id").expect("id on 404");
        assert!(generated.starts_with("req-"), "{generated}");

        // Malformed (spaces) id is replaced, not echoed.
        let mut bad = get("/v1/methods");
        bad.headers
            .push(("x-request-id".to_string(), "has spaces".to_string()));
        let replaced = state.handle(&bad);
        let id = header_of(&replaced, "x-request-id").expect("replacement id");
        assert!(id.starts_with("req-"), "{id}");
    }

    #[test]
    fn version_and_metrics_endpoints_render() {
        let state = state();
        let version = state.handle(&get("/v1/version"));
        assert_eq!(version.status, 200, "{}", version.body);
        assert!(version.body.contains("\"version\""), "{}", version.body);
        assert!(version.body.contains("\"profile\""), "{}", version.body);
        assert!(version.body.contains("\"features\""), "{}", version.body);

        let solved = state.handle(&post("/v1/consensus", &demo_consensus_body(0.2, true)));
        assert_eq!(solved.status, 200);
        let metrics = state.handle(&get("/metrics"));
        assert_eq!(metrics.status, 200);
        assert!(metrics.content_type.starts_with("text/plain"));
        assert!(
            metrics
                .body
                .contains("# TYPE mani_http_request_duration_seconds histogram"),
            "{}",
            metrics.body
        );
        assert!(
            metrics
                .body
                .contains("mani_http_requests_total{endpoint=\"consensus\"} 1"),
            "{}",
            metrics.body
        );
        assert!(
            metrics.body.contains("mani_engine_jobs_submitted_total 1"),
            "{}",
            metrics.body
        );
        assert!(metrics.body.contains("le=\"+Inf\""), "{}", metrics.body);
        assert!(metrics.body.contains("mani_uptime_seconds"));
        assert!(metrics.body.contains("mani_pool_tasks_executed_total"));
        assert!(metrics.body.contains("mani_kernel_fw_blocked_solves_total"));
        assert!(metrics.body.contains("mani_kernel_fw_tiles_relaxed_total"));
        assert!(metrics.body.contains("mani_kernel_pair_shard_tasks_total"));
        assert!(metrics
            .body
            .contains("mani_kernel_ranking_shard_tasks_total"));
        assert!(metrics
            .body
            .contains("mani_precedence_cache_builds_total 1"));
    }

    #[test]
    fn job_trace_reports_each_phase_once_within_wall_time() {
        let state = state();
        let accepted = state.handle(&post("/v1/consensus", &demo_consensus_body(0.25, false)));
        assert_eq!(accepted.status, 202, "{}", accepted.body);
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let polled = state.handle(&get("/v1/jobs/job-1"));
            if polled.body.contains("\"status\":\"done\"") {
                break;
            }
            assert!(Instant::now() < deadline, "job never completed");
            std::thread::yield_now();
        }
        let trace = state.handle(&get("/v1/jobs/job-1/trace"));
        assert_eq!(trace.status, 200, "{}", trace.body);
        let parsed = parse_body(&trace.body).unwrap();
        assert!(
            matches!(parsed.get("request_id"), Some(Value::String(_))),
            "{}",
            trace.body
        );
        let as_f64 = |value: &Value| match value {
            Value::Float(f) => *f,
            Value::UInt(u) => *u as f64,
            Value::Int(i) => *i as f64,
            other => panic!("not a number: {other:?}"),
        };
        let age_ms = as_f64(parsed.get("age_ms").expect("age_ms"));
        let span_ms = as_f64(parsed.get("span_ms").expect("span_ms"));
        assert!(span_ms <= age_ms, "span {span_ms} > age {age_ms}");
        let phases = parsed
            .get("phases")
            .and_then(Value::as_array)
            .expect("phases");
        let mut names = Vec::new();
        let mut total_ms = 0.0;
        for phase in phases {
            names.push(
                phase
                    .get("name")
                    .and_then(Value::as_str)
                    .expect("phase name")
                    .to_string(),
            );
            total_ms += as_f64(phase.get("duration_ms").expect("duration"));
        }
        for expected in ["queue_wait", "solve"] {
            assert_eq!(
                names.iter().filter(|n| *n == expected).count(),
                1,
                "{names:?}"
            );
        }
        let unique: std::collections::HashSet<&String> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "each phase once: {names:?}");
        assert!(
            total_ms <= age_ms,
            "sequential phases exceed wall: {total_ms} > {age_ms}"
        );

        // Unknown and malformed ids behave like the job endpoint.
        assert_eq!(state.handle(&get("/v1/jobs/job-99/trace")).status, 404);
        assert_eq!(state.handle(&get("/v1/jobs/banana/trace")).status, 400);
    }

    #[test]
    fn stats_expose_slow_requests_with_phases() {
        let state = state();
        let solved = state.handle(&post("/v1/consensus", &demo_consensus_body(0.2, true)));
        assert_eq!(solved.status, 200);
        let stats = state.handle(&get("/v1/stats"));
        let parsed = parse_body(&stats.body).unwrap();
        let slow = parsed
            .get("slow_requests")
            .and_then(Value::as_array)
            .expect("slow_requests");
        assert!(!slow.is_empty(), "{}", stats.body);
        let consensus_entry = slow
            .iter()
            .find(|e| e.get("endpoint").and_then(Value::as_str) == Some("consensus"))
            .expect("consensus slow entry");
        assert_eq!(
            consensus_entry.get("target").and_then(Value::as_str),
            Some("POST /v1/consensus")
        );
        let phases = consensus_entry.get("phases").expect("phases");
        assert!(phases.get("parse").is_some(), "{}", stats.body);
        assert!(phases.get("wait").is_some(), "{}", stats.body);
        assert!(stats.body.contains("\"uptime_seconds\""), "{}", stats.body);
    }

    #[test]
    fn router_misses_map_to_http_statuses() {
        let state = state();
        assert_eq!(state.handle(&get("/nope")).status, 404);
        assert_eq!(state.handle(&get("/v1/consensus")).status, 405);
        let bad = state.handle(&post("/v1/consensus", "{not json"));
        assert_eq!(bad.status, 400);
        assert!(bad.body.contains("error"));
    }

    #[test]
    fn audit_reports_groups() {
        let state = state();
        let body = r#"{
            "dataset": {
                "name": "aud",
                "candidates": [
                    {"name": "a", "attributes": {"G": "x"}},
                    {"name": "b", "attributes": {"G": "y"}},
                    {"name": "c", "attributes": {"G": "x"}},
                    {"name": "d", "attributes": {"G": "y"}}
                ],
                "rankings": [["a","b","c","d"], ["b","a","d","c"]]
            },
            "per_ranking": true
        }"#;
        let response = state.handle(&post("/v1/audit", body));
        assert_eq!(response.status, 200, "{}", response.body);
        assert!(response.body.contains("\"consensus\""));
        assert!(response.body.contains("\"unconstrained\""));
        assert!(response.body.contains("ranking-1"));
    }

    #[test]
    fn unsupported_content_types_get_415_envelopes() {
        let state = state();
        for path in ["/v1/consensus", "/v1/datasets", "/v1/audit"] {
            let mut request = post(path, "<xml/>");
            request.headers.clear();
            request
                .headers
                .push(("content-type".to_string(), "text/xml".to_string()));
            let response = state.handle(&request);
            assert_eq!(response.status, 415, "{path}: {}", response.body);
            assert!(response.body.contains("\"error\""), "{}", response.body);
            assert!(
                response.body.contains("\"supported\""),
                "{path}: {}",
                response.body
            );
            assert!(
                header_of(&response, "x-request-id").is_some(),
                "415s still carry request ids"
            );
        }
        // Audit refuses columnar specifically (no columnar audit document).
        let columnar_audit = columnar_post("/v1/audit", None, "aud");
        let refused = state.handle(&columnar_audit);
        assert_eq!(refused.status, 415, "{}", refused.body);
        assert!(refused.body.contains("audit accepts"), "{}", refused.body);
    }

    #[test]
    fn unacceptable_accept_headers_get_406() {
        let state = state();
        let mut request = post("/v1/consensus", &demo_consensus_body(0.2, true));
        request
            .headers
            .push(("accept".to_string(), "text/html".to_string()));
        let response = state.handle(&request);
        assert_eq!(response.status, 406, "{}", response.body);
        assert!(response.body.contains("\"produces\""), "{}", response.body);
    }

    #[test]
    fn columnar_consensus_matches_json_bit_for_bit() {
        let state = state();
        // Solve the JSON twin first: its results land in the response cache
        // keyed by the dataset fingerprint.
        let json_solved = state.handle(&post(
            "/v1/consensus",
            &format!(
                r#"{{"dataset": {}, "methods": ["Fair-Borda"], "delta": 0.2, "wait": true}}"#,
                demo_dataset_json("demo")
            ),
        ));
        assert_eq!(json_solved.status, 200, "{}", json_solved.body);

        // The columnar upload of the same rows shares the fingerprint, so it
        // replays from the cache without touching the engine.
        let request = columnar_post(
            "/v1/consensus",
            Some("methods=Fair-Borda&delta=0.2&wait=true"),
            "demo",
        );
        let columnar_solved = state.handle(&request);
        assert_eq!(columnar_solved.status, 200, "{}", columnar_solved.body);
        assert!(
            columnar_solved.body.contains("\"cached\":true"),
            "columnar twin must replay the JSON-warmed cache: {}",
            columnar_solved.body
        );
        assert_eq!(
            state.engine().stats().submitted,
            1,
            "the columnar replay must not resubmit"
        );
        // And the method payloads are bit-identical modulo the cache flag.
        let strip = |body: &str| {
            body.replace("\"cached\":true", "")
                .replace("\"cached\":false", "")
        };
        let json_results = parse_body(&json_solved.body).unwrap();
        let columnar_results = parse_body(&columnar_solved.body).unwrap();
        let ranking_of = |v: &Value| {
            render(
                v.get("results")
                    .and_then(Value::as_array)
                    .and_then(|a| a.first())
                    .and_then(|r| r.get("ranking"))
                    .expect("ranking"),
            )
        };
        assert_eq!(ranking_of(&json_results), ranking_of(&columnar_results));
        let _ = strip;
    }

    #[test]
    fn columnar_dataset_upload_is_idempotent_with_json() {
        let state = state();
        let json_up = state.handle(&post("/v1/datasets", &demo_dataset_json("reg")));
        assert_eq!(json_up.status, 200, "{}", json_up.body);
        let id = parse_body(&json_up.body)
            .unwrap()
            .get("id")
            .and_then(Value::as_str)
            .unwrap()
            .to_string();

        let columnar_up = state.handle(&columnar_post("/v1/datasets", None, "reg"));
        assert_eq!(columnar_up.status, 200, "{}", columnar_up.body);
        assert!(
            columnar_up.body.contains(&id),
            "columnar twin registers under the same content id: {}",
            columnar_up.body
        );
        assert!(columnar_up.body.contains("\"created\":false"));
    }

    #[test]
    fn columnar_bodies_reject_hostile_and_unknown_params() {
        let state = state();
        // Truncated document.
        let mut request = columnar_post("/v1/consensus", Some("wait=true"), "demo");
        request.body.truncate(10);
        let response = state.handle(&request);
        assert_eq!(response.status, 400, "{}", response.body);

        // Unknown query parameter fails loudly.
        let response = state.handle(&columnar_post("/v1/consensus", Some("detla=0.2"), "demo"));
        assert_eq!(response.status, 400, "{}", response.body);
        assert!(
            response.body.contains("unknown query parameter"),
            "{}",
            response.body
        );
    }

    #[test]
    fn columnar_round_trips_through_dataset_to_value() {
        let dataset = parse_dataset(&parse_body(&demo_dataset_json("rt")).unwrap()).unwrap();
        let twin = parse_dataset(&dataset_to_value(&dataset)).unwrap();
        assert_eq!(dataset.fingerprint(), twin.fingerprint());
    }

    /// Uploads the demo dataset and returns its registered id.
    fn upload_demo(state: &AppState) -> String {
        let up = state.handle(&post("/v1/datasets", &demo_dataset_json("demo")));
        assert_eq!(up.status, 200, "{}", up.body);
        parse_body(&up.body)
            .unwrap()
            .get("id")
            .and_then(Value::as_str)
            .expect("dataset id")
            .to_string()
    }

    #[test]
    fn dataset_patch_bumps_versions_and_maps_conflicts_to_409() {
        let state = state();
        let id = upload_demo(&state);
        // Warm the precedence matrix so the patch delta-derives.
        let warm = state.handle(&post(
            "/v1/consensus",
            &format!(
                r#"{{"dataset": {{"id": "{id}"}}, "methods": ["Fair-Borda"], "delta": 0.2, "wait": true}}"#
            ),
        ));
        assert_eq!(warm.status, 200, "{}", warm.body);

        let edit = r#"{"ops": [{"op": "append", "ranking": ["d","a","b","c"], "weight": 2}]}"#;
        let patched = state.handle(&crate::test_support::patch(
            &format!("/v1/datasets/{id}"),
            edit,
        ));
        assert_eq!(patched.status, 200, "{}", patched.body);
        assert!(patched.body.contains("\"version\":2"), "{}", patched.body);
        assert!(
            patched.body.contains("\"derived\":true"),
            "{}",
            patched.body
        );
        assert!(patched.body.contains("\"appends\":2"), "{}", patched.body);

        // An over-weighted retract is a 400 and leaves the version alone.
        let bad = state.handle(&crate::test_support::patch(
            &format!("/v1/datasets/{id}"),
            r#"{"ops": [{"op": "retract", "ranking": ["a","b","c","d"], "weight": 99}]}"#,
        ));
        assert_eq!(bad.status, 400, "{}", bad.body);
        let meta = state.handle(&get(&format!("/v1/datasets/{id}")));
        assert!(meta.body.contains("\"version\":2"), "{}", meta.body);

        // Unknown ids and columnar bodies are refused.
        assert_eq!(
            state
                .handle(&crate::test_support::patch("/v1/datasets/ds-0000", edit))
                .status,
            404
        );
        let mut columnar = columnar_post(&format!("/v1/datasets/{id}"), None, "demo");
        columnar.method = "PATCH".into();
        assert_eq!(state.handle(&columnar).status, 415);

        // Edit past the retention window: pinning the evicted version 1 is a
        // 409 Conflict (it existed; its rankings are no longer addressable).
        for round in 0..mani_service::MAX_RETAINED_VERSIONS {
            let next = state.handle(&crate::test_support::patch(
                &format!("/v1/datasets/{id}"),
                r#"{"ops": [{"op": "append", "ranking": ["b","a","d","c"]}]}"#,
            ));
            assert_eq!(next.status, 200, "round {round}: {}", next.body);
        }
        let evicted = state.handle(&post(
            "/v1/consensus",
            &format!(
                r#"{{"dataset": {{"id": "{id}", "version": 1}}, "methods": ["Fair-Borda"], "delta": 0.2, "wait": true}}"#
            ),
        ));
        assert_eq!(evicted.status, 409, "{}", evicted.body);
        assert!(evicted.body.contains("evicted"), "{}", evicted.body);
    }

    #[test]
    fn sessions_stream_ndjson_per_edit() {
        let state = state();
        // Warm the base fingerprint so every step delta-derives.
        let warm = state.handle(&post(
            "/v1/consensus",
            &format!(
                r#"{{"dataset": {}, "methods": ["Fair-Borda"], "delta": 0.2, "wait": true}}"#,
                demo_dataset_json("demo")
            ),
        ));
        assert_eq!(warm.status, 200, "{}", warm.body);

        let body = format!(
            r#"{{
                "dataset": {},
                "methods": ["Fair-Borda"],
                "delta": 0.2,
                "edits": [
                    {{"op": "append", "ranking": ["d","a","b","c"]}},
                    [{{"op": "retract", "ranking": ["d","a","b","c"]}},
                     {{"op": "append", "ranking": ["b","a","c","d"], "weight": 2}}]
                ]
            }}"#,
            demo_dataset_json("demo")
        );
        let response = state.handle(&post("/v1/sessions", &body));
        assert_eq!(response.status, 200, "{}", response.body);
        assert_eq!(response.content_type, "application/x-ndjson");
        let lines: Vec<&str> = response.body.lines().collect();
        assert_eq!(
            lines.len(),
            3,
            "two edit lines + summary: {}",
            response.body
        );
        for (index, line) in lines[..2].iter().enumerate() {
            let parsed = parse_body(line).unwrap();
            assert_eq!(parsed.get("edit"), Some(&Value::UInt(index as u64)));
            assert_eq!(parsed.get("derived"), Some(&Value::Bool(true)), "{line}");
            assert!(parsed.get("results").is_some(), "{line}");
        }
        let summary = parse_body(lines[2]).unwrap();
        assert_eq!(summary.get("summary"), Some(&Value::Bool(true)));
        assert_eq!(summary.get("edits"), Some(&Value::UInt(2)));
        assert_eq!(summary.get("rebuilds"), Some(&Value::UInt(0)));

        // The session never rebuilt a matrix and recorded under its label.
        assert_eq!(state.engine().cache().stats().builds, 1);
        let stats = state.handle(&get("/v1/stats"));
        let parsed = parse_body(&stats.body).unwrap();
        let session_count = parsed
            .get("latency")
            .and_then(|l| l.get("session"))
            .and_then(|h| h.get("count"));
        assert_eq!(session_count, Some(&Value::UInt(1)), "{}", stats.body);

        // Invalid sessions fail before any stream head: plain JSON errors.
        let no_edits = state.handle(&post(
            "/v1/sessions",
            &format!(
                r#"{{"dataset": {}, "methods": ["Fair-Borda"], "delta": 0.2, "edits": []}}"#,
                demo_dataset_json("demo")
            ),
        ));
        assert_eq!(no_edits.status, 400, "{}", no_edits.body);
        assert_eq!(no_edits.content_type, JSON_CONTENT_TYPE);
    }
}
