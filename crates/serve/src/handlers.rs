//! Endpoint implementations over a shared [`AppState`].
//!
//! The consensus endpoint checks the [`ResponseCache`] first: a request whose
//! every method outcome is already cached is answered in `O(1)` without
//! touching the engine (no queue slot, no precedence build, no solve). Anything
//! else is submitted through [`mani_engine::ConsensusEngine::submit_batch_async`],
//! so the engine's bounded queue backpressures the HTTP layer —
//! [`mani_engine::EngineError::Overloaded`] surfaces as `429 Too Many Requests`.

use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use mani_aggregation::CopelandAggregator;
use mani_core::{MethodKind, MfcrContext};
use mani_engine::{
    BatchHandle, ConsensusEngine, ConsensusRequest, ConsensusResponse, EngineConfig, EngineDataset,
    EngineError, JobHandle, JobId, JobStatus,
};
use mani_fairness::{FairnessAudit, FairnessThresholds};
use mani_ranking::GroupIndex;
use serde::{Serialize, Value};

use crate::datasets::{dataset_id, DatasetRegistry};
use crate::http::{ChunkedResponse, HttpError, HttpRequest, HttpResponse};
use crate::json::{
    attribute_names_json, error_body, method_result_json, obj, parse_body, parse_consensus_spec,
    parse_dataset, render, resolve_spec_dataset, s, with_entry, ConsensusSpec,
};
use crate::metrics::{EndpointMetrics, ServeCounters, LATENCY_BUCKET_BOUNDS_US};
use crate::response_cache::ResponseCache;
use crate::router::{route, Route, Routed};

/// Most jobs tracked by the registry before completed ones are pruned
/// (oldest first), bounding registry memory under sustained async traffic.
pub const MAX_TRACKED_JOBS: usize = 4096;

/// Outcome of dispatching one request: either a fully materialized response,
/// or a streaming consensus batch whose NDJSON lines are produced as jobs
/// complete (written with chunked framing by [`crate::server`]).
#[derive(Debug)]
pub enum Handled {
    /// A complete response, ready to serialize with a `Content-Length`.
    Response(HttpResponse),
    /// A `"stream": true` consensus batch: one NDJSON line per request, in
    /// completion order, plus a terminal summary line.
    Stream(ConsensusStream),
}

/// How one spec of a consensus request is satisfied: replayed from the
/// response cache, or submitted to the engine (index into the submitted
/// subset).
#[derive(Debug)]
enum Disposition {
    Cached(Vec<Arc<Value>>),
    Submitted(usize),
}

/// A pending `"stream": true` consensus batch: the parsed specs, the cache
/// replays, and the engine [`BatchHandle`] for everything that needs solving.
///
/// Lines are emitted cached-first (those results exist before any solve), then
/// in engine completion order; the payload of each line is built by the same
/// rendering path as the buffered endpoint, so streamed and non-streamed
/// results are bit-identical and equally replayable through the response
/// cache.
#[derive(Debug)]
pub struct ConsensusStream {
    specs: Vec<ConsensusSpec>,
    dispositions: Vec<Disposition>,
    batch: BatchHandle,
    /// Maps engine batch index → spec index.
    batch_to_spec: Vec<usize>,
    started: Instant,
}

impl ConsensusStream {
    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True for an (impossible via the API) empty batch.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Drives the stream to completion, handing each NDJSON line (newline
    /// included) to `emit` the moment it is available.
    fn emit_lines<E>(
        mut self,
        state: &AppState,
        emit: &mut dyn FnMut(&str) -> Result<(), E>,
    ) -> Result<(), E> {
        let total = self.specs.len();
        let mut completed = 0usize;
        let mut cached = 0usize;
        let mut errors = 0usize;
        let mut total_solve_ms = 0f64;

        // Cache replays are complete before any solve: emit them first, in
        // request order.
        for (index, (spec, disposition)) in self.specs.iter().zip(&self.dispositions).enumerate() {
            if let Disposition::Cached(values) = disposition {
                completed += 1;
                cached += 1;
                emit(&stream_line(
                    index,
                    None,
                    cached_response_json(spec.dataset.name(), values),
                ))?;
            }
        }

        // Engine results stream in as-completed order — the whole point: a
        // cheap Fair-Borda line goes over the wire while a budgeted
        // Fair-Kemeny in the same batch is still searching.
        while let Some(item) = self.batch.wait_next() {
            let spec_index = self.batch_to_spec[item.index];
            let spec = &self.specs[spec_index];
            let payload = state.rendered_response(spec, &item.response);
            completed += 1;
            if !item.response.is_complete() {
                errors += 1;
            }
            total_solve_ms += item.response.total_solve_time.as_secs_f64() * 1e3;
            emit(&stream_line(spec_index, Some(item.id), payload))?;
        }

        // Terminal summary line with batch totals.
        let summary = obj(vec![
            ("summary", Value::Bool(true)),
            ("requests", Value::UInt(total as u64)),
            ("completed", Value::UInt(completed as u64)),
            ("cached", Value::UInt(cached as u64)),
            ("errors", Value::UInt(errors as u64)),
            ("total_solve_time_ms", Value::Float(total_solve_ms)),
        ]);
        emit(&format!("{}\n", render(&summary)))
    }
}

/// One NDJSON result line: the per-request payload prefixed with its batch
/// `index` and `job_id` (`null` for cache replays, which never reach the
/// engine).
fn stream_line(index: usize, job: Option<JobId>, payload: Value) -> String {
    let mut entries = vec![
        ("index".to_string(), Value::UInt(index as u64)),
        (
            "job_id".to_string(),
            match job {
                Some(id) => Value::String(id.to_string()),
                None => Value::Null,
            },
        ),
    ];
    match payload {
        Value::Object(fields) => entries.extend(fields),
        other => entries.push(("payload".to_string(), other)),
    }
    format!("{}\n", render(&Value::Object(entries)))
}

/// The response object for a spec whose every method outcome came from the
/// response cache (shared by the buffered and streaming paths).
fn cached_response_json(dataset: &str, values: &[Arc<Value>]) -> Value {
    obj(vec![
        ("dataset", s(dataset)),
        ("status", s(JobStatus::Done.label())),
        ("cached", Value::Bool(true)),
        (
            "results",
            Value::Array(
                values
                    .iter()
                    .map(|v| with_entry((**v).clone(), "cached", Value::Bool(true)))
                    .collect(),
            ),
        ),
    ])
}

/// Everything the handlers share: the engine, the response cache, the dataset
/// registry, per-endpoint latency histograms, and the async-job registry
/// behind `GET /v1/jobs/{id}`.
#[derive(Debug)]
pub struct AppState {
    engine: ConsensusEngine,
    cache: ResponseCache,
    datasets: DatasetRegistry,
    metrics: EndpointMetrics,
    connections: ServeCounters,
    jobs: Mutex<HashMap<u64, JobEntry>>,
    started: Instant,
}

/// One tracked async job: its handle plus what is needed to render and cache
/// its response when a poll observes completion.
#[derive(Debug)]
struct JobEntry {
    handle: JobHandle,
    dataset: Arc<EngineDataset>,
    cache_keys: Vec<String>,
    cached: AtomicBool,
}

impl AppState {
    /// Builds the state: an engine with `engine_config` and a response cache
    /// bounded to `cache_capacity` entries (`0` = default).
    pub fn new(engine_config: EngineConfig, cache_capacity: usize) -> Self {
        Self {
            engine: ConsensusEngine::with_config(engine_config),
            cache: ResponseCache::new(cache_capacity),
            datasets: DatasetRegistry::default(),
            metrics: EndpointMetrics::new(),
            connections: ServeCounters::new(),
            jobs: Mutex::new(HashMap::new()),
            started: Instant::now(),
        }
    }

    /// The underlying engine (used by tests and the server banner).
    pub fn engine(&self) -> &ConsensusEngine {
        &self.engine
    }

    /// The response cache (used by tests).
    pub fn response_cache(&self) -> &ResponseCache {
        &self.cache
    }

    /// The persisted dataset registry behind `/v1/datasets`.
    pub fn datasets(&self) -> &DatasetRegistry {
        &self.datasets
    }

    /// Per-endpoint request latency histograms.
    pub fn metrics(&self) -> &EndpointMetrics {
        &self.metrics
    }

    /// Connection-pool counters (updated by [`crate::server`]).
    pub fn connections(&self) -> &ServeCounters {
        &self.connections
    }

    /// Dispatches one parsed HTTP request to its handler. Complete responses
    /// have their latency recorded immediately; a [`Handled::Stream`] records
    /// its latency (under `consensus_stream`) when the stream finishes, since
    /// its wall-clock spans the whole batch drain.
    pub fn dispatch(&self, request: &HttpRequest) -> Handled {
        let started = Instant::now();
        let routed = route(&request.method, &request.path);
        let label = match &routed {
            Routed::Found(found) => found.metrics_label(),
            Routed::NotFound | Routed::MethodNotAllowed => "other",
        };
        let outcome = match routed {
            Routed::NotFound => Err(HttpError::new(
                404,
                format!("no such endpoint: {} {}", request.method, request.path),
            )),
            Routed::MethodNotAllowed => Err(HttpError::new(
                405,
                format!("{} does not accept {}", request.path, request.method),
            )),
            Routed::Found(Route::Consensus) => self.consensus(request),
            Routed::Found(Route::Audit) => self.audit(request).map(Handled::Response),
            Routed::Found(Route::Job(id)) => self.job(&id).map(Handled::Response),
            Routed::Found(Route::DatasetCreate) => {
                self.dataset_create(request).map(Handled::Response)
            }
            Routed::Found(Route::DatasetGet(id)) => self.dataset_get(&id).map(Handled::Response),
            Routed::Found(Route::DatasetDelete(id)) => {
                self.dataset_delete(&id).map(Handled::Response)
            }
            Routed::Found(Route::Methods) => Ok(Handled::Response(methods_response())),
            Routed::Found(Route::Stats) => Ok(Handled::Response(self.stats_response())),
        };
        match outcome {
            Ok(Handled::Stream(stream)) => Handled::Stream(stream),
            Ok(Handled::Response(response)) => {
                self.metrics.record(label, started.elapsed());
                Handled::Response(response)
            }
            Err(error) => {
                let response = HttpResponse::json(
                    if error.status == 0 { 400 } else { error.status },
                    error_body(&error.message),
                );
                self.metrics.record(label, started.elapsed());
                Handled::Response(response)
            }
        }
    }

    /// Dispatches one request to a fully buffered [`HttpResponse`]: a
    /// [`Handled::Stream`] is drained into one NDJSON body. Embedding callers
    /// (and unit tests) use this; the server's connection loop uses
    /// [`AppState::dispatch`] so streamed lines hit the wire incrementally.
    pub fn handle(&self, request: &HttpRequest) -> HttpResponse {
        match self.dispatch(request) {
            Handled::Response(response) => response,
            Handled::Stream(stream) => self.collect_stream(stream),
        }
    }

    /// Writes a [`ConsensusStream`] as a chunked NDJSON response, one chunk
    /// per line as completions land, recording the stream's total latency.
    pub fn stream_ndjson<W: Write>(
        &self,
        stream: ConsensusStream,
        writer: &mut W,
        keep_alive: bool,
    ) -> std::io::Result<()> {
        let started = stream.started;
        let result = (|| {
            let mut body = ChunkedResponse::ndjson(200).begin(writer, keep_alive)?;
            stream.emit_lines(self, &mut |line: &str| body.write_chunk(line.as_bytes()))?;
            body.finish()
        })();
        self.metrics.record("consensus_stream", started.elapsed());
        result
    }

    /// Drains a [`ConsensusStream`] into one buffered NDJSON response.
    fn collect_stream(&self, stream: ConsensusStream) -> HttpResponse {
        let started = stream.started;
        let mut body = String::new();
        match stream.emit_lines::<std::convert::Infallible>(self, &mut |line| {
            body.push_str(line);
            Ok(())
        }) {
            Ok(()) => {}
            Err(never) => match never {},
        }
        self.metrics.record("consensus_stream", started.elapsed());
        HttpResponse {
            status: 200,
            content_type: "application/x-ndjson",
            extra_headers: Vec::new(),
            body,
        }
    }

    /// `POST /v1/consensus` — single spec or `{"requests": [...]}` batch,
    /// buffered by default, streamed NDJSON with `"stream": true`.
    fn consensus(&self, request: &HttpRequest) -> Result<Handled, HttpError> {
        let body = parse_body(request.body_utf8()?)?;
        let (specs, single) = match body.get("requests") {
            Some(raw) => {
                let array = raw
                    .as_array()
                    .ok_or_else(|| HttpError::bad("`requests` must be an array"))?;
                if array.is_empty() {
                    return Err(HttpError::bad("`requests` must not be empty"));
                }
                (
                    array
                        .iter()
                        .map(|raw| parse_consensus_spec(raw, Some(&self.datasets)))
                        .collect::<Result<Vec<_>, _>>()?,
                    false,
                )
            }
            None => (
                vec![parse_consensus_spec(&body, Some(&self.datasets))?],
                true,
            ),
        };
        let wait = match body.get("wait") {
            None | Some(Value::Null) => false,
            Some(Value::Bool(flag)) => *flag,
            Some(_) => return Err(HttpError::bad("`wait` must be a boolean")),
        };
        let stream_mode = match body.get("stream") {
            None | Some(Value::Null) => false,
            Some(Value::Bool(flag)) => *flag,
            Some(_) => return Err(HttpError::bad("`stream` must be a boolean")),
        };
        if stream_mode && wait {
            return Err(HttpError::bad(
                "`stream` and `wait` are mutually exclusive: a streamed batch \
                 delivers each result as it completes",
            ));
        }

        // Probe the response cache per spec: a spec whose every method outcome
        // is cached never reaches the engine.
        let mut to_submit: Vec<ConsensusRequest> = Vec::new();
        let mut dispositions = Vec::with_capacity(specs.len());
        for spec in &specs {
            let mut hits = Vec::with_capacity(spec.methods.len());
            let all_cached = !spec.methods.is_empty()
                && spec.methods.iter().all(|method| {
                    match self.cache.get(&spec.cache_key(*method)) {
                        Some(value) => {
                            hits.push(value);
                            true
                        }
                        None => false,
                    }
                });
            if all_cached {
                dispositions.push(Disposition::Cached(hits));
            } else {
                dispositions.push(Disposition::Submitted(to_submit.len()));
                to_submit.push(spec.request());
            }
        }

        let overload_error = |error: EngineError| {
            let status = match error {
                EngineError::Overloaded { .. } => 429,
                _ => 500,
            };
            HttpError::new(status, error.to_string())
        };

        if stream_mode {
            // Admission happens before the response head is written: an
            // overloaded engine still answers a clean 429, never a truncated
            // stream.
            let batch = if to_submit.is_empty() {
                BatchHandle::new(Vec::new())
            } else {
                self.engine
                    .submit_batch_streaming(to_submit)
                    .map_err(overload_error)?
            };
            let mut batch_to_spec = Vec::with_capacity(batch.len());
            for (spec_index, disposition) in dispositions.iter().enumerate() {
                if let Disposition::Submitted(_) = disposition {
                    batch_to_spec.push(spec_index);
                }
            }
            // Every streamed job is also registered: a client that loses the
            // connection mid-stream can recover any line it missed from
            // `GET /v1/jobs/{id}` using the `job_id` values it already saw
            // (or re-send the batch, which replays from the response cache).
            for (batch_index, handle) in batch.handles().iter().enumerate() {
                self.register_job(&specs[batch_to_spec[batch_index]], handle.clone());
            }
            return Ok(Handled::Stream(ConsensusStream {
                specs,
                dispositions,
                batch,
                batch_to_spec,
                started: Instant::now(),
            }));
        }

        let handles = if to_submit.is_empty() {
            Vec::new()
        } else {
            self.engine
                .submit_batch_async(to_submit)
                .map_err(overload_error)?
        };

        let mut any_pending = false;
        let mut rendered = Vec::with_capacity(specs.len());
        for (spec, disposition) in specs.iter().zip(dispositions) {
            rendered.push(match disposition {
                Disposition::Cached(values) => cached_response_json(spec.dataset.name(), &values),
                Disposition::Submitted(index) => {
                    let handle = &handles[index];
                    if wait {
                        let response = handle.wait();
                        self.rendered_response(spec, &response)
                    } else {
                        any_pending = true;
                        self.register_job(spec, handle.clone());
                        obj(vec![
                            ("id", s(handle.id().to_string())),
                            ("status", s(handle.status().label())),
                            ("dataset", s(spec.dataset.name())),
                            ("poll", s(format!("/v1/jobs/{}", handle.id()))),
                        ])
                    }
                }
            });
        }

        let status = if any_pending { 202 } else { 200 };
        let body = if single {
            rendered
                .into_iter()
                .next()
                .expect("one spec, one rendering")
        } else {
            obj(vec![("responses", Value::Array(rendered))])
        };
        Ok(Handled::Response(HttpResponse::json(status, render(&body))))
    }

    /// Renders a completed response for `spec`, inserting every successful
    /// method outcome into the response cache.
    fn rendered_response(&self, spec: &ConsensusSpec, response: &ConsensusResponse) -> Value {
        let mut results = Vec::with_capacity(response.results.len());
        for (index, result) in response.results.iter().enumerate() {
            results.push(match result {
                Ok(result) => {
                    let value = method_result_json(result, spec.dataset.db());
                    if let Some(method) = spec.methods.get(index) {
                        self.cache
                            .insert(spec.cache_key(*method), Arc::new(value.clone()));
                    }
                    with_entry(value, "cached", Value::Bool(false))
                }
                Err(error) => obj(vec![("error", s(error.to_string()))]),
            });
        }
        obj(vec![
            ("dataset", s(&response.dataset)),
            ("status", s(JobStatus::Done.label())),
            ("cached", Value::Bool(false)),
            ("results", Value::Array(results)),
            (
                "total_solve_time_ms",
                Value::Float(response.total_solve_time.as_secs_f64() * 1e3),
            ),
        ])
    }

    /// Tracks an async job for `GET /v1/jobs/{id}`, pruning completed entries
    /// once the registry outgrows [`MAX_TRACKED_JOBS`].
    fn register_job(&self, spec: &ConsensusSpec, handle: JobHandle) {
        let entry = JobEntry {
            dataset: Arc::clone(&spec.dataset),
            cache_keys: spec
                .methods
                .iter()
                .map(|method| spec.cache_key(*method))
                .collect(),
            cached: AtomicBool::new(false),
            handle,
        };
        let mut jobs = self.jobs.lock().expect("job registry lock poisoned");
        jobs.insert(entry.handle.id().as_u64(), entry);
        // Only completed jobs are evictable: a queued/running job's poll URL
        // was just handed to a client and must keep resolving. When every
        // tracked job is still live the registry temporarily exceeds the
        // bound (its size is then already bounded by the engine queue depth).
        while jobs.len() > MAX_TRACKED_JOBS {
            let oldest_done = jobs
                .iter()
                .filter(|(_, e)| e.handle.status() == JobStatus::Done)
                .map(|(id, _)| *id)
                .min();
            match oldest_done {
                Some(id) => jobs.remove(&id),
                None => break,
            };
        }
    }

    /// `GET /v1/jobs/{id}`.
    fn job(&self, raw_id: &str) -> Result<HttpResponse, HttpError> {
        let id: u64 = raw_id
            .strip_prefix("job-")
            .unwrap_or(raw_id)
            .parse()
            .map_err(|_| HttpError::bad(format!("malformed job id `{raw_id}`")))?;
        let (handle, dataset, cache_keys, already_cached) = {
            let jobs = self.jobs.lock().expect("job registry lock poisoned");
            let entry = jobs
                .get(&id)
                .ok_or_else(|| HttpError::new(404, format!("no such job `job-{id}`")))?;
            (
                entry.handle.clone(),
                Arc::clone(&entry.dataset),
                entry.cache_keys.clone(),
                entry.cached.swap(true, Ordering::AcqRel),
            )
        };
        let Some(response) = handle.try_poll() else {
            // Not done yet: release the would-be cache claim for a later poll.
            let jobs = self.jobs.lock().expect("job registry lock poisoned");
            if let Some(entry) = jobs.get(&id) {
                entry.cached.store(false, Ordering::Release);
            }
            return Ok(HttpResponse::json(
                200,
                render(&obj(vec![
                    ("id", s(format!("job-{id}"))),
                    ("status", s(handle.status().label())),
                    ("dataset", s(dataset.name())),
                ])),
            ));
        };

        let mut results = Vec::with_capacity(response.results.len());
        for (index, result) in response.results.iter().enumerate() {
            results.push(match result {
                Ok(result) => {
                    let value = method_result_json(result, dataset.db());
                    if !already_cached {
                        if let Some(key) = cache_keys.get(index) {
                            self.cache.insert(key.clone(), Arc::new(value.clone()));
                        }
                    }
                    with_entry(value, "cached", Value::Bool(false))
                }
                Err(error) => obj(vec![("error", s(error.to_string()))]),
            });
        }
        Ok(HttpResponse::json(
            200,
            render(&obj(vec![
                ("id", s(format!("job-{id}"))),
                ("status", s(JobStatus::Done.label())),
                ("dataset", s(&response.dataset)),
                ("results", Value::Array(results)),
                (
                    "total_solve_time_ms",
                    Value::Float(response.total_solve_time.as_secs_f64() * 1e3),
                ),
            ])),
        ))
    }

    /// `POST /v1/audit` — per-group FPR audit of a dataset: the Fair-Copeland
    /// consensus under `delta`, the unconstrained Copeland consensus, and
    /// optionally every base ranking. Runs inline on the connection thread
    /// (audits are `O(n²)`; they do not occupy the consensus queue).
    fn audit(&self, request: &HttpRequest) -> Result<HttpResponse, HttpError> {
        let body = parse_body(request.body_utf8()?)?;
        let dataset = resolve_spec_dataset(&body, Some(&self.datasets))?;
        let delta = match body.get("delta") {
            None | Some(Value::Null) => 0.1,
            Some(raw) => crate::json::as_f64(raw, "`delta`")?,
        };
        let per_ranking = matches!(body.get("per_ranking"), Some(Value::Bool(true)));

        let groups = GroupIndex::new(dataset.db());
        let ctx = MfcrContext::new(
            dataset.db(),
            &groups,
            dataset.profile(),
            FairnessThresholds::uniform(delta),
        );
        let outcome = MethodKind::FairCopeland
            .instantiate()
            .solve(&ctx)
            .map_err(|e| HttpError::new(500, e.to_string()))?;
        let fair = FairnessAudit::new("Fair-Copeland", &outcome.ranking, dataset.db(), &groups);
        let unconstrained = CopelandAggregator::new().consensus(dataset.profile());
        let unfair = FairnessAudit::new(
            "Copeland (unconstrained)",
            &unconstrained,
            dataset.db(),
            &groups,
        );

        let mut entries = vec![
            ("dataset", s(dataset.name())),
            ("delta", Value::Float(delta)),
            ("consensus", fair.serialize_value()),
            ("unconstrained", unfair.serialize_value()),
        ];
        let base_audits;
        if per_ranking {
            base_audits = Value::Array(
                dataset
                    .profile()
                    .rankings()
                    .iter()
                    .enumerate()
                    .map(|(index, ranking)| {
                        FairnessAudit::new(
                            format!("ranking-{index}"),
                            ranking,
                            dataset.db(),
                            &groups,
                        )
                        .serialize_value()
                    })
                    .collect(),
            );
            entries.push(("rankings", base_audits));
        }
        Ok(HttpResponse::json(200, render(&obj(entries))))
    }

    /// `POST /v1/datasets` — register a dataset for later `dataset_id`
    /// solves. The body is either a bare dataset object or `{"dataset":
    /// {...}}`. Ids are content fingerprints (the precedence-cache key), so
    /// registration is idempotent and registered datasets share the engine's
    /// warm matrix with identical inline uploads.
    fn dataset_create(&self, request: &HttpRequest) -> Result<HttpResponse, HttpError> {
        let body = parse_body(request.body_utf8()?)?;
        let dataset = match body.get("dataset") {
            Some(wrapped) => parse_dataset(wrapped)?,
            None => parse_dataset(&body)?,
        };
        let (id, created) = self.datasets.register(Arc::clone(&dataset))?;
        Ok(HttpResponse::json(
            200,
            render(&obj(vec![
                ("id", s(&id)),
                ("name", s(dataset.name())),
                ("candidates", Value::UInt(dataset.num_candidates() as u64)),
                ("rankings", Value::UInt(dataset.num_rankings() as u64)),
                ("created", Value::Bool(created)),
            ])),
        ))
    }

    /// `GET /v1/datasets/{id}` — metadata of a registered dataset.
    fn dataset_get(&self, id: &str) -> Result<HttpResponse, HttpError> {
        let dataset = self.datasets.resolve(id)?;
        Ok(HttpResponse::json(
            200,
            render(&obj(vec![
                ("id", s(dataset_id(&dataset))),
                ("name", s(dataset.name())),
                ("candidates", Value::UInt(dataset.num_candidates() as u64)),
                ("rankings", Value::UInt(dataset.num_rankings() as u64)),
                ("attributes", attribute_names_json(dataset.db())),
            ])),
        ))
    }

    /// `DELETE /v1/datasets/{id}`.
    fn dataset_delete(&self, id: &str) -> Result<HttpResponse, HttpError> {
        match self.datasets.remove(id) {
            Some(_) => Ok(HttpResponse::json(
                200,
                render(&obj(vec![("id", s(id)), ("deleted", Value::Bool(true))])),
            )),
            None => Err(HttpError::new(404, format!("no such dataset `{id}`"))),
        }
    }

    /// `GET /v1/stats`.
    fn stats_response(&self) -> HttpResponse {
        let engine = self.engine.stats();
        let precedence = self.engine.cache().stats();
        let responses = self.cache.stats();
        let jobs_tracked = self.jobs.lock().expect("job registry lock poisoned").len();
        let connections = self.connections.snapshot();
        let latency = Value::Object(
            self.metrics
                .snapshots()
                .into_iter()
                .map(|(label, snap)| {
                    (
                        label.to_string(),
                        obj(vec![
                            ("count", Value::UInt(snap.count)),
                            ("total_ms", Value::Float(snap.total_ns as f64 / 1e6)),
                            (
                                "le_us",
                                Value::Array(
                                    LATENCY_BUCKET_BOUNDS_US
                                        .iter()
                                        .map(|b| Value::UInt(*b))
                                        .collect(),
                                ),
                            ),
                            (
                                "buckets",
                                Value::Array(
                                    snap.buckets.iter().map(|c| Value::UInt(*c)).collect(),
                                ),
                            ),
                        ]),
                    )
                })
                .collect(),
        );
        let body = obj(vec![
            (
                "engine",
                obj(vec![
                    ("threads", Value::UInt(self.engine.threads() as u64)),
                    (
                        "kernel_threads",
                        Value::UInt(self.engine.kernel_parallelism().max_threads() as u64),
                    ),
                    ("queue_depth", Value::UInt(engine.queue_depth as u64)),
                    ("in_flight", Value::UInt(engine.in_flight as u64)),
                    ("submitted", Value::UInt(engine.submitted)),
                    ("completed", Value::UInt(engine.completed)),
                    ("rejected", Value::UInt(engine.rejected)),
                ]),
            ),
            (
                "kernels",
                obj(vec![
                    ("matrix_build_ns", Value::UInt(engine.matrix_build_ns)),
                    ("solve_ns", Value::UInt(engine.solve_ns)),
                    ("nodes_expanded", Value::UInt(engine.nodes_expanded)),
                ]),
            ),
            (
                "streaming",
                obj(vec![
                    ("batches_opened", Value::UInt(engine.batches_opened)),
                    ("batches_drained", Value::UInt(engine.batches_drained)),
                    ("results_yielded", Value::UInt(engine.batch_results_yielded)),
                ]),
            ),
            (
                "precedence_cache",
                obj(vec![
                    ("lookups", Value::UInt(precedence.lookups)),
                    ("hits", Value::UInt(precedence.hits)),
                    ("builds", Value::UInt(precedence.builds)),
                    ("entries", Value::UInt(precedence.entries as u64)),
                ]),
            ),
            (
                "response_cache",
                obj(vec![
                    ("capacity", Value::UInt(responses.capacity as u64)),
                    ("entries", Value::UInt(responses.entries as u64)),
                    ("hits", Value::UInt(responses.hits)),
                    ("misses", Value::UInt(responses.misses)),
                    ("insertions", Value::UInt(responses.insertions)),
                    ("evictions", Value::UInt(responses.evictions)),
                ]),
            ),
            (
                "server",
                obj(vec![
                    ("max_connections", Value::UInt(connections.max_connections)),
                    ("conn_threads", Value::UInt(connections.conn_threads)),
                    ("connections_accepted", Value::UInt(connections.accepted)),
                    (
                        "connections_rejected",
                        Value::UInt(connections.rejected_busy),
                    ),
                    ("requests_served", Value::UInt(connections.requests)),
                    (
                        "keepalive_reuses",
                        Value::UInt(connections.keepalive_reuses),
                    ),
                ]),
            ),
            ("latency", latency),
            (
                "datasets_registered",
                Value::UInt(self.datasets.len() as u64),
            ),
            ("jobs_tracked", Value::UInt(jobs_tracked as u64)),
            (
                "uptime_s",
                Value::Float(self.started.elapsed().as_secs_f64()),
            ),
        ]);
        HttpResponse::json(200, render(&body))
    }
}

/// `GET /v1/methods`.
fn methods_response() -> HttpResponse {
    let methods = Value::Array(
        MethodKind::all()
            .iter()
            .map(|kind| {
                obj(vec![
                    ("name", s(kind.name())),
                    ("paper_label", s(kind.paper_label())),
                    ("proposed", Value::Bool(kind.is_proposed())),
                ])
            })
            .collect(),
    );
    HttpResponse::json(200, render(&obj(vec![("methods", methods)])))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{delete, demo_consensus_body, demo_dataset_json, get, post};

    fn state() -> AppState {
        AppState::new(
            EngineConfig {
                threads: 2,
                ..EngineConfig::default()
            },
            16,
        )
    }

    #[test]
    fn consensus_wait_and_cache_replay() {
        let state = state();
        let first = state.handle(&post("/v1/consensus", &demo_consensus_body(0.2, true)));
        assert_eq!(first.status, 200, "{}", first.body);
        assert!(first.body.contains("\"cached\":false"));
        assert!(first.body.contains("\"ranking\""));
        let builds_after_first = state.engine().cache().stats().builds;
        assert_eq!(builds_after_first, 1);

        let second = state.handle(&post("/v1/consensus", &demo_consensus_body(0.2, true)));
        assert_eq!(second.status, 200);
        assert!(second.body.contains("\"cached\":true"), "{}", second.body);
        assert_eq!(
            state.engine().cache().stats().builds,
            builds_after_first,
            "replay must not build another precedence matrix"
        );
        assert_eq!(
            state.engine().stats().submitted,
            1,
            "replay must not reach the engine queue"
        );
    }

    #[test]
    fn async_job_lifecycle_via_poll() {
        let state = state();
        let accepted = state.handle(&post("/v1/consensus", &demo_consensus_body(0.25, false)));
        assert_eq!(accepted.status, 202, "{}", accepted.body);
        assert!(accepted.body.contains("\"poll\":\"/v1/jobs/job-1\""));

        // Poll until done (tiny dataset: effectively immediate).
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let polled = state.handle(&get("/v1/jobs/job-1"));
            assert_eq!(polled.status, 200, "{}", polled.body);
            if polled.body.contains("\"status\":\"done\"") {
                assert!(polled.body.contains("\"ranking\""));
                break;
            }
            assert!(Instant::now() < deadline, "job never completed");
            std::thread::yield_now();
        }
        // Completion populated the response cache: replay is served cached.
        let replay = state.handle(&post("/v1/consensus", &demo_consensus_body(0.25, true)));
        assert_eq!(replay.status, 200);
        assert!(replay.body.contains("\"cached\":true"), "{}", replay.body);
    }

    #[test]
    fn stream_mode_emits_ndjson_lines_and_summary() {
        let state = state();
        let body = format!(
            r#"{{"requests": [{}, {}], "stream": true}}"#,
            crate::test_support::demo_dataset_consensus_spec("one", 0.2),
            crate::test_support::demo_dataset_consensus_spec("two", 0.3),
        );
        let response = state.handle(&post("/v1/consensus", &body));
        assert_eq!(response.status, 200, "{}", response.body);
        assert_eq!(response.content_type, "application/x-ndjson");
        let lines: Vec<&str> = response.body.lines().collect();
        assert_eq!(
            lines.len(),
            3,
            "two result lines + summary: {}",
            response.body
        );
        for line in &lines[..2] {
            let parsed = parse_body(line).unwrap();
            assert!(parsed.get("index").is_some(), "{line}");
            assert!(
                matches!(parsed.get("job_id"), Some(Value::String(_))),
                "solved lines carry a job id: {line}"
            );
            assert!(
                parsed.get("ranking").is_none(),
                "results nest under results"
            );
            assert!(parsed.get("results").is_some(), "{line}");
        }
        let summary = parse_body(lines[2]).unwrap();
        assert_eq!(summary.get("summary"), Some(&Value::Bool(true)));
        assert_eq!(summary.get("requests"), Some(&Value::UInt(2)));
        assert_eq!(summary.get("completed"), Some(&Value::UInt(2)));
        assert_eq!(summary.get("errors"), Some(&Value::UInt(0)));

        // Streamed results populated the response cache: the same batch
        // replayed non-streaming comes back cached, and a streamed replay
        // marks its lines cached with a null job id.
        let replayed = state.handle(&post("/v1/consensus", &body));
        assert_eq!(replayed.status, 200);
        let first = parse_body(replayed.body.lines().next().unwrap()).unwrap();
        assert_eq!(first.get("cached"), Some(&Value::Bool(true)));
        assert_eq!(first.get("job_id"), Some(&Value::Null));
        assert_eq!(
            state.engine().stats().submitted,
            2,
            "the replay must not resubmit jobs"
        );
        // Streaming batch counters surface in /v1/stats.
        let stats = state.handle(&get("/v1/stats"));
        assert!(stats.body.contains("\"streaming\""), "{}", stats.body);
        assert!(
            stats.body.contains("\"batches_opened\":1"),
            "{}",
            stats.body
        );
    }

    #[test]
    fn stream_and_wait_are_mutually_exclusive() {
        let state = state();
        let body = format!(
            r#"{{"requests": [{}], "stream": true, "wait": true}}"#,
            crate::test_support::demo_dataset_consensus_spec("x", 0.2),
        );
        let response = state.handle(&post("/v1/consensus", &body));
        assert_eq!(response.status, 400, "{}", response.body);
        assert!(response.body.contains("mutually exclusive"));
    }

    #[test]
    fn unknown_job_and_bad_ids_are_client_errors() {
        let state = state();
        assert_eq!(state.handle(&get("/v1/jobs/job-99")).status, 404);
        assert_eq!(state.handle(&get("/v1/jobs/banana")).status, 400);
    }

    #[test]
    fn methods_and_stats_render() {
        let state = state();
        let methods = state.handle(&get("/v1/methods"));
        assert_eq!(methods.status, 200);
        assert!(methods.body.contains("Fair-Borda"));
        assert!(methods.body.contains("(B1) Kemeny"));
        let stats = state.handle(&get("/v1/stats"));
        assert_eq!(stats.status, 200, "{}", stats.body);
        assert!(stats.body.contains("\"precedence_cache\""));
        assert!(stats.body.contains("\"response_cache\""));
        assert!(stats.body.contains("\"queue_depth\""));
        assert!(stats.body.contains("\"kernels\""));
        assert!(stats.body.contains("\"matrix_build_ns\""));
        assert!(stats.body.contains("\"nodes_expanded\""));
        assert!(stats.body.contains("\"kernel_threads\""));
    }

    #[test]
    fn dataset_endpoints_round_trip() {
        let state = state();
        let up = state.handle(&post("/v1/datasets", &demo_dataset_json("reg")));
        assert_eq!(up.status, 200, "{}", up.body);
        let parsed = parse_body(&up.body).unwrap();
        let id = parsed
            .get("id")
            .and_then(Value::as_str)
            .expect("dataset id")
            .to_string();
        assert!(id.starts_with("ds-"), "{id}");
        assert!(up.body.contains("\"created\":true"));

        // Re-uploading identical content (wrapped form) is idempotent.
        let wrapped = format!(r#"{{"dataset": {}}}"#, demo_dataset_json("other-name"));
        let again = state.handle(&post("/v1/datasets", &wrapped));
        assert_eq!(again.status, 200);
        assert!(again.body.contains(&id), "{}", again.body);
        assert!(again.body.contains("\"created\":false"));

        let meta = state.handle(&get(&format!("/v1/datasets/{id}")));
        assert_eq!(meta.status, 200, "{}", meta.body);
        assert!(meta.body.contains("\"candidates\":4"));
        assert!(meta.body.contains("\"attributes\":[\"G\"]"));

        // Solve by reference instead of re-posting the rows.
        let by_id = format!(
            r#"{{"dataset_id": "{id}", "methods": ["Fair-Borda"], "delta": 0.2, "wait": true}}"#
        );
        let solved = state.handle(&post("/v1/consensus", &by_id));
        assert_eq!(solved.status, 200, "{}", solved.body);
        assert!(solved.body.contains("\"ranking\""));

        let gone = state.handle(&delete(&format!("/v1/datasets/{id}")));
        assert_eq!(gone.status, 200);
        assert!(gone.body.contains("\"deleted\":true"));
        assert_eq!(
            state.handle(&get(&format!("/v1/datasets/{id}"))).status,
            404
        );
        assert_eq!(
            state.handle(&delete(&format!("/v1/datasets/{id}"))).status,
            404
        );
        assert_eq!(state.handle(&post("/v1/consensus", &by_id)).status, 404);
    }

    #[test]
    fn stats_report_latency_histograms_and_server_counters() {
        let state = state();
        state.handle(&get("/v1/methods"));
        let first = state.handle(&post("/v1/consensus", &demo_consensus_body(0.2, true)));
        assert_eq!(first.status, 200);
        let stats = state.handle(&get("/v1/stats"));
        assert_eq!(stats.status, 200, "{}", stats.body);
        let parsed = parse_body(&stats.body).unwrap();
        let latency = parsed.get("latency").expect("latency section");
        let count = |endpoint: &str| match latency.get(endpoint).and_then(|h| h.get("count")) {
            Some(Value::UInt(u)) => *u,
            other => panic!("missing count for {endpoint}: {other:?}"),
        };
        assert_eq!(count("consensus"), 1);
        assert_eq!(count("methods"), 1);
        assert_eq!(count("stats"), 0, "recorded after the response renders");
        let buckets = latency
            .get("consensus")
            .and_then(|h| h.get("buckets"))
            .and_then(Value::as_array)
            .expect("bucket array");
        let total: u64 = buckets
            .iter()
            .map(|b| match b {
                Value::UInt(u) => *u,
                other => panic!("non-integer bucket {other:?}"),
            })
            .sum();
        assert_eq!(total, 1, "bucket counts must sum to the sample count");
        assert!(stats.body.contains("\"server\""));
        assert!(stats.body.contains("\"datasets_registered\":0"));
    }

    #[test]
    fn router_misses_map_to_http_statuses() {
        let state = state();
        assert_eq!(state.handle(&get("/nope")).status, 404);
        assert_eq!(state.handle(&get("/v1/consensus")).status, 405);
        let bad = state.handle(&post("/v1/consensus", "{not json"));
        assert_eq!(bad.status, 400);
        assert!(bad.body.contains("error"));
    }

    #[test]
    fn audit_reports_groups() {
        let state = state();
        let body = r#"{
            "dataset": {
                "name": "aud",
                "candidates": [
                    {"name": "a", "attributes": {"G": "x"}},
                    {"name": "b", "attributes": {"G": "y"}},
                    {"name": "c", "attributes": {"G": "x"}},
                    {"name": "d", "attributes": {"G": "y"}}
                ],
                "rankings": [["a","b","c","d"], ["b","a","d","c"]]
            },
            "per_ranking": true
        }"#;
        let response = state.handle(&post("/v1/audit", body));
        assert_eq!(response.status, 200, "{}", response.body);
        assert!(response.body.contains("\"consensus\""));
        assert!(response.body.contains("\"unconstrained\""));
        assert!(response.body.contains("ranking-1"));
    }
}
